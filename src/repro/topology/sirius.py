"""The Sirius flat physical topology (paper §4.1, Fig 5a).

Nodes (servers or rack switches) connect to a fully passive core — a
single layer of AWGR gratings — through tunable-transceiver uplinks.
Each uplink is fibre-attached to one grating input port; by retuning its
laser wavelength the uplink can reach any of that grating's output
ports, i.e. any of ``G`` destination nodes (``G`` = grating port count).

Construction used here (generalizing Fig 5a):

* Nodes are partitioned into ``N / G`` *blocks* of ``G`` nodes.
* There is one grating per ``(source block, destination block)`` pair —
  its inputs come from the ``G`` nodes of the source block and its
  outputs feed the ``G`` nodes of the destination block.
* Each node therefore needs ``N / G`` uplinks to reach every block, and
  an *uplink multiplier* ``m`` replicates each of them ``m`` times (the
  paper provisions 1.5–2× uplinks to offset the 2× worst-case throughput
  loss of load-balanced routing, §4.2/Fig 12).

With 4 nodes, ``G = 2`` and ``m = 1`` this reproduces the paper's Fig 5a
exactly: 4 gratings, 2 uplinks per node.  With 100-port gratings and 256
uplinks it scales to the paper's 25,600-rack deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.optics.awgr import AWGR
from repro.units import GBPS, fibre_delay


@dataclass(frozen=True)
class Uplink:
    """One tunable-transceiver uplink of a node.

    Attributes
    ----------
    node:
        Owning node id.
    index:
        Uplink index within the node (0 .. uplinks_per_node-1).
    grating:
        Id of the grating the uplink's fibre is attached to.
    input_port:
        Input port on that grating.
    reachable_block:
        Destination block this uplink can address.
    """

    node: int
    index: int
    grating: int
    input_port: int
    reachable_block: int


class SiriusTopology:
    """A flat Sirius network: ``n_nodes`` nodes over passive gratings.

    Parameters
    ----------
    n_nodes:
        Number of nodes (racks or servers) attached to the core.
    grating_ports:
        Ports per AWGR grating, ``G``; also the number of wavelength
        channels each laser tunes across.  Must divide ``n_nodes``.
    uplink_multiplier:
        How many parallel uplinks address each destination block
        (paper default 1.5 for the simulations, here any positive
        integer or half-integer yielding an integral uplink count).
    link_rate_bps:
        Line rate of each optical channel (paper: 50 Gb/s).
    fibre_lengths_m:
        Optional per-node fibre length to the grating layer; used by the
        time-synchronization subsystem to derive per-node epoch start
        offsets (§4.4).  Defaults to 0 (equal lengths).
    """

    def __init__(self, n_nodes: int, grating_ports: int, *,
                 uplink_multiplier: float = 1.0,
                 link_rate_bps: float = 50 * GBPS,
                 grating_insertion_loss_db: float = 6.0,
                 fibre_lengths_m: Optional[Sequence[float]] = None) -> None:
        if n_nodes <= 1:
            raise ValueError(f"need at least 2 nodes, got {n_nodes}")
        if grating_ports <= 0:
            raise ValueError(f"grating_ports must be positive, got {grating_ports}")
        if n_nodes % grating_ports != 0:
            raise ValueError(
                f"grating_ports ({grating_ports}) must divide n_nodes ({n_nodes})"
            )
        if link_rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if uplink_multiplier < 1 or abs(uplink_multiplier - round(uplink_multiplier)) > 1e-9:
            raise ValueError(
                "the physical topology needs an integral uplink multiplier "
                f"(got {uplink_multiplier}); fractional provisioning such as "
                "the paper's 1.5x is modelled at the simulator level "
                "(repro.core.network) as per-epoch capacity"
            )
        self.n_nodes = n_nodes
        self.grating_ports = grating_ports
        self.uplink_multiplier = int(round(uplink_multiplier))
        self.link_rate_bps = link_rate_bps
        self.n_blocks = n_nodes // grating_ports
        #: Parallel uplinks addressing each destination block.
        self.links_per_block = self.uplink_multiplier
        self.uplinks_per_node = self.n_blocks * self.links_per_block
        if fibre_lengths_m is None:
            fibre_lengths_m = [0.0] * n_nodes
        if len(fibre_lengths_m) != n_nodes:
            raise ValueError("fibre_lengths_m must have one entry per node")
        self.fibre_lengths_m = list(fibre_lengths_m)

        # One grating per (source block, destination block, replica).
        self.n_gratings = self.n_blocks * self.n_blocks * self.links_per_block
        self.gratings: List[AWGR] = [
            AWGR(grating_ports, insertion_loss_db=grating_insertion_loss_db)
            for _ in range(self.n_gratings)
        ]
        self._uplinks: List[List[Uplink]] = self._build_uplinks()

    # -- construction -------------------------------------------------------
    def _grating_id(self, src_block: int, dst_block: int, replica: int) -> int:
        return (
            (src_block * self.n_blocks + dst_block) * self.links_per_block
            + replica
        )

    def _build_uplinks(self) -> List[List[Uplink]]:
        per_node: List[List[Uplink]] = []
        for node in range(self.n_nodes):
            src_block, input_port = divmod(node, self.grating_ports)
            uplinks: List[Uplink] = []
            index = 0
            for dst_block in range(self.n_blocks):
                for replica in range(self.links_per_block):
                    uplinks.append(Uplink(
                        node=node,
                        index=index,
                        grating=self._grating_id(src_block, dst_block, replica),
                        input_port=input_port,
                        reachable_block=dst_block,
                    ))
                    index += 1
            per_node.append(uplinks)
        return per_node

    # -- queries -----------------------------------------------------------
    def uplinks(self, node: int) -> List[Uplink]:
        """All uplinks of ``node``."""
        self._check_node(node)
        return self._uplinks[node]

    def block_of(self, node: int) -> int:
        """Block (grating output group) a node belongs to."""
        self._check_node(node)
        return node // self.grating_ports

    def nodes_in_block(self, block: int) -> range:
        """Node ids belonging to ``block``."""
        if not 0 <= block < self.n_blocks:
            raise ValueError(f"block {block} out of range [0, {self.n_blocks})")
        start = block * self.grating_ports
        return range(start, start + self.grating_ports)

    def reachable_nodes(self, uplink: Uplink) -> range:
        """Destinations reachable from ``uplink`` (its grating's outputs)."""
        return self.nodes_in_block(uplink.reachable_block)

    def wavelength_for(self, uplink: Uplink, dst_node: int) -> int:
        """Wavelength channel that routes ``uplink`` to ``dst_node``.

        The wavelength is the proxy for the destination address (§1):
        the AWGR's cyclic routing maps (input port, channel) → output
        port, and output port ``p`` of the grating feeds node
        ``dst_block·G + p``.
        """
        self._check_node(dst_node)
        if self.block_of(dst_node) != uplink.reachable_block:
            raise ValueError(
                f"node {dst_node} (block {self.block_of(dst_node)}) is not "
                f"reachable from uplink {uplink.index} of node {uplink.node} "
                f"(block {uplink.reachable_block})"
            )
        output_port = dst_node % self.grating_ports
        return self.gratings[uplink.grating].channel_for(
            uplink.input_port, output_port
        )

    def paths_to(self, src_node: int, dst_node: int
                 ) -> List[Tuple[Uplink, int]]:
        """All single-hop physical paths ``src → dst``: (uplink, wavelength).

        With multiplier ``m`` there are ``m`` such paths.  Direct
        single-hop reachability through *some* uplink exists for every
        node pair, but only through ``links_per_block`` of the node's
        uplinks — which is why Sirius needs load-balanced routing to use
        full node bandwidth between any pair (§4.1).
        """
        self._check_node(src_node)
        self._check_node(dst_node)
        dst_block = self.block_of(dst_node)
        return [
            (uplink, self.wavelength_for(uplink, dst_node))
            for uplink in self._uplinks[src_node]
            if uplink.reachable_block == dst_block
        ]

    def iter_uplinks(self) -> Iterator[Uplink]:
        """Iterate over every uplink in the network."""
        for uplinks in self._uplinks:
            yield from uplinks

    # -- aggregate properties -----------------------------------------------
    @property
    def total_uplinks(self) -> int:
        return self.n_nodes * self.uplinks_per_node

    @property
    def node_uplink_bandwidth_bps(self) -> float:
        """Aggregate uplink bandwidth per node."""
        return self.uplinks_per_node * self.link_rate_bps

    @property
    def bisection_bandwidth_bps(self) -> float:
        """Bisection bandwidth of the flat core.

        The cyclic schedule gives every node-pair equal-rate
        connectivity, so the core behaves as a non-blocking switch over
        the node uplink bandwidth.
        """
        return self.n_nodes * self.node_uplink_bandwidth_bps / 2.0

    def propagation_delay(self, node: int) -> float:
        """One-way node → grating-layer propagation delay (seconds)."""
        self._check_node(node)
        return fibre_delay(self.fibre_lengths_m[node])

    def pair_propagation_delay(self, src: int, dst: int) -> float:
        """One-way src → dst propagation delay through the passive core."""
        return self.propagation_delay(src) + self.propagation_delay(dst)

    # -- validation -----------------------------------------------------------
    def validate_full_reachability(self) -> None:
        """Check that every node can reach every other node directly.

        Raises ``AssertionError`` on any violation; used by tests and as
        a post-construction self-check in examples.
        """
        for src in range(self.n_nodes):
            reachable = set()
            for uplink in self._uplinks[src]:
                reachable.update(self.reachable_nodes(uplink))
            missing = set(range(self.n_nodes)) - reachable
            assert not missing, (
                f"node {src} cannot reach nodes {sorted(missing)}"
            )

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")

    def __repr__(self) -> str:
        return (
            f"SiriusTopology(n_nodes={self.n_nodes}, "
            f"grating_ports={self.grating_ports}, "
            f"uplinks_per_node={self.uplinks_per_node}, "
            f"n_gratings={self.n_gratings})"
        )
