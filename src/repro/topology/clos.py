"""Folded-Clos electrical network topologies (paper §2, §7 baselines).

Models the hierarchical, electrically-switched networks (ESN) Sirius is
compared against:

* the *scale tax* of Fig 2a — how many switch layers (and hence how much
  power per unit bisection bandwidth) a given node count requires;
* the non-blocking and 3:1-oversubscribed three-tier folded Clos used as
  simulation baselines in §7;
* device counts (switches, transceivers) feeding the power/cost models
  of §5.

A folded Clos built from ``radix``-port switches supports up to
``2 · (radix/2)^L`` end-points with ``L`` switch layers (each layer
halves its ports down/up, except the top layer which uses all ports
down).  An end-to-end path traverses up to ``2L − 1`` switches and
``2L`` transceiver hops (Fig 2a counts up to six transceivers across a
path of a four-layer network).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.units import GBPS


def layers_required(n_nodes: int, radix: int) -> int:
    """Switch layers a folded Clos needs to connect ``n_nodes``.

    Layer counts follow Fig 2a's scale axis: 2 nodes need 0 layers
    (direct fibre), up to ``radix`` nodes need 1 (a single switch), then
    each extra layer multiplies reach by ``radix/2``.

    >>> layers_required(2, 64), layers_required(64, 64)
    (0, 1)
    >>> layers_required(2048, 64), layers_required(65536, 64)
    (2, 3)
    >>> layers_required(2_000_000, 64)
    4
    """
    if n_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {n_nodes}")
    if radix < 2 or radix % 2:
        raise ValueError(f"radix must be a positive even integer, got {radix}")
    if n_nodes == 2:
        return 0
    layers = 1
    reach = radix
    while reach < n_nodes:
        layers += 1
        reach *= radix // 2
    return layers


@dataclass
class ClosTopology:
    """A folded-Clos (fat-tree-style) network of electrical switches.

    Parameters
    ----------
    n_nodes:
        End-points (servers or racks) attached at the bottom tier.
    radix:
        Ports per switch (paper: 64 × 400 Gb/s, i.e. 25.6 Tb/s ASICs).
    port_rate_bps:
        Rate of each switch port / transceiver.
    oversubscription:
        Ratio of downlink to uplink capacity at the aggregation tier;
        1.0 is non-blocking, 3.0 is the paper's ESN-OSUB baseline.
    """

    n_nodes: int
    radix: int = 64
    port_rate_bps: float = 400 * GBPS
    oversubscription: float = 1.0

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {self.n_nodes}")
        if self.radix < 2 or self.radix % 2:
            raise ValueError(f"radix must be even and >= 2, got {self.radix}")
        if self.oversubscription < 1.0:
            raise ValueError(
                f"oversubscription must be >= 1, got {self.oversubscription}"
            )

    # -- structure -----------------------------------------------------------
    @property
    def n_layers(self) -> int:
        """Switch layers needed for this scale."""
        return layers_required(self.n_nodes, self.radix)

    @property
    def max_switches_on_path(self) -> int:
        """Switches traversed by a worst-case end-to-end path."""
        if self.n_layers == 0:
            return 0
        return 2 * self.n_layers - 1

    @property
    def max_transceivers_on_path(self) -> int:
        """Transceivers traversed end-to-end (2 per switch-to-switch hop).

        For the paper's four-layer datacenter: "up to six transceivers
        across an end-to-end path" — two at the ends plus two per
        inter-switch crossing when traffic stays within the lower
        tiers; worst case is ``2 · n_layers``.
        """
        if self.n_layers == 0:
            return 2
        return 2 * self.n_layers

    def switch_count(self) -> int:
        """Total number of switches across all tiers.

        Non-blocking folded Clos: the bottom tier uses half its ports
        down; each node consumes one bottom-tier port.  Tier ``t``
        (0-based from bottom) needs ``n_nodes / (radix/2)^(t+1)``
        switches, except the top tier which uses all ports downward and
        so needs half as many.  Oversubscription divides the uplink
        capacity — and thus every tier above the bottom — by the
        oversubscription ratio.
        """
        if self.n_layers == 0:
            return 0
        half = self.radix // 2
        if self.n_layers == 1:
            self._tier_counts = [1]
            return 1
        # Tier t (bottom first) must provide enough downward ports for the
        # uplinks of the tier below (or for the nodes, at t = 0); the top
        # tier uses all its ports downward, others reserve half for uplinks.
        counts: List[int] = []
        downward_ports_needed = float(self.n_nodes)
        for tier in range(self.n_layers):
            is_top = tier == self.n_layers - 1
            if tier > 0 and tier == 1:
                downward_ports_needed /= self.oversubscription
            ports_down = self.radix if is_top else half
            counts.append(max(1, math.ceil(downward_ports_needed / ports_down)))
            downward_ports_needed = counts[-1] * (0 if is_top else half)
        self._tier_counts = counts
        return sum(counts)

    def tier_switch_counts(self) -> List[int]:
        """Per-tier switch counts, bottom tier first."""
        self.switch_count()
        return list(getattr(self, "_tier_counts", []))

    def transceiver_count(self) -> int:
        """Total optical transceivers in the network.

        Every inter-switch link needs a transceiver at both ends; node
        attachments need one at the node and one at the switch.
        """
        if self.n_layers == 0:
            return 2  # direct node-to-node fibre
        counts = self.tier_switch_counts()
        half = self.radix // 2
        transceivers = 2 * self.n_nodes  # node <-> bottom tier
        for tier in range(self.n_layers - 1):
            uplinks = counts[tier] * half
            transceivers += 2 * uplinks
        return transceivers

    # -- capacity -----------------------------------------------------------
    @property
    def bisection_bandwidth_bps(self) -> float:
        """Bisection bandwidth delivered to the nodes."""
        return (
            self.n_nodes * self.port_rate_bps / 2.0 / self.oversubscription
        )

    def pods(self) -> Dict[int, range]:
        """Partition of nodes into aggregation pods.

        A pod is the set of nodes under one aggregation subtree; traffic
        leaving a pod shares the (possibly oversubscribed) uplink
        capacity.  Used by the fluid simulator to model ESN-OSUB.
        """
        if self.n_layers <= 1:
            return {0: range(self.n_nodes)}
        half = self.radix // 2
        pod_size = half * half if self.n_layers >= 3 else half
        pod_size = min(pod_size, self.n_nodes)
        return {
            p: range(p * pod_size, min((p + 1) * pod_size, self.n_nodes))
            for p in range(math.ceil(self.n_nodes / pod_size))
        }

    def pod_uplink_bandwidth_bps(self) -> float:
        """Aggregate uplink capacity of one pod toward the core."""
        pod_size = len(self.pods()[0])
        return pod_size * self.port_rate_bps / self.oversubscription

    def __repr__(self) -> str:
        return (
            f"ClosTopology(n_nodes={self.n_nodes}, radix={self.radix}, "
            f"layers={self.n_layers}, oversub={self.oversubscription})"
        )
