"""Physical topologies: the Sirius flat optical core and Clos baselines.

* :mod:`repro.topology.sirius` — nodes × uplinks × single layer of
  passive AWGR gratings (paper §4.1, Fig 5a).
* :mod:`repro.topology.clos` — hierarchical folded-Clos electrical
  networks used as the paper's ESN baselines (§2, §7) and for the
  scale-tax analysis (Fig 2a).
"""

from repro.topology.sirius import SiriusTopology, Uplink
from repro.topology.clos import ClosTopology

__all__ = ["SiriusTopology", "Uplink", "ClosTopology"]
