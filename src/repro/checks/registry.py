"""The canonical rule registry for :mod:`repro.checks`.

Adding a rule: subclass :class:`repro.checks.engine.Rule` in the
appropriate family module (or a new one), give it a unique ``code``
(family letter + number) and kebab-case ``name``, and append an instance
to that family's list — the CLI, suppression comments and
``--select``/``--ignore`` pick it up from here.
"""

from __future__ import annotations

from typing import List

from repro.checks.determinism_rules import DETERMINISM_RULES
from repro.checks.engine import Rule
from repro.checks.invariant_rules import INVARIANT_RULES
from repro.checks.obs_rules import OBS_RULES
from repro.checks.perf_rules import PERF_RULES
from repro.checks.units_rules import UNITS_RULES

__all__ = ["ALL_RULES", "rules_by_code"]

ALL_RULES: List[Rule] = [
    *UNITS_RULES, *DETERMINISM_RULES, *INVARIANT_RULES, *OBS_RULES,
    *PERF_RULES,
]


def rules_by_code() -> dict:
    return {rule.code: rule for rule in ALL_RULES}
