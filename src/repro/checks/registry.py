"""The canonical rule registry for :mod:`repro.checks`.

Adding a per-file rule: subclass :class:`repro.checks.engine.Rule` in
the appropriate family module (or a new one), give it a unique ``code``
(family letter + number) and kebab-case ``name``, and append an instance
to that family's list — the CLI, suppression comments and
``--select``/``--ignore`` pick it up from here.

Writing a flow rule
-------------------
Cross-file rules subclass :class:`repro.checks.engine.ProjectRule` and
live under :mod:`repro.checks.flow`.  The recipe:

1. implement ``check_project(self, project)`` — ``project`` is a
   :class:`repro.checks.flow.Project` carrying the symbol table
   (``project.functions`` keyed by dotted qualname), per-module import
   maps, and the call graph (``project.calls``,
   ``project.reachable_from``);
2. put the expensive analysis in its own class taking the project as
   its only constructor argument and fetch it with
   ``project.shared(MyAnalysis)`` — every rule in the family then
   reuses one instance per lint run;
3. for per-function reasoning, build a CFG with
   :func:`repro.checks.flow.build_cfg` and run a subclass of
   :class:`repro.checks.flow.ForwardAnalysis`;
   :func:`repro.checks.flow.statement_envs` gives the abstract
   environment *before* each statement;
4. anchor findings with ``self.finding(info.ctx, node, message)`` at
   the file/line where the fix belongs — suppression comments apply at
   the anchoring line, even for findings whose cause is in another
   file;
5. give the rule a code in the flow ranges (``F6xx`` dimensions,
   ``T7xx`` determinism taint, ``S8xx`` fast-path parity, ``C9xx``
   concurrency, ``B10xx`` async-blocking, ``K11xx`` pickle-safety,
   ``M12xx`` snapshot-completeness, ``N13xx`` protocol-conformance,
   ``W14xx`` backend state parity, or a new family), append the
   instance to the family list in its module, and add the family list
   here;
6. test it with :func:`repro.checks.engine.check_project_source`,
   passing a ``{relpath: source}`` dict — one fixture with the injected
   bug, one clean twin that must stay silent.
"""

from __future__ import annotations

from typing import List

from repro.checks.concurrency import CONCURRENCY_RULES
from repro.checks.determinism_rules import DETERMINISM_RULES
from repro.checks.engine import Rule
from repro.checks.flow import FLOW_RULES
from repro.checks.invariant_rules import INVARIANT_RULES
from repro.checks.obs_rules import OBS_RULES
from repro.checks.perf_rules import PERF_RULES
from repro.checks.state import STATE_RULES
from repro.checks.units_rules import UNITS_RULES

__all__ = ["ALL_RULES", "rules_by_code"]

ALL_RULES: List[Rule] = [
    *UNITS_RULES, *DETERMINISM_RULES, *INVARIANT_RULES, *OBS_RULES,
    *PERF_RULES, *FLOW_RULES, *CONCURRENCY_RULES, *STATE_RULES,
]


def rules_by_code() -> dict:
    return {rule.code: rule for rule in ALL_RULES}
