"""Command-line front end for :mod:`repro.checks` (``sirius-lint``).

Usage::

    sirius-lint src/repro                      # lint against the baseline
    sirius-lint src/repro --format json        # machine-readable output
    sirius-lint src/repro --select D,U101      # only these rules/families
    sirius-lint src/repro --ignore I302        # everything but these
    sirius-lint src/repro --no-baseline        # report *all* findings
    sirius-lint src/repro --write-baseline     # accept current findings
    sirius-lint src/repro --stats              # per-family/pass timings
    sirius-lint src/repro --stats-json lint-stats.json   # same, as JSON
    sirius-lint src/repro --sarif-out lint.sarif   # CI artifact
    sirius-lint src/repro --changed-only       # only git-changed files

Exit status: 0 when no *new* findings relative to the baseline (and no
stale baseline entries), 1 otherwise, 2 on usage errors.

Defaults (paths, baseline location, select/ignore) can be set in
``pyproject.toml``::

    [tool.repro.checks]
    paths = ["src/repro"]
    baseline = "checks_baseline.json"
    ignore = []
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.checks.baseline import (
    DEFAULT_BASELINE_NAME,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.checks.engine import (
    Finding,
    LintStats,
    filter_rules,
    format_json,
    format_sarif,
    format_text,
    run_checks,
)
from repro.checks.registry import ALL_RULES

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - 3.9/3.10 fall back to defaults
    tomllib = None

__all__ = ["main", "load_config", "find_project_root",
           "changed_python_files"]


def find_project_root(start: Optional[Path] = None) -> Optional[Path]:
    """Nearest ancestor of ``start`` containing ``pyproject.toml``."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def load_config(root: Optional[Path]) -> Dict[str, object]:
    """The ``[tool.repro.checks]`` table of ``pyproject.toml`` (or {})."""
    if root is None or tomllib is None:
        return {}
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return {}
    try:
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except (OSError, tomllib.TOMLDecodeError):
        return {}
    table = data.get("tool", {}).get("repro", {}).get("checks", {})
    return table if isinstance(table, dict) else {}


def _split_idents(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sirius-lint",
        description="Simulator-aware static analysis for the Sirius "
                    "reproduction (unit-dimension, determinism and "
                    "invariant lints).",
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: [tool.repro.checks] paths, else "
                             "src/repro)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="output format (default: text; sarif emits a "
                             "minimal SARIF 2.1.0 log of the new findings)")
    parser.add_argument("--select", type=str, default=None, metavar="IDS",
                        help="comma-separated rule codes/names/families "
                             "to run (e.g. 'U101,determinism' or 'D')")
    parser.add_argument("--ignore", type=str, default=None, metavar="IDS",
                        help="comma-separated rule codes/names/families "
                             "to skip")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: {DEFAULT_BASELINE_NAME} "
                             "at the project root)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline: report every finding")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the baseline "
                             "and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="list available rules and exit")
    parser.add_argument("--stats", action="store_true",
                        help="print findings-per-family counts and wall "
                             "time per pass to stderr")
    parser.add_argument("--sarif-out", type=Path, default=None,
                        metavar="PATH",
                        help="additionally write a SARIF 2.1.0 log of the "
                             "new findings to PATH (CI artifact), whatever "
                             "--format says")
    parser.add_argument("--stats-json", type=Path, default=None,
                        metavar="PATH",
                        help="write machine-readable per-family/per-pass "
                             "timing and finding-count stats to PATH "
                             "(companion artifact to --sarif-out)")
    parser.add_argument("--changed-only", action="store_true",
                        help="report only findings in files git reports as "
                             "changed since the merge-base with --diff-base "
                             "(plus uncommitted and untracked files); "
                             "cross-file rules still analyze the whole "
                             "tree, so call-graph closures stay sound")
    parser.add_argument("--diff-base", type=str, default="main",
                        metavar="REF",
                        help="reference branch for --changed-only "
                             "(default: main)")
    return parser


def changed_python_files(root: Path, diff_base: str) -> Optional[List[Path]]:
    """Python files changed relative to ``merge-base(HEAD, diff_base)``.

    Includes committed changes on the branch, uncommitted edits, and
    untracked files.  Returns None when ``root`` is not inside a git
    work tree (the caller reports the usage error); a ``diff_base``
    with no merge-base (fresh repo, unrelated branch) degrades to
    diffing against HEAD, so uncommitted work is still linted.
    """
    import subprocess

    def git(*cmd: str) -> Optional[str]:
        try:
            proc = subprocess.run(["git", *cmd], cwd=root,
                                  capture_output=True, text=True)
        except OSError:
            return None
        return proc.stdout if proc.returncode == 0 else None

    if git("rev-parse", "--is-inside-work-tree") is None:
        return None
    merge_base = git("merge-base", "HEAD", diff_base)
    rev = merge_base.strip() if merge_base else "HEAD"
    listed: List[str] = []
    diff = git("diff", "--name-only", rev)
    if diff is not None:
        listed.extend(diff.splitlines())
    untracked = git("ls-files", "--others", "--exclude-standard")
    if untracked is not None:
        listed.extend(untracked.splitlines())
    top = git("rev-parse", "--show-toplevel")
    base = Path(top.strip()) if top else root
    seen = []
    for name in dict.fromkeys(listed):  # de-dup, keep order
        if not name.endswith(".py"):
            continue
        candidate = base / name
        if candidate.is_file():
            seen.append(candidate)
    return seen


def _under(path: Path, parents: List[Path]) -> bool:
    resolved = path.resolve()
    for parent in parents:
        parent = parent.resolve()
        if resolved == parent or parent in resolved.parents:
            return True
    return False


def _list_rules() -> str:
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.code}  {rule.name:<20} {rule.description}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0

    root = find_project_root()
    config = load_config(root)

    select = _split_idents(args.select)
    ignore = _split_idents(args.ignore)
    if select is None and isinstance(config.get("select"), list):
        select = [str(item) for item in config["select"]] or None
    if ignore is None and isinstance(config.get("ignore"), list):
        ignore = [str(item) for item in config["ignore"]] or None

    paths = list(args.paths)
    if not paths:
        configured = config.get("paths")
        if isinstance(configured, list) and configured:
            base = root or Path.cwd()
            paths = [base / str(item) for item in configured]
        else:
            base = root or Path.cwd()
            paths = [base / "src" / "repro"]
    missing = [path for path in paths if not path.exists()]
    if missing:
        print(f"sirius-lint: no such path: "
              f"{', '.join(str(p) for p in missing)}", file=sys.stderr)
        return 2

    rules = filter_rules(ALL_RULES, select=select, ignore=ignore)
    if not rules:
        print("sirius-lint: --select matched no rules", file=sys.stderr)
        return 2

    changed_files: Optional[Set[Path]] = None
    if args.changed_only:
        changed = changed_python_files(root or Path.cwd(), args.diff_base)
        if changed is None:
            print("sirius-lint: --changed-only needs a git work tree",
                  file=sys.stderr)
            return 2
        # Project rules still analyze every configured path: a method's
        # read/write closure routinely crosses into unchanged files, and
        # diffing a partial call graph against the baseline invents
        # findings.  Only the *report* is narrowed to changed files.
        changed_files = {path.resolve() for path in changed
                         if _under(path, paths)}
        if not changed_files:
            print("sirius-lint: no changed files under the linted paths")
            return 0

    stats = LintStats() if (args.stats or args.stats_json) else None
    findings = run_checks(paths, rules, root=root, stats=stats)
    if changed_files is not None:
        base = (root or Path.cwd()).resolve()
        findings = [finding for finding in findings
                    if (base / finding.path).resolve() in changed_files]
    if args.stats_json is not None and stats is not None:
        import json as _json

        args.stats_json.parent.mkdir(parents=True, exist_ok=True)
        args.stats_json.write_text(
            _json.dumps(stats.as_dict(), indent=2) + "\n", encoding="utf-8")

    baseline_path = args.baseline
    if baseline_path is None:
        configured = config.get("baseline")
        base = root or Path.cwd()
        baseline_path = base / (str(configured) if isinstance(configured, str)
                                else DEFAULT_BASELINE_NAME)

    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(f"sirius-lint: wrote {len(findings)} finding(s) to "
              f"{baseline_path}")
        return 0

    if args.no_baseline:
        new, stale = list(findings), []
    else:
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"sirius-lint: malformed baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2
        new, stale = diff_against_baseline(findings, baseline)
        # A narrowed run produces a narrowed finding set; only entries
        # the active rules *could* have reproduced count as stale.
        active_codes = {rule.code for rule in rules}
        stale = [fp for fp in stale
                 if fp.split("::")[1:2] and fp.split("::")[1] in active_codes]
        if args.changed_only:
            # Findings in unchanged files are filtered out before the
            # diff; their baseline entries are not stale, just
            # unreported.
            stale = []

    if args.sarif_out is not None:
        args.sarif_out.parent.mkdir(parents=True, exist_ok=True)
        args.sarif_out.write_text(format_sarif(new, rules=ALL_RULES) + "\n",
                                  encoding="utf-8")
    _report(args.format, new, stale, total=len(findings))
    if stats is not None:
        print(stats.render(), file=sys.stderr)
    return 1 if (new or stale) else 0


def _report(fmt: str, new: List[Finding], stale: List[str],
            total: int) -> None:
    if fmt == "sarif":
        print(format_sarif(new, rules=ALL_RULES))
        return
    if fmt == "json":
        import json

        payload = json.loads(format_json(new))
        payload["stale_baseline_entries"] = stale
        payload["total_findings"] = total
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    print(format_text(new) if new else
          f"no new findings ({total} baselined)" if total else "no findings")
    if stale:
        print(f"\n{len(stale)} stale baseline entr"
              f"{'ies' if len(stale) != 1 else 'y'} (fixed findings — "
              "regenerate with --write-baseline):")
        for fingerprint in stale:
            print(f"  {fingerprint}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
