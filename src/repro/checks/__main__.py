"""Entry point: ``python -m repro.checks [paths...]``."""

import sys

from repro.checks.cli import main

sys.exit(main())
