"""Cross-module dataflow analysis layer for :mod:`repro.checks`.

``repro.checks.flow`` sits beneath the rule engine: it builds a
project-wide symbol table and call graph (:mod:`.project`), per-function
control-flow graphs (:mod:`.cfg`) and a small forward-dataflow framework
(:mod:`.dataflow`), then layers three project-rule families on top:

* ``F6xx`` (:mod:`.dimension_rules`) — physical-dimension inference and
  cross-function dimension-mismatch detection;
* ``T7xx`` (:mod:`.taint_rules`) — determinism taint: can wall-clock /
  entropy / hash-order nondeterminism reach a simulation run?
* ``S8xx`` (:mod:`.parity_rules`) — fast-path/reference-path parity:
  do both sides of every ``if fast:`` split touch the same state?
"""

from repro.checks.flow.cfg import CFG, build_cfg
from repro.checks.flow.dataflow import (
    ForwardAnalysis,
    ReachingDefinitions,
    statement_envs,
)
from repro.checks.flow.dimension_rules import (
    DIMENSION_FLOW_RULES,
    DimensionInference,
)
from repro.checks.flow.parity_rules import PARITY_RULES, ParityAudit
from repro.checks.flow.project import FunctionInfo, Project
from repro.checks.flow.taint_rules import TAINT_FLOW_RULES, TaintAnalysis

#: Every project-level rule this package provides, in report order.
FLOW_RULES = [*DIMENSION_FLOW_RULES, *TAINT_FLOW_RULES, *PARITY_RULES]

__all__ = [
    "CFG",
    "DIMENSION_FLOW_RULES",
    "DimensionInference",
    "FLOW_RULES",
    "ForwardAnalysis",
    "FunctionInfo",
    "PARITY_RULES",
    "ParityAudit",
    "Project",
    "ReachingDefinitions",
    "TAINT_FLOW_RULES",
    "TaintAnalysis",
    "build_cfg",
    "statement_envs",
]
