"""Per-function control-flow graphs for :mod:`repro.checks.flow`.

A :class:`CFG` is a set of basic blocks (straight-line statement lists)
connected by successor edges, built from one ``ast.FunctionDef``.  The
builder covers the statement forms the simulator code uses — ``if``,
``while``, ``for``, ``try``, ``with``, ``return``, ``raise``, ``break``,
``continue`` — and is deliberately conservative where exact semantics
would cost complexity:

* loops get both the back edge and the fall-through exit edge (a
  ``while True`` still gets the exit edge — harmless over-approximation
  for a forward may-analysis);
* every ``try`` body statement may jump to every handler (exceptions
  can occur anywhere), and the ``finally`` block dominates the exit;
* nested function definitions are opaque single statements; they get
  their own CFGs when analyzed as functions in their own right.

The dataflow framework (:mod:`repro.checks.flow.dataflow`) runs a
worklist to fixpoint over these blocks, which is what lets dimension
and taint facts survive joins at ``if``/``else`` merges and loop heads.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["Block", "CFG", "build_cfg"]


@dataclass
class Block:
    """A basic block: statements executed in order, then a branch."""

    block_id: int
    statements: List[ast.stmt] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)

    def add_successor(self, block_id: int) -> None:
        if block_id not in self.successors:
            self.successors.append(block_id)


@dataclass
class CFG:
    """Blocks of one function; block 0 is the entry, ``exit_id`` the exit."""

    blocks: Dict[int, Block]
    entry_id: int
    exit_id: int

    def predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {bid: [] for bid in self.blocks}
        for block in self.blocks.values():
            for succ in block.successors:
                preds[succ].append(block.block_id)
        return preds


class _Builder:
    def __init__(self) -> None:
        self.blocks: Dict[int, Block] = {}
        self.entry = self._new_block()
        self.exit = self._new_block()

    def _new_block(self) -> Block:
        block = Block(block_id=len(self.blocks))
        self.blocks[block.block_id] = block
        return block

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        end = self._emit_body(body, self.entry, break_to=None,
                              continue_to=None)
        if end is not None:
            end.add_successor(self.exit.block_id)
        return CFG(blocks=self.blocks, entry_id=self.entry.block_id,
                   exit_id=self.exit.block_id)

    def _emit_body(self, body: Sequence[ast.stmt], current: Optional[Block],
                   break_to: Optional[Block],
                   continue_to: Optional[Block]) -> Optional[Block]:
        """Emit ``body`` starting in ``current``; return the open end block.

        ``None`` means control cannot fall through (return/raise/...).
        """
        for stmt in body:
            if current is None:
                # Unreachable code after a terminator still gets a block
                # so rules can inspect it, but no edges in.
                current = self._new_block()
            current = self._emit_stmt(stmt, current, break_to, continue_to)
        return current

    def _emit_stmt(self, stmt: ast.stmt, current: Block,
                   break_to: Optional[Block],
                   continue_to: Optional[Block]) -> Optional[Block]:
        if isinstance(stmt, ast.If):
            current.statements.append(stmt)
            after = self._new_block()
            for branch in (stmt.body, stmt.orelse):
                if branch:
                    head = self._new_block()
                    current.add_successor(head.block_id)
                    end = self._emit_body(branch, head, break_to, continue_to)
                    if end is not None:
                        end.add_successor(after.block_id)
                else:
                    current.add_successor(after.block_id)
            return after

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            current.statements.append(stmt)  # header: test / iter + target
            head = self._new_block()
            after = self._new_block()
            current.add_successor(head.block_id)
            current.add_successor(after.block_id)
            end = self._emit_body(stmt.body, head, break_to=after,
                                  continue_to=head)
            if end is not None:
                end.add_successor(head.block_id)  # loop back edge
                end.add_successor(after.block_id)
            if stmt.orelse:
                orelse_end = self._emit_body(stmt.orelse, after, break_to,
                                             continue_to)
                return orelse_end
            return after

        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            current.statements.append(stmt)
            after = self._new_block()
            body_end = self._emit_body(stmt.body, self._linked(current),
                                       break_to, continue_to)
            handler_targets: List[Optional[Block]] = []
            for handler in stmt.handlers:
                head = self._new_block()
                # Any body statement may raise into any handler.
                current.add_successor(head.block_id)
                handler_targets.append(
                    self._emit_body(handler.body, head, break_to, continue_to)
                )
            ends = [end for end in (body_end, *handler_targets)
                    if end is not None]
            if stmt.orelse and body_end is not None:
                ends.remove(body_end)
                orelse_end = self._emit_body(stmt.orelse, body_end, break_to,
                                             continue_to)
                if orelse_end is not None:
                    ends.append(orelse_end)
            if stmt.finalbody:
                final_head = self._new_block()
                for end in ends:
                    end.add_successor(final_head.block_id)
                if not ends:
                    current.add_successor(final_head.block_id)
                final_end = self._emit_body(stmt.finalbody, final_head,
                                            break_to, continue_to)
                if final_end is not None:
                    final_end.add_successor(after.block_id)
                return after
            for end in ends:
                end.add_successor(after.block_id)
            return after if ends else None

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            current.statements.append(stmt)  # context expressions
            return self._emit_body(stmt.body, self._linked(current),
                                   break_to, continue_to)

        if isinstance(stmt, (ast.Return, ast.Raise)):
            current.statements.append(stmt)
            current.add_successor(self.exit.block_id)
            return None

        if isinstance(stmt, ast.Break):
            current.statements.append(stmt)
            if break_to is not None:
                current.add_successor(break_to.block_id)
            return None

        if isinstance(stmt, ast.Continue):
            current.statements.append(stmt)
            if continue_to is not None:
                current.add_successor(continue_to.block_id)
            return None

        current.statements.append(stmt)
        return current

    def _linked(self, current: Block) -> Block:
        head = self._new_block()
        current.add_successor(head.block_id)
        return head


def build_cfg(fn: ast.AST) -> CFG:
    """Build the CFG of one ``FunctionDef``/``AsyncFunctionDef``/module."""
    body = fn.body if hasattr(fn, "body") else [fn]
    return _Builder().build(body)
