"""A small forward-dataflow framework over :mod:`repro.checks.flow.cfg`.

Analyses subclass :class:`ForwardAnalysis`, choosing the abstract value
attached to each variable and a ``transfer`` that interprets one
statement *shallowly* — compound statements (``if``/``while``/``for``)
appear in their block as headers, so a transfer only models the part
evaluated there (the loop target binding, the context-manager ``as``
name), never the nested bodies, which live in successor blocks.

The engine is the classic worklist algorithm: propagate each block's
output environment to its successors, joining environments pointwise,
until nothing changes.  Joins are forced to a fixpoint by the analysis'
``join_values`` (which must be idempotent/commutative/associative and
eventually stabilize — the provided analyses use small finite domains).

:class:`ReachingDefinitions` is the reference instance — variable → set
of line numbers whose assignment may reach this point — used by the
tests to pin the framework's semantics and available to future rules.
"""

from __future__ import annotations

import ast
from typing import Dict, Generic, Iterator, List, Optional, Set, TypeVar

from repro.checks.flow.cfg import CFG, build_cfg

__all__ = [
    "ForwardAnalysis",
    "ReachingDefinitions",
    "assigned_names",
    "statement_envs",
]

V = TypeVar("V")
Env = Dict[str, V]


def assigned_names(target: ast.AST) -> Iterator[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from assigned_names(element)
    elif isinstance(target, ast.Starred):
        yield from assigned_names(target.value)


class ForwardAnalysis(Generic[V]):
    """Worklist forward dataflow; subclasses define the value domain."""

    def initial_env(self, fn: ast.AST) -> Env:
        """Environment at function entry (usually parameter seeds)."""
        return {}

    def join_values(self, left: V, right: V) -> V:
        raise NotImplementedError

    def transfer(self, env: Env, stmt: ast.stmt) -> Env:
        """Return the environment after ``stmt`` (header-shallow)."""
        raise NotImplementedError

    # -- driver ----------------------------------------------------------
    def join_envs(self, envs: List[Env]) -> Env:
        if not envs:
            return {}
        merged: Env = dict(envs[0])
        for env in envs[1:]:
            for name, value in env.items():
                if name in merged:
                    merged[name] = self.join_values(merged[name], value)
                else:
                    merged[name] = value
        return merged

    def run(self, fn: ast.AST, cfg: Optional[CFG] = None) -> Dict[int, Env]:
        """Fixpoint block-input environments, keyed by block id."""
        if cfg is None:
            cfg = build_cfg(fn)
        preds = cfg.predecessors()
        env_in: Dict[int, Env] = {cfg.entry_id: self.initial_env(fn)}
        env_out: Dict[int, Env] = {}
        worklist = [cfg.entry_id]
        iterations = 0
        limit = 50 * max(len(cfg.blocks), 1)
        while worklist and iterations < limit:
            iterations += 1
            block_id = worklist.pop(0)
            block = cfg.blocks[block_id]
            incoming = [env_out[p] for p in preds[block_id] if p in env_out]
            if block_id == cfg.entry_id:
                incoming.append(self.initial_env(fn))
            env = self.join_envs(incoming) if incoming else {}
            env_in[block_id] = env
            out = dict(env)
            for stmt in block.statements:
                out = self.transfer(out, stmt)
            if env_out.get(block_id) != out:
                env_out[block_id] = out
                for succ in block.successors:
                    if succ not in worklist:
                        worklist.append(succ)
        return env_in


def statement_envs(analysis: ForwardAnalysis, fn: ast.AST,
                   cfg: Optional[CFG] = None) -> Dict[int, Dict]:
    """Environment *before* each statement, keyed by ``id(stmt)``.

    Replays each block's transfers from the fixpoint block inputs, so a
    rule can ask "what is known where this expression sits?".
    """
    if cfg is None:
        cfg = build_cfg(fn)
    env_in = analysis.run(fn, cfg)
    at_stmt: Dict[int, Dict] = {}
    for block_id, block in cfg.blocks.items():
        env = dict(env_in.get(block_id, {}))
        for stmt in block.statements:
            at_stmt[id(stmt)] = env
            env = analysis.transfer(env, stmt)
    return at_stmt


class ReachingDefinitions(ForwardAnalysis[Set[int]]):
    """Variable → set of assignment line numbers that may reach here."""

    def join_values(self, left: Set[int], right: Set[int]) -> Set[int]:
        return left | right

    def initial_env(self, fn: ast.AST) -> Dict[str, Set[int]]:
        env: Dict[str, Set[int]] = {}
        args = getattr(fn, "args", None)
        if args is not None:
            lineno = getattr(fn, "lineno", 0)
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                env[arg.arg] = {lineno}
            for extra in (args.vararg, args.kwarg):
                if extra is not None:
                    env[extra.arg] = {lineno}
        return env

    def transfer(self, env: Dict[str, Set[int]],
                 stmt: ast.stmt) -> Dict[str, Set[int]]:
        out = dict(env)
        line = getattr(stmt, "lineno", 0)

        def define(target: ast.AST) -> None:
            for name in assigned_names(target):
                out[name] = {line}

        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                define(target)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            define(stmt.target)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            define(stmt.target)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    define(item.optional_vars)
        return out
