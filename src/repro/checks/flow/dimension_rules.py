"""Dimensional-flow rules (family ``F6``) for :mod:`repro.checks.flow`.

The per-file ``U1xx`` family reads dimensions off the trailing
``_suffix`` naming convention, literal by literal; these rules *infer*
dimensions and propagate them through assignments, arithmetic, returns
and call sites, so a dB-vs-linear or seconds-vs-bits slip is caught even
when it crosses a function (or file) boundary:

* ``F601 flow-dimension-mismatch`` — additive arithmetic or comparison
  between values whose *inferred* dimensions differ (the syntactic
  both-sides-suffixed case stays with ``U103``);
* ``F602 flow-db-linear-mix`` — inferred decibel (level) and linear
  power meeting in ``+``/``-`` (the syntactic case stays with ``U102``);
* ``F603 call-dimension-mismatch`` — an argument whose inferred
  dimension contradicts the dimension the callee's parameter name
  declares (``fibre_delay(distance_m=duration_s)``).

Dimension facts come from three sources, then flow through the forward
dataflow of :mod:`repro.checks.flow.dataflow`:

1. the ``_suffix`` convention on names, parameters and attributes;
2. :mod:`repro.units` — its constants (``NS``, ``GBPS``, ``MILLIWATT``)
   carry the dimension they scale, and its conversion helpers
   (``dbm_to_w``, ``mw_to_dbm``, ``fibre_delay``, …) have pinned return
   dimensions;
3. inferred per-function return summaries, iterated to a fixpoint over
   the project call graph, so ``detour_delay()`` is known to be time
   wherever it is called.

Multiplication and division combine dimensions through a small algebra
(``rate × time → data``, ``data / rate → time``, ``energy / time →
power``); anything outside the table degrades to *unknown*, and every
rule stays silent whenever either side is unknown — the analyses are
tuned to miss rather than cry wolf.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.checks.engine import FileContext, Finding, ProjectRule
from repro.checks.flow.cfg import CFG, build_cfg
from repro.checks.flow.dataflow import (
    ForwardAnalysis,
    assigned_names,
    statement_envs,
)
from repro.checks.flow.project import FunctionInfo, Project
from repro.checks.units_rules import _trailing_name, dimension_of

__all__ = [
    "DIMENSION_FLOW_RULES",
    "DimensionInference",
    "FlowDimensionMismatchRule",
    "FlowDbLinearMixRule",
    "CallDimensionMismatchRule",
    "UNIT_CONSTANT_DIMS",
    "CONVERSION_RETURNS",
]


#: repro.units constants → the dimension of the quantity they scale.
UNIT_CONSTANT_DIMS: Dict[str, str] = {
    "SECOND": "time", "MILLISECOND": "time", "MICROSECOND": "time",
    "NANOSECOND": "time", "PICOSECOND": "time",
    "MS": "time", "US": "time", "NS": "time", "PS": "time",
    "BIT": "data", "BYTE": "data", "KILOBYTE": "data", "KIB": "data",
    "MEGABYTE": "data", "MIB": "data",
    "BPS": "rate", "KBPS": "rate", "MBPS": "rate", "GBPS": "rate",
    "TBPS": "rate", "PBPS": "rate",
    "WATT": "power", "MILLIWATT": "power", "MICROWATT": "power",
    "KILOWATT": "power", "MEGAWATT": "power",
    "JOULE": "energy", "PICOJOULE": "energy",
    "METRE": "length", "KILOMETRE": "length", "NANOMETRE": "length",
    "HERTZ": "frequency", "GIGAHERTZ": "frequency",
    "C_BAND_CENTRE_NM": "length", "ITU_GRID_SPACING_GHZ": "frequency",
}

#: repro.units conversion helpers → return dimension (by bare name, so
#: fixtures and aliased imports resolve the same way).
CONVERSION_RETURNS: Dict[str, Optional[str]] = {
    "dbm_to_mw": "power", "dbm_to_w": "power",
    "mw_to_dbm": "level", "w_to_dbm": "level",
    "db_ratio": "level", "db_to_ratio": None,
    "fibre_delay": "time", "transmission_time": "time",
    "wavelength_nm": "length",
}

#: Dimension algebra for multiplication (symmetric).
_MUL_TABLE: Dict[FrozenSet[str], str] = {
    frozenset(("rate", "time")): "data",
    frozenset(("power", "time")): "energy",
    frozenset(("frequency", "time")): "",  # dimensionless count
}

#: Dimension algebra for division: (numerator, denominator) → result.
_DIV_TABLE: Dict[Tuple[str, str], Optional[str]] = {
    ("data", "rate"): "time",
    ("data", "time"): "rate",
    ("energy", "time"): "power",
    ("energy", "power"): "time",
    ("time", "time"): None,
    ("length", "time"): None,  # a speed; not in the suffix vocabulary
}

#: Builtins whose result keeps their (first) argument's dimension.
_PASSTHROUGH_BUILTINS = frozenset({"abs", "float", "round", "min", "max"})


class _DimensionAnalysis(ForwardAnalysis[Optional[str]]):
    """Variable → inferred dimension, joined to unknown on conflict."""

    def __init__(self, inference: "DimensionInference",
                 info: FunctionInfo) -> None:
        self.inference = inference
        self.info = info

    def initial_env(self, fn: ast.AST) -> Dict[str, Optional[str]]:
        env: Dict[str, Optional[str]] = {}
        args = getattr(fn, "args", None)
        if args is not None:
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                dim = dimension_of(arg.arg)
                if dim is not None:
                    env[arg.arg] = dim
        return env

    def join_values(self, left: Optional[str],
                    right: Optional[str]) -> Optional[str]:
        return left if left == right else None

    def transfer(self, env: Dict[str, Optional[str]],
                 stmt: ast.stmt) -> Dict[str, Optional[str]]:
        out = dict(env)
        infer = self.inference

        def bind(target: ast.AST, dim: Optional[str]) -> None:
            names = list(assigned_names(target))
            if isinstance(target, ast.Name) and dim is not None:
                out[target.id] = dim
            else:
                for name in names:
                    out.pop(name, None)

        if isinstance(stmt, ast.Assign):
            dim = infer.dim_of(stmt.value, out, self.info)
            for target in stmt.targets:
                bind(target, dim)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            bind(stmt.target, infer.dim_of(stmt.value, out, self.info))
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                current = infer.dim_of(stmt.target, out, self.info)
                if isinstance(stmt.op, (ast.Add, ast.Sub)):
                    bind(stmt.target, current)
                else:
                    combined = infer.combine(
                        stmt.op, current,
                        infer.dim_of(stmt.value, out, self.info))
                    bind(stmt.target, combined)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            # ``for d in delays_s:`` — the element inherits the
            # container's declared dimension.
            bind(stmt.target, infer.dim_of(stmt.iter, out, self.info))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    bind(item.optional_vars, None)
        return out


class DimensionInference:
    """Shared dimension facts for one :class:`Project`.

    Holds the per-function return summaries (iterated to a fixpoint)
    and per-function statement environments, computed once and shared
    by the three ``F6xx`` rules.
    """

    #: Fixpoint passes over the call graph; dimension summaries are
    #: monotone over a finite domain, so this small bound suffices.
    MAX_PASSES = 3

    def __init__(self, project: Project) -> None:
        self.project = project
        self.summaries: Dict[str, Optional[str]] = {}
        self._cfgs: Dict[str, CFG] = {}
        self._envs: Dict[str, Dict[int, Dict[str, Optional[str]]]] = {}
        self._infer_summaries()

    # -- summaries -----------------------------------------------------------
    def _infer_summaries(self) -> None:
        for qualname, info in self.project.functions.items():
            named = dimension_of(info.name)
            if info.name in CONVERSION_RETURNS:
                self.summaries[qualname] = CONVERSION_RETURNS[info.name]
            elif named is not None:
                self.summaries[qualname] = named
        for _ in range(self.MAX_PASSES):
            changed = False
            for qualname, info in self.project.functions.items():
                if info.name in CONVERSION_RETURNS:
                    continue
                inferred = self._return_dim(info)
                if inferred is not None and (
                        self.summaries.get(qualname) != inferred):
                    self.summaries[qualname] = inferred
                    changed = True
            self._envs.clear()
            if not changed:
                break

    def _return_dim(self, info: FunctionInfo) -> Optional[str]:
        envs = self.envs_for(info)
        dims: List[Optional[str]] = []
        for stmt, env in self._statements(info, envs):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                dims.append(self.dim_of(stmt.value, env, info))
        if not dims or any(dim is None for dim in dims):
            return None
        return dims[0] if len(set(dims)) == 1 else None

    # -- per-function environments ------------------------------------------
    def cfg_for(self, info: FunctionInfo) -> CFG:
        cfg = self._cfgs.get(info.qualname)
        if cfg is None:
            cfg = self._cfgs[info.qualname] = build_cfg(info.node)
        return cfg

    def envs_for(self, info: FunctionInfo,
                 ) -> Dict[int, Dict[str, Optional[str]]]:
        envs = self._envs.get(info.qualname)
        if envs is None:
            analysis = _DimensionAnalysis(self, info)
            envs = statement_envs(analysis, info.node, self.cfg_for(info))
            self._envs[info.qualname] = envs
        return envs

    def _statements(self, info: FunctionInfo,
                    envs: Dict[int, Dict]) -> Iterator[Tuple[ast.stmt, Dict]]:
        for block in self.cfg_for(info).blocks.values():
            for stmt in block.statements:
                yield stmt, envs.get(id(stmt), {})

    # -- expression dimensions -----------------------------------------------
    def dim_of(self, expr: ast.AST, env: Dict[str, Optional[str]],
               info: FunctionInfo) -> Optional[str]:
        if isinstance(expr, ast.Name):
            if expr.id in env:
                return env[expr.id]
            if expr.id in UNIT_CONSTANT_DIMS:
                return UNIT_CONSTANT_DIMS[expr.id]
            return dimension_of(expr.id)
        if isinstance(expr, ast.Attribute):
            if expr.attr in UNIT_CONSTANT_DIMS and self._is_units_module(
                    expr.value, info):
                return UNIT_CONSTANT_DIMS[expr.attr]
            return dimension_of(expr.attr)
        if isinstance(expr, ast.Subscript):
            return self.dim_of(expr.value, env, info)
        if isinstance(expr, ast.UnaryOp):
            return self.dim_of(expr.operand, env, info)
        if isinstance(expr, ast.BinOp):
            left = self.dim_of(expr.left, env, info)
            right = self.dim_of(expr.right, env, info)
            return self.combine(expr.op, left, right)
        if isinstance(expr, ast.IfExp):
            body = self.dim_of(expr.body, env, info)
            orelse = self.dim_of(expr.orelse, env, info)
            return body if body == orelse else None
        if isinstance(expr, ast.Call):
            return self._call_dim(expr, env, info)
        return None

    def combine(self, op: ast.operator, left: Optional[str],
                right: Optional[str]) -> Optional[str]:
        if isinstance(op, (ast.Add, ast.Sub)):
            return left if left == right else None
        if isinstance(op, ast.Mult):
            if left is not None and right is not None:
                return _MUL_TABLE.get(frozenset((left, right))) or None
            return left if right is None else right
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if left is not None and right is not None:
                return _DIV_TABLE.get((left, right))
            return left if right is None else None
        if isinstance(op, ast.Mod):
            return left
        return None

    def _call_dim(self, call: ast.Call, env: Dict[str, Optional[str]],
                  info: FunctionInfo) -> Optional[str]:
        func = call.func
        callee_name = (func.id if isinstance(func, ast.Name)
                       else func.attr if isinstance(func, ast.Attribute)
                       else None)
        if callee_name in CONVERSION_RETURNS:
            return CONVERSION_RETURNS[callee_name]
        if callee_name in _PASSTHROUGH_BUILTINS and call.args:
            candidates = {self.dim_of(arg, env, info) for arg in call.args}
            return candidates.pop() if len(candidates) == 1 else None
        resolved = self.project.resolve_call(call, info)
        if resolved:
            candidates = {self.summaries.get(callee) for callee in resolved}
            if len(candidates) == 1:
                return candidates.pop()
            return None
        if callee_name is not None:
            return dimension_of(callee_name)
        return None

    def _is_units_module(self, owner: ast.AST, info: FunctionInfo) -> bool:
        if not isinstance(owner, ast.Name):
            return False
        target = self.project.imports.get(info.module, {}).get(owner.id, "")
        return target.endswith("units")

    # -- shared traversal helpers for the rules ------------------------------
    def own_expressions(self, stmt: ast.stmt) -> Iterator[ast.AST]:
        """Expression trees evaluated *at* ``stmt`` (headers shallow)."""
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                yield from self._walk_expr(child)

    @staticmethod
    def _walk_expr(expr: ast.AST) -> Iterator[ast.AST]:
        stack = [expr]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.expr, ast.keyword,
                                      ast.comprehension)):
                    stack.append(child)


def _syntactic_dims_conflict(left: ast.AST, right: ast.AST) -> bool:
    """True when the per-file U102/U103 rules already cover this pair."""
    left_dim = dimension_of(_trailing_name(left))
    right_dim = dimension_of(_trailing_name(right))
    return (left_dim is not None and right_dim is not None
            and left_dim != right_dim)


class _DimensionFlowRule(ProjectRule):
    """Shared machinery: iterate functions with their inferred envs."""

    def check_project(self, project: Project) -> Iterator[Finding]:
        inference = project.shared(DimensionInference)
        for info in project.functions.values():
            envs = inference.envs_for(info)
            for stmt, env in inference._statements(info, envs):
                yield from self.check_statement(inference, info, stmt, env)

    def check_statement(self, inference: DimensionInference,
                        info: FunctionInfo, stmt: ast.stmt,
                        env: Dict[str, Optional[str]]) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(self, ctx: FileContext, node: ast.AST,
                   message: str) -> Finding:
        return self.finding(ctx, node, message)


def _describe(node: ast.AST, ctx: FileContext) -> str:
    segment = ast.get_source_segment(ctx.source, node)
    if segment is None:
        return "<expr>"
    segment = " ".join(segment.split())
    return segment if len(segment) <= 40 else segment[:37] + "..."


class FlowDimensionMismatchRule(_DimensionFlowRule):
    """Flag additive arithmetic/comparison over conflicting inferred dims."""

    code = "F601"
    name = "flow-dimension-mismatch"
    description = ("add/sub/compare between values whose inferred "
                   "dimensions differ (cross-assignment/function)")

    #: The dB/linear pair belongs to F602.
    _excluded_pair = frozenset(("level", "power"))

    def check_statement(self, inference: DimensionInference,
                        info: FunctionInfo, stmt: ast.stmt,
                        env: Dict[str, Optional[str]]) -> Iterator[Finding]:
        for expr in inference.own_expressions(stmt):
            pairs: List[Tuple[ast.AST, ast.AST, ast.AST]] = []
            if isinstance(expr, ast.BinOp) and isinstance(
                    expr.op, (ast.Add, ast.Sub)):
                pairs.append((expr, expr.left, expr.right))
            elif isinstance(expr, ast.Compare):
                operands = [expr.left, *expr.comparators]
                pairs.extend((expr, a, b)
                             for a, b in zip(operands, operands[1:]))
            for anchor, left, right in pairs:
                left_dim = inference.dim_of(left, env, info)
                right_dim = inference.dim_of(right, env, info)
                if (left_dim is None or right_dim is None
                        or left_dim == right_dim):
                    continue
                if {left_dim, right_dim} == self._excluded_pair:
                    continue
                if _syntactic_dims_conflict(left, right):
                    continue  # U102/U103 already report this pair
                yield self.finding_at(
                    info.ctx, anchor,
                    f"inferred dimension mismatch in {info.short}: "
                    f"{_describe(left, info.ctx)!r} is {left_dim} but "
                    f"{_describe(right, info.ctx)!r} is {right_dim}",
                )


class FlowDbLinearMixRule(_DimensionFlowRule):
    """Flag inferred decibel/linear power meeting in ``+``/``-``."""

    code = "F602"
    name = "flow-db-linear-mix"
    description = ("inferred decibel (level) and linear power mixed in "
                   "additive arithmetic across assignments/functions")

    def check_statement(self, inference: DimensionInference,
                        info: FunctionInfo, stmt: ast.stmt,
                        env: Dict[str, Optional[str]]) -> Iterator[Finding]:
        for expr in inference.own_expressions(stmt):
            if not (isinstance(expr, ast.BinOp)
                    and isinstance(expr.op, (ast.Add, ast.Sub))):
                continue
            left_dim = inference.dim_of(expr.left, env, info)
            right_dim = inference.dim_of(expr.right, env, info)
            if {left_dim, right_dim} != {"level", "power"}:
                continue
            if _syntactic_dims_conflict(expr.left, expr.right):
                continue  # U102 already reports this pair
            yield self.finding_at(
                info.ctx, expr,
                f"inferred dB/linear mix in {info.short}: "
                f"{_describe(expr.left, info.ctx)!r} is {left_dim} but "
                f"{_describe(expr.right, info.ctx)!r} is {right_dim} "
                "(convert with dbm_to_w/w_to_dbm first)",
            )


class CallDimensionMismatchRule(_DimensionFlowRule):
    """Flag arguments contradicting the callee parameter's dimension."""

    code = "F603"
    name = "call-dimension-mismatch"
    description = ("argument's inferred dimension contradicts the "
                   "dimension the parameter name declares")

    def check_statement(self, inference: DimensionInference,
                        info: FunctionInfo, stmt: ast.stmt,
                        env: Dict[str, Optional[str]]) -> Iterator[Finding]:
        project = inference.project
        for expr in inference.own_expressions(stmt):
            if not isinstance(expr, ast.Call):
                continue
            resolved = project.resolve_call(expr, info)
            if len(resolved) != 1:
                continue  # ambiguous targets: stay silent
            callee = project.functions[resolved[0]]
            for param, arg in self._bind(callee, expr):
                param_dim = dimension_of(param)
                if param_dim is None:
                    continue
                arg_dim = inference.dim_of(arg, env, info)
                if arg_dim is None or arg_dim == param_dim:
                    continue
                yield self.finding_at(
                    info.ctx, arg,
                    f"argument {_describe(arg, info.ctx)!r} to "
                    f"{callee.short}(...) is {arg_dim} but parameter "
                    f"{param!r} declares {param_dim}",
                )

    @staticmethod
    def _bind(callee: FunctionInfo,
              call: ast.Call) -> Iterator[Tuple[str, ast.AST]]:
        if not callee.has_vararg:
            for param, arg in zip(callee.params, call.args):
                if not isinstance(arg, ast.Starred):
                    yield param, arg
        accepted = set(callee.params) | set(callee.kwonly)
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in accepted:
                yield keyword.arg, keyword.value


DIMENSION_FLOW_RULES = [
    FlowDimensionMismatchRule(),
    FlowDbLinearMixRule(),
    CallDimensionMismatchRule(),
]
