"""Project-wide symbol table and call graph for :mod:`repro.checks.flow`.

The per-file rules of the base engine see one ``ast.Module`` at a time;
the flow analyses need to follow a value across call sites — from a
``repro.units`` conversion helper into an optics function, or from
``SiriusNetwork.run`` down into a node method that draws randomness.
This module builds the whole-program structures those analyses share:

* a **symbol table** — every function, method and class in every parsed
  file, keyed by dotted qualname (``repro.core.network.SiriusNetwork.run``),
  including nested ``def``\\ s (closures get ``outer.inner`` qualnames);
* per-module **import maps** (local alias → dotted target), so a call
  through ``from repro.units import dbm_to_w as d2w`` still resolves;
* a **call graph** with per-edge call sites.  Plain-name calls resolve
  through scopes and imports; ``self.method()`` resolves within the
  class; ``obj.method()`` falls back to class-hierarchy analysis (every
  project class defining ``method``), which over-approximates — the
  right bias for taint reachability.  An enclosing function gets an
  implicit edge to each directly nested ``def`` (closures are assumed
  callable from their definition scope).

Everything is derived once per :class:`Project` and shared by the F6xx,
T7xx and S8xx rule families.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterator, List, Optional, Sequence, Set,
                    Tuple)

from repro.checks.engine import FileContext

__all__ = ["FunctionInfo", "ClassInfo", "Project", "module_imports"]

#: ``something.<attr>(fn, ...)`` shapes that hand ``fn`` to a pool of
#: worker *processes* — ``multiprocessing.Pool`` and
#: ``ParallelSweepRunner`` both expose the ``map`` surface.
_POOL_MAP_ATTRS = frozenset({
    "map", "imap", "imap_unordered", "map_async", "starmap",
    "starmap_async", "apply", "apply_async",
})

#: Constructor dotted names taking ``target=fn`` → boundary kind.
_TARGET_CTORS = {
    "multiprocessing.Process": "process",
    "multiprocessing.context.Process": "process",
    "threading.Thread": "thread",
}

#: Direct dotted calls whose first function argument runs elsewhere.
_DIRECT_SPAWNERS = {
    "asyncio.to_thread": "thread",
}


@dataclass
class FunctionInfo:
    """One function or method, with everything call resolution needs."""

    qualname: str
    module: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    ctx: FileContext
    class_name: Optional[str] = None
    #: Qualname of the directly enclosing function for nested defs.
    parent: Optional[str] = None
    #: Positional parameter names, ``self``/``cls`` stripped for methods.
    params: List[str] = field(default_factory=list)
    kwonly: List[str] = field(default_factory=list)
    has_vararg: bool = False

    @property
    def short(self) -> str:
        """Readable name for messages: drop the module prefix."""
        prefix = self.module + "."
        return (self.qualname[len(prefix):]
                if self.qualname.startswith(prefix) else self.qualname)


@dataclass
class ClassInfo:
    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qualname
    #: Base-class expressions as written ("Base", "mod.Base"); resolved
    #: lazily against the defining module's imports.
    bases: List[str] = field(default_factory=list)


def _dotted_text(node: ast.AST) -> Optional[str]:
    """``Name``/``Attribute`` chain as dotted text (else None)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def module_imports(tree: ast.Module, module: str) -> Dict[str, str]:
    """Local alias → dotted import target for one module."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                # ``import a.b`` binds ``a`` but the analyses only chase
                # dotted attribute chains, so the full target is recorded
                # under the bound alias.
                local = item.asname or item.name.split(".")[0]
                imports[local] = item.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = module.split(".")
                # level 1 = current package, 2 = its parent, ...
                keep = len(parts) - node.level
                prefix = ".".join(parts[:keep]) if keep > 0 else ""
                base = f"{prefix}.{base}".strip(".") if base else prefix
            for item in node.names:
                if item.name == "*":
                    continue
                local = item.asname or item.name
                imports[local] = f"{base}.{item.name}" if base else item.name
    return imports


class Project:
    """All parsed files plus the symbol table and call graph over them."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self.contexts: Dict[str, FileContext] = {
            ctx.relpath: ctx for ctx in contexts
        }
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: method name -> qualnames of every project method with that name
        self.methods_by_name: Dict[str, List[str]] = {}
        #: module -> local alias -> dotted import target
        self.imports: Dict[str, Dict[str, str]] = {}
        #: caller qualname -> [(callee qualname, call-site node)]
        self.calls: Dict[str, List[Tuple[str, ast.AST]]] = {}
        #: (caller, callee) -> boundary kind the edge crosses
        #: ("process" | "thread" | "executor"); absent = same-context call.
        self.edge_boundaries: Dict[Tuple[str, str], str] = {}
        self._shared: Dict[type, object] = {}
        self._modules: Dict[str, str] = {}
        self._own_cache: Dict[str, Tuple[ast.AST, ...]] = {}
        for ctx in contexts:
            self._index_file(ctx)
        for info in self.functions.values():
            self.calls[info.qualname] = list(self._edges_from(info))

    def shared(self, factory: type):
        """Memoized per-project analysis instance (``factory(project)``).

        The three rules of a family share one analysis: the first rule
        to ask builds it, the rest reuse it.
        """
        if factory not in self._shared:
            self._shared[factory] = factory(self)
        return self._shared[factory]

    # -- symbol table --------------------------------------------------------
    def _index_file(self, ctx: FileContext) -> None:
        module = ctx.module_dotted()
        self._modules[module] = ctx.relpath
        self.imports[module] = module_imports(ctx.tree, module)
        self._index_body(ctx, module, ctx.tree.body, scope=module,
                         class_name=None, parent=None)

    def _index_body(self, ctx: FileContext, module: str,
                    body: Sequence[ast.stmt], scope: str,
                    class_name: Optional[str],
                    parent: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{scope}.{stmt.name}"
                info = self._function_info(ctx, module, qualname, stmt,
                                           class_name, parent)
                self.functions[qualname] = info
                if class_name is not None and parent is None:
                    self.methods_by_name.setdefault(
                        stmt.name, []).append(qualname)
                    self.classes[f"{module}.{class_name}"].methods[
                        stmt.name] = qualname
                self._index_body(ctx, module, stmt.body, scope=qualname,
                                 class_name=class_name, parent=qualname)
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{scope}.{stmt.name}"
                self.classes[qualname] = ClassInfo(
                    qualname=qualname, module=module, name=stmt.name,
                    node=stmt, bases=[
                        text for text in
                        (_dotted_text(base) for base in stmt.bases)
                        if text is not None
                    ],
                )
                self._index_body(ctx, module, stmt.body, scope=qualname,
                                 class_name=stmt.name, parent=parent)
            elif isinstance(stmt, (ast.If, ast.Try, ast.With, ast.For,
                                   ast.While)):
                for inner in ast.iter_child_nodes(stmt):
                    if isinstance(inner, ast.stmt):
                        self._index_body(ctx, module, [inner], scope=scope,
                                         class_name=class_name, parent=parent)

    @staticmethod
    def _function_info(ctx: FileContext, module: str, qualname: str,
                       node: ast.AST, class_name: Optional[str],
                       parent: Optional[str]) -> FunctionInfo:
        args = node.args
        params = [a.arg for a in (*args.posonlyargs, *args.args)]
        if class_name is not None and parent is None and params and (
                params[0] in ("self", "cls")):
            params = params[1:]
        return FunctionInfo(
            qualname=qualname, module=module, name=node.name, node=node,
            ctx=ctx, class_name=class_name, parent=parent, params=params,
            kwonly=[a.arg for a in args.kwonlyargs],
            has_vararg=args.vararg is not None,
        )

    # -- call graph ----------------------------------------------------------
    def _edges_from(self, info: FunctionInfo,
                    ) -> Iterator[Tuple[str, ast.AST]]:
        edges: List[Tuple[str, ast.AST]] = []
        spawned: Set[str] = set()
        for node in self._own_nodes(info):
            if isinstance(node, ast.Call):
                for callee in self.resolve_call(node, info):
                    edges.append((callee, node))
                for callee, kind in self._spawn_targets(node, info):
                    self.edge_boundaries[(info.qualname, callee)] = kind
                    spawned.add(callee)
                    edges.append((callee, node))
        # Implicit edge to each directly nested def: a closure is
        # conservatively assumed reachable from its definition scope —
        # unless this function only hands it across an execution
        # boundary, in which case the annotated spawn edge is the truth
        # and a same-context edge would undo it.
        for stmt in ast.walk(info.node):
            if stmt is info.node:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = self.functions.get(f"{info.qualname}.{stmt.name}")
                if (nested is not None and nested.parent == info.qualname
                        and nested.qualname not in spawned):
                    yield nested.qualname, stmt
        yield from edges

    def _spawn_targets(self, call: ast.Call, info: FunctionInfo,
                       ) -> Iterator[Tuple[str, str]]:
        """(callee qualname, boundary kind) for callables handed to a
        spawn API at this call site.

        A function *reference* passed to ``pool.map`` /
        ``ParallelSweepRunner.map``, ``Process(target=...)`` /
        ``Thread(target=...)``, ``executor.submit`` /
        ``loop.run_in_executor`` or ``asyncio.to_thread`` is invoked in
        another process, thread or executor: the call graph gets a real
        edge there, annotated with the boundary it crosses, so
        reachability queries can either follow workers (race analysis)
        or stop at the caller (event-loop blocking analysis).
        """
        func = call.func
        candidates: List[Tuple[ast.AST, str]] = []
        if isinstance(func, ast.Attribute):
            if func.attr in _POOL_MAP_ATTRS and call.args:
                candidates.append((call.args[0], "process"))
            elif func.attr == "submit" and call.args:
                candidates.append((call.args[0], "executor"))
            elif func.attr == "run_in_executor" and len(call.args) >= 2:
                candidates.append((call.args[1], "executor"))
        dotted = self._dotted_callable(func, info)
        if dotted is not None:
            kind = _TARGET_CTORS.get(dotted)
            if kind is not None:
                for keyword in call.keywords:
                    if keyword.arg == "target":
                        candidates.append((keyword.value, kind))
            kind = _DIRECT_SPAWNERS.get(dotted)
            if kind is not None and call.args:
                candidates.append((call.args[0], kind))
        for node, kind in candidates:
            for callee in self.resolve_func_ref(node, info):
                yield callee, kind

    def _dotted_callable(self, func: ast.AST,
                         info: FunctionInfo) -> Optional[str]:
        """Import-resolved dotted name of a called object, or None."""
        if isinstance(func, ast.Name):
            return self.imports.get(info.module, {}).get(func.id)
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            base = self.imports.get(info.module, {}).get(func.value.id)
            if base is not None:
                return f"{base}.{func.attr}"
        return None

    def resolve_func_ref(self, node: ast.AST,
                         info: FunctionInfo) -> List[str]:
        """Project functions a bare function *reference* may denote.

        Unlike :meth:`resolve_call` this resolves a name that is passed
        around as a value (``pool.map(run_job, ...)``,
        ``Process(target=self._worker)``) rather than called.
        """
        if isinstance(node, ast.Name):
            return self._resolve_name(node.id, info)
        if isinstance(node, ast.Attribute) and isinstance(node.value,
                                                          ast.Name):
            if node.value.id in ("self", "cls") and info.class_name:
                own = self.classes.get(f"{info.module}.{info.class_name}")
                if own is not None and node.attr in own.methods:
                    return [own.methods[node.attr]]
            base = self.imports.get(info.module, {}).get(node.value.id)
            if base is not None:
                dotted = f"{base}.{node.attr}"
                if dotted in self.functions:
                    return [dotted]
        return []

    @property
    def worker_entries(self) -> Set[str]:
        """Functions entered through a process boundary (pool workers)."""
        return {callee for (_caller, callee), kind
                in self.edge_boundaries.items() if kind == "process"}

    def _own_nodes(self, info: FunctionInfo) -> Iterator[ast.AST]:
        """Walk ``info``'s body without descending into nested defs.

        Memoized per function: every analysis family re-walks the same
        bodies, so the flattened node tuple is computed once per lint
        run and shared.
        """
        cached = self._own_cache.get(info.qualname)
        if cached is None:
            cached = tuple(self._iter_own_nodes(info))
            self._own_cache[info.qualname] = cached
        return iter(cached)

    def _iter_own_nodes(self, info: FunctionInfo) -> Iterator[ast.AST]:
        stack: List[ast.AST] = list(ast.iter_child_nodes(info.node))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def resolve_call(self, call: ast.Call, info: FunctionInfo) -> List[str]:
        """Project-function qualnames a call site may reach (possibly [])."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, info)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func, info)
        return []

    def _resolve_name(self, name: str, info: FunctionInfo) -> List[str]:
        # Nested function in (an enclosing) scope, innermost first.
        scope: Optional[str] = info.qualname
        while scope is not None:
            nested = self.functions.get(f"{scope}.{name}")
            if nested is not None:
                return [nested.qualname]
            scope = self.functions[scope].parent if scope in self.functions \
                else None
        # Module-level function or class constructor.
        local = self.functions.get(f"{info.module}.{name}")
        if local is not None:
            return [local.qualname]
        cls = self.classes.get(f"{info.module}.{name}")
        if cls is not None:
            init = cls.methods.get("__init__")
            return [init] if init else []
        # Imported name.
        target = self.imports.get(info.module, {}).get(name)
        if target is not None:
            if target in self.functions:
                return [target]
            cls = self.classes.get(target)
            if cls is not None:
                init = cls.methods.get("__init__")
                return [init] if init else []
        return []

    def _resolve_attribute(self, func: ast.Attribute,
                           info: FunctionInfo) -> List[str]:
        owner, method = func.value, func.attr
        if (isinstance(owner, ast.Call) and isinstance(owner.func, ast.Name)
                and owner.func.id == "super"):
            # ``super().m()`` dispatches along the base chain only.  A
            # base outside the project (ValueError, object, ...)
            # resolves to nothing — falling through to the name-based
            # approximation here would connect every ``__init__`` in
            # the repo to every exception constructor.
            return self._super_targets(info, method)
        if isinstance(owner, ast.Name):
            if owner.id in ("self", "cls") and info.class_name is not None:
                own = self.classes.get(f"{info.module}.{info.class_name}")
                if own is not None and method in own.methods:
                    return [own.methods[method]]
                return self._cha(method)
            target = self.imports.get(info.module, {}).get(owner.id)
            if target is not None:
                dotted = f"{target}.{method}"
                if dotted in self.functions:
                    return [dotted]
                cls = self.classes.get(dotted)
                if cls is not None:
                    init = cls.methods.get("__init__")
                    return [init] if init else []
                if target in self.contexts_modules():
                    return []  # project module, but no such symbol
        return self._cha(method)

    def _cha(self, method: str) -> List[str]:
        """Class-hierarchy approximation: every method with this name."""
        return list(self.methods_by_name.get(method, []))

    def _super_targets(self, info: FunctionInfo, method: str) -> List[str]:
        """First project base up the chain defining ``method`` (MRO-ish)."""
        if info.class_name is None:
            return []
        seen: Set[str] = set()
        frontier = [f"{info.module}.{info.class_name}"]
        while frontier:
            cls = self.classes.get(frontier.pop(0))
            if cls is None or cls.qualname in seen:
                continue
            seen.add(cls.qualname)
            if cls.qualname != f"{info.module}.{info.class_name}" \
                    and method in cls.methods:
                return [cls.methods[method]]
            for base_text in cls.bases:
                resolved = self._resolve_class_text(cls.module, base_text)
                if resolved is not None:
                    frontier.append(resolved)
        return []

    def _resolve_class_text(self, module: str,
                            text: str) -> Optional[str]:
        """Dotted base expression -> project class qualname (or None)."""
        if f"{module}.{text}" in self.classes:
            return f"{module}.{text}"
        alias, _, rest = text.partition(".")
        target = self.imports.get(module, {}).get(alias)
        if target is not None:
            dotted = f"{target}.{rest}" if rest else target
            if dotted in self.classes:
                return dotted
        return None

    def contexts_modules(self) -> Dict[str, str]:
        """Dotted module → relpath for every indexed file (precomputed)."""
        return self._modules

    # -- reachability --------------------------------------------------------
    def reachable_from(self, roots: Sequence[str], *,
                       cross_boundaries: bool = True,
                       ) -> Dict[str, Tuple[Optional[str], Optional[ast.AST]]]:
        """BFS closure of the call graph from ``roots``.

        Returns reached qualname → (caller qualname, call-site node);
        roots map to (None, None).  Following the parent pointers yields
        a shortest call path for diagnostics.  With
        ``cross_boundaries=False`` the walk stops at process / thread /
        executor boundary edges — the closure then covers only code
        running in the roots' own execution context (what an event-loop
        blocking analysis needs), while the default follows workers too
        (what a cross-process race analysis needs).
        """
        parent: Dict[str, Tuple[Optional[str], Optional[ast.AST]]] = {}
        frontier: List[str] = []
        for root in roots:
            if root in self.functions and root not in parent:
                parent[root] = (None, None)
                frontier.append(root)
        while frontier:
            nxt: List[str] = []
            for caller in frontier:
                for callee, site in self.calls.get(caller, ()):
                    if (not cross_boundaries
                            and (caller, callee) in self.edge_boundaries):
                        continue
                    if callee not in parent:
                        parent[callee] = (caller, site)
                        nxt.append(callee)
            frontier = nxt
        return parent

    def paths_from(self, roots: Sequence[str],
                   predicate: Callable[[FunctionInfo], bool], *,
                   cross_boundaries: bool = True) -> List[List[str]]:
        """Shortest call paths from ``roots`` to matching functions.

        The reachability query API for rule families: returns one
        ``[root, ..., target]`` qualname chain per reached function for
        which ``predicate(info)`` holds, sorted by target qualname.  A
        root that itself satisfies the predicate yields the one-element
        chain.
        """
        if isinstance(roots, str):
            roots = [roots]
        reached = self.reachable_from(roots,
                                      cross_boundaries=cross_boundaries)
        paths: List[List[str]] = []
        for qualname in sorted(reached):
            info = self.functions.get(qualname)
            if info is not None and predicate(info):
                paths.append(self.call_path(reached, qualname))
        return paths

    def call_path(self, reached: Dict[str, Tuple[Optional[str],
                                                 Optional[ast.AST]]],
                  target: str) -> List[str]:
        """Root → ... → target qualname chain from a reachability map."""
        path = [target]
        current = target
        while True:
            caller, _site = reached.get(current, (None, None))
            if caller is None:
                break
            path.append(caller)
            current = caller
        return list(reversed(path))
