"""Fast-path parity-audit rules (family ``S8``) for
:mod:`repro.checks.flow`.

The simulators keep two epoch-loop strategies — the sparse **fast
path** and the all-nodes **reference path** — with a bit-identical
guarantee enforced dynamically by ``tests/core/
test_fast_path_equivalence.py``.  These rules enforce its static
shadow: inside every ``if fast: ... else: ...`` split (and one-sided
``if fast:`` / ``if not fast:`` guard), the two sides must touch the
same *shared* simulation state.

For each gated region the audit collects **state-touch signatures**:
attribute/subscript assignments and method calls through a receiver
(``nodes[src].grant_inbox.append``, ``node.decide_grants``), with
receiver roots resolved through local aliases (``node = nodes[idx]``
and ``for node in nodes:`` both root at ``nodes``), so the fast path's
indexed access and the reference path's iteration compare equal.  Then:

* ``S801 fastpath-only-state`` — a signature on the fast side only;
* ``S802 reference-only-state`` — a signature on the reference side
  only.

Two exemptions keep the audit quiet on the *designed* asymmetries:

* **bookkeeping roots** — receivers mutated exclusively in fast-gated
  code anywhere in the function (the active sets, ``popped``, …) exist
  only to drive the sparse iteration and have no reference-path
  counterpart; a nested function whose every call site is fast-gated
  counts as fast-gated code;
* **observability roots** (``tracer``, ``profiler``, ``registry``,
  ``telemetry``, ``obs``) — never simulation state.

Deliberate compensation logic (``catch_up_history`` replaying a deque
rotation a just-activated node missed) is a *true* positive: annotate
it with ``# lint: ignore[S801]`` where it happens, which is exactly the
documentation the asymmetry deserves.  Expression-level ``A if fast
else B`` conditionals are not audited: they produce values rather than
statements, and their calls are value reads on both paths.

The ``vectorized`` backend generalized the two-strategy split into a
whole separate epoch loop, so a third rule audits structure across
loops rather than across branches:

* ``S803 backend-phase-structure`` — every cell-simulator epoch loop
  (any function whose literal ``.lap("<phase>")`` labels include
  ``deliver`` and ``transmit``) must profile the same phase-label
  vocabulary as its sibling loops, keeping the per-phase bench
  comparison meaningful.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.checks.engine import Finding, ProjectRule
from repro.checks.flow.project import FunctionInfo, Project

__all__ = [
    "PARITY_RULES",
    "BackendPhaseStructureRule",
    "FastPathOnlyStateRule",
    "ReferenceOnlyStateRule",
    "ParityAudit",
]

#: Local names treated as the fast-path flag in ``if`` tests.
_FAST_NAMES = frozenset({"fast", "fast_path", "use_fast_path"})

#: Receiver roots that are observability, never simulation state.
_OBS_ROOTS = frozenset({"tracer", "profiler", "registry", "telemetry",
                        "obs"})

#: Container methods that mutate their receiver (used to classify a
#: signature as a mutation for the bookkeeping exemption; *all* method
#: calls participate in the parity diff itself).
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "add", "discard",
    "remove", "pop", "popleft", "popitem", "clear", "update", "insert",
    "setdefault", "sort", "reverse",
})


def _is_fast_test(test: ast.AST) -> Optional[bool]:
    """True for a fast-side test, False for reference-side, None neither.

    Recognizes ``fast``, ``self.fast_path``, ``not fast``, and ``and``
    conjunctions containing one of those (``if announced and fast:``).
    """
    if isinstance(test, ast.Name) and test.id in _FAST_NAMES:
        return True
    if isinstance(test, ast.Attribute) and test.attr == "fast_path":
        return True
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        inner = _is_fast_test(test.operand)
        return (not inner) if inner is not None else None
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        for value in test.values:
            side = _is_fast_test(value)
            if side is not None:
                return side
    return None


@dataclass
class _GatedRegion:
    """One fast/reference split inside a function."""

    node: ast.If
    fast_body: List[ast.stmt]
    ref_body: List[ast.stmt]


@dataclass
class _Touch:
    """One state-touch occurrence: resolved signature + AST anchor."""

    signature: str
    root: str
    node: ast.AST
    is_mutation: bool


class _FunctionAudit:
    """Parity analysis of one function's fast/reference regions."""

    def __init__(self, project: Project, info: FunctionInfo) -> None:
        self.project = project
        self.info = info
        self.aliases = self._local_aliases(info.node)
        self.regions = self._find_regions(info.node)
        self.nested_side = self._nested_sides(info)
        self.fast_only_roots, self.ref_only_roots = self._bookkeeping_roots()

    # -- alias resolution ----------------------------------------------------
    @staticmethod
    def _unwrap_iter(expr: ast.AST) -> ast.AST:
        """Strip ``sorted(...)``/``list(...)``-style wrappers off an iterable."""
        while (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
               and expr.func.id in ("sorted", "list", "tuple", "reversed",
                                    "iter", "enumerate")
               and expr.args):
            expr = expr.args[0]
        return expr

    def _local_aliases(self, fn: ast.AST) -> Dict[str, str]:
        """name → root name it aliases (``node = nodes[idx]`` → nodes)."""
        aliases: Dict[str, str] = {}
        for stmt in ast.walk(fn):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and (
                    isinstance(stmt.targets[0], ast.Name)):
                root = self._expr_root(stmt.value, aliases)
                if root is not None:
                    aliases[stmt.targets[0].id] = root
            elif isinstance(stmt, (ast.For, ast.AsyncFor)) and isinstance(
                    stmt.target, ast.Name):
                root = self._expr_root(self._unwrap_iter(stmt.iter), aliases)
                if root is not None:
                    aliases[stmt.target.id] = root
        return aliases

    def _expr_root(self, expr: ast.AST,
                   aliases: Dict[str, str]) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return aliases.get(expr.id, expr.id)
        if isinstance(expr, ast.Subscript):
            return self._expr_root(expr.value, aliases)
        return None

    def resolve_root(self, name: str) -> str:
        seen = set()
        while name in self.aliases and name not in seen:
            seen.add(name)
            nxt = self.aliases[name]
            if nxt == name:
                break
            name = nxt
        return name

    # -- regions -------------------------------------------------------------
    def _find_regions(self, fn: ast.AST) -> List[_GatedRegion]:
        regions = []
        for node in ast.walk(fn):
            if not isinstance(node, ast.If):
                continue
            side = _is_fast_test(node.test)
            if side is None:
                continue
            fast_body = node.body if side else node.orelse
            ref_body = node.orelse if side else node.body
            regions.append(_GatedRegion(node=node, fast_body=list(fast_body),
                                        ref_body=list(ref_body)))
        return regions

    def _nested_sides(self, info: FunctionInfo) -> Dict[str, Optional[bool]]:
        """Nested function name → True (fast-only call sites) / False /
        None (mixed, unconditioned, or uncalled)."""
        fast_stmts = self._side_statement_ids(fast=True)
        ref_stmts = self._side_statement_ids(fast=False)
        sides: Dict[str, Optional[bool]] = {}
        nested_names = {
            stmt.name for stmt in info.node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if not nested_names:
            return sides
        calls: Dict[str, List[ast.AST]] = {name: []
                                           for name in sorted(nested_names)}
        for node in self.project._own_nodes(info):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in nested_names):
                calls[node.func.id].append(node)
        for name, sites in calls.items():
            if not sites:
                sides[name] = None
                continue
            in_fast = [self._covering_side(site, fast_stmts, ref_stmts)
                       for site in sites]
            if all(side is True for side in in_fast):
                sides[name] = True
            elif all(side is False for side in in_fast):
                sides[name] = False
            else:
                sides[name] = None
        return sides

    def _side_statement_ids(self, fast: bool) -> Set[int]:
        ids: Set[int] = set()
        for region in self.regions:
            body = region.fast_body if fast else region.ref_body
            for stmt in body:
                for node in ast.walk(stmt):
                    ids.add(id(node))
        return ids

    @staticmethod
    def _covering_side(node: ast.AST, fast_ids: Set[int],
                       ref_ids: Set[int]) -> Optional[bool]:
        if id(node) in fast_ids:
            return True
        if id(node) in ref_ids:
            return False
        return None

    # -- touch extraction ----------------------------------------------------
    def _attribute_path(self, expr: ast.AST) -> Optional[Tuple[str, str]]:
        """(root, dotted-path) of an attribute chain, subscripts skipped."""
        parts: List[str] = []
        node = expr
        while True:
            if isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            elif isinstance(node, ast.Subscript):
                node = node.value
            elif isinstance(node, ast.Name):
                root = self.resolve_root(node.id)
                parts.append(root)
                parts.reverse()
                return root, ".".join(parts)
            else:
                return None

    @staticmethod
    def _walk_skip_nested(statements: List[ast.stmt]) -> Iterator[ast.AST]:
        """Walk statements without descending into nested defs/classes
        (closures are accounted for separately, by call-site side)."""
        stack: List[ast.AST] = list(statements)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def touches_in(self, statements: List[ast.stmt]) -> List[_Touch]:
        touches: List[_Touch] = []
        for node in self._walk_skip_nested(statements):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        resolved = self._attribute_path(target)
                        if resolved is not None:
                            root, path = resolved
                            touches.append(_Touch(
                                signature=path + " =", root=root,
                                node=target, is_mutation=True))
            elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute):
                resolved = self._attribute_path(node.func)
                if resolved is not None:
                    root, path = resolved
                    method = node.func.attr
                    touches.append(_Touch(
                        signature=path + "()", root=root, node=node,
                        is_mutation=method in _MUTATOR_METHODS
                        or self._is_project_method(method)))
        return touches

    def _is_project_method(self, method: str) -> bool:
        """A project-defined method call may mutate its receiver."""
        return method in self.project.methods_by_name

    # -- bookkeeping ---------------------------------------------------------
    def _parameter_roots(self) -> Set[str]:
        """Receiver roots that carry *shared* state into the function."""
        args = self.info.node.args
        roots = {a.arg for a in (*args.posonlyargs, *args.args,
                                 *args.kwonlyargs)}
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                roots.add(extra.arg)
        return roots

    def _bookkeeping_roots(self) -> Tuple[Set[str], Set[str]]:
        """Function-local roots mutated exclusively on one side.

        Only *locals* qualify: a set created inside the function to
        drive the sparse iteration (``active = set()``) has no
        reference-path counterpart by design, but state reaching the
        function through a parameter or ``self`` is shared with the
        other path and one-sided mutation of it is exactly the bug."""
        fast_ids = self._side_statement_ids(fast=True)
        ref_ids = self._side_statement_ids(fast=False)
        mutated_fast: Set[str] = set()
        mutated_ref: Set[str] = set()
        mutated_neutral: Set[str] = set()

        def classify(info: FunctionInfo, side_override: Optional[bool],
                     ) -> None:
            for touch in self.touches_in(list(info.node.body)):
                if not touch.is_mutation:
                    continue
                side = (side_override if side_override is not None
                        else self._covering_side(touch.node, fast_ids,
                                                 ref_ids))
                if side is True:
                    mutated_fast.add(touch.root)
                elif side is False:
                    mutated_ref.add(touch.root)
                else:
                    mutated_neutral.add(touch.root)

        classify(self.info, None)
        for stmt in self.info.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = self.project.functions.get(
                    f"{self.info.qualname}.{stmt.name}")
                if nested is not None:
                    classify(nested, self.nested_side.get(stmt.name))
        shared_in = self._parameter_roots()
        fast_only = mutated_fast - mutated_ref - mutated_neutral - shared_in
        ref_only = mutated_ref - mutated_fast - mutated_neutral - shared_in
        return fast_only, ref_only

    # -- the diff ------------------------------------------------------------
    def diff_regions(self) -> Iterator[Tuple[ast.If, str, _Touch, bool]]:
        """Yield (region-if, signature, anchoring touch, fast_only)."""
        exempt_roots = (self.fast_only_roots | self.ref_only_roots
                        | _OBS_ROOTS)
        for region in self.regions:
            fast_touches = self._expand(region.fast_body, fast=True)
            ref_touches = self._expand(region.ref_body, fast=False)
            # Only *mutating* touches are diffed: the fast path reading
            # less state than the reference scan is its entire point.
            fast_sigs = {t.signature: t for t in fast_touches
                         if t.is_mutation and t.root not in exempt_roots}
            ref_sigs = {t.signature: t for t in ref_touches
                        if t.is_mutation and t.root not in exempt_roots}
            for signature in sorted(set(fast_sigs) - set(ref_sigs)):
                yield region.node, signature, fast_sigs[signature], True
            for signature in sorted(set(ref_sigs) - set(fast_sigs)):
                yield region.node, signature, ref_sigs[signature], False

    def _expand(self, body: List[ast.stmt], fast: bool) -> List[_Touch]:
        """Touches of a region side, including same-side nested closures."""
        touches = self.touches_in(body)
        called_here = {
            node.func.id
            for stmt in body for node in ast.walk(stmt)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
        }
        for stmt in self.info.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and stmt.name in called_here \
                    and self.nested_side.get(stmt.name) == fast:
                nested = self.project.functions.get(
                    f"{self.info.qualname}.{stmt.name}")
                if nested is not None:
                    touches.extend(self.touches_in(list(nested.node.body)))
        return touches


class ParityAudit:
    """Shared fast/reference parity audit for one :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: (function, region-if node, signature, anchor touch, fast_only)
        self.divergences: List[Tuple[FunctionInfo, ast.If, str, _Touch,
                                     bool]] = []
        for info in project.functions.values():
            audit = _FunctionAudit(project, info)
            if not audit.regions:
                continue
            for node, signature, touch, fast_only in audit.diff_regions():
                self.divergences.append((info, node, signature, touch,
                                         fast_only))


class _ParityRule(ProjectRule):
    fast_only: bool = True

    def check_project(self, project: Project) -> Iterator[Finding]:
        audit = project.shared(ParityAudit)
        for info, _region, signature, touch, fast_only in audit.divergences:
            if fast_only != self.fast_only:
                continue
            side, other = (("fast", "reference") if fast_only
                           else ("reference", "fast"))
            yield self.finding(
                info.ctx, touch.node,
                f"{signature} is touched on the {side} path only in "
                f"{info.short}; the {other} path's side of this "
                "fast/reference split never touches it",
            )


class BackendPhaseStructureRule(ProjectRule):
    """Every cell-simulator epoch loop must profile the same phases.

    The backends (``reference``/``fast`` share a loop; ``vectorized``
    has its own) are kept comparable phase by phase: the per-phase
    wall-clock split in ``BENCH_<date>.json`` and the profiling docs
    assume one label vocabulary.  An *epoch loop* here is any function
    whose literal ``.lap("<phase>")`` labels include the core
    ``deliver`` and ``transmit`` pair — which selects the cell
    simulators and leaves the fluid loops
    (``advance``/``recompute``/``settle``) alone.  A loop missing a label its sibling backends profile has
    either dropped a phase or renamed it; both break the cross-backend
    comparison.
    """

    code = "S803"
    name = "backend-phase-structure"
    description = ("cell-simulator epoch loops must share one profiler "
                   "phase-label vocabulary")

    _CORE_LABELS = frozenset({"deliver", "transmit"})

    def check_project(self, project: Project) -> Iterator[Finding]:
        loops: List[Tuple[FunctionInfo, Set[str], ast.AST]] = []
        for info in project.functions.values():
            labels: Set[str] = set()
            anchor: Optional[ast.AST] = None
            for node in ast.walk(info.node):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "lap"
                        and node.args
                        and isinstance(node.args[0], ast.Constant)
                        and isinstance(node.args[0].value, str)):
                    labels.add(node.args[0].value)
                    if anchor is None:
                        anchor = node
            if anchor is not None and self._CORE_LABELS <= labels:
                loops.append((info, labels, anchor))
        if len(loops) < 2:
            return
        vocabulary = set().union(*(labels for _, labels, _ in loops))
        for info, labels, anchor in loops:
            missing = sorted(vocabulary - labels)
            if missing:
                yield self.finding(
                    info.ctx, anchor,
                    f"epoch loop {info.short} never profiles "
                    f"{', '.join(missing)}; its sibling backend loops "
                    "do, so the per-phase comparison across backends "
                    "breaks",
                )


class FastPathOnlyStateRule(_ParityRule):
    code = "S801"
    name = "fastpath-only-state"
    description = ("shared state touched on the fast path but not the "
                   "reference path of a fast/reference split")
    fast_only = True


class ReferenceOnlyStateRule(_ParityRule):
    code = "S802"
    name = "reference-only-state"
    description = ("shared state touched on the reference path but not "
                   "the fast path of a fast/reference split")
    fast_only = False


PARITY_RULES = [FastPathOnlyStateRule(), ReferenceOnlyStateRule(),
                BackendPhaseStructureRule()]
