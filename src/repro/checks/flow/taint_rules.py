"""Determinism-taint rules (family ``T7``) for :mod:`repro.checks.flow`.

The benchmark sweeps (Figs 9-13) are bit-for-bit reproducible only if no
value that feeds simulation state depends on wall-clock time, OS
entropy, unseeded randomness or hash-seed-dependent iteration order.
The per-file ``D2xx`` family flags those *sources* wherever they occur;
this family follows the call graph to answer the question that actually
matters: **can a nondeterministic value reach a simulation run?**

* ``T701 nondet-reaches-run`` — a taint source lexically inside a
  function reachable (via the project call graph, closures included)
  from a simulation entry point (``SiriusNetwork.run``,
  ``FluidNetwork.run``, the ``ParallelSweepRunner`` job functions).
  The finding is anchored at the source and its message shows the call
  chain from the entry point.
* ``T702 tainted-return`` — a function in a simulation-critical package
  returns a value *derived* from a taint source (via the intra-function
  forward taint dataflow, plus one level of return-taint summaries, so
  ``def jitter(): return scaled(now())`` is caught through the helper).

Taint sources: ``time.time``/``monotonic``/``perf_counter``/… calls,
``os.urandom``, ``datetime.now``/``utcnow``/``today``, ``uuid.uuid1``/
``uuid4``, draws from the global ``random``/``np.random`` state,
unseeded ``random.Random()``/``default_rng()`` construction, and
iteration over set expressions (``PYTHONHASHSEED`` order).

Observability modules (``repro.obs``) are exempt: the profiler's whole
job is to read the wall clock, and its readings never feed simulation
state.  A set-iteration source already suppressed for ``D203`` is not
re-reported — the justification that the order cannot matter covers the
interprocedural finding too.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.checks.determinism_rules import (
    _global_rng_target,
    _import_aliases,
)
from repro.checks.determinism_rules import (
    SetIterationRule,
    UnseededRngRule,
)
from repro.checks.engine import Finding, ProjectRule
from repro.checks.flow.dataflow import (
    ForwardAnalysis,
    assigned_names,
    statement_envs,
)
from repro.checks.flow.project import FunctionInfo, Project

__all__ = [
    "TAINT_FLOW_RULES",
    "TaintAnalysis",
    "NondetReachesRunRule",
    "TaintedReturnRule",
    "ENTRY_POINT_SUFFIXES",
    "EXEMPT_MODULE_PREFIXES",
]

#: Functions whose qualname ends with one of these are simulation entry
#: points: anything they (transitively) call must be deterministic.
ENTRY_POINT_SUFFIXES: Tuple[str, ...] = (
    "SiriusNetwork.run",
    "FluidNetwork.run",
    "ParallelSweepRunner.map",
    "run_sirius_job",
    "run_fluid_job",
)

#: Modules where wall-clock reads are the point (profiling/observability).
EXEMPT_MODULE_PREFIXES: Tuple[str, ...] = ("repro.obs",)

#: Packages whose functions must not *return* tainted values (T702).
SIM_CRITICAL_PREFIXES: Tuple[str, ...] = (
    "repro.core", "repro.sim", "repro.phy", "repro.optics",
    "repro.workload", "repro.sync", "repro.topology", "repro.units",
    "repro.analysis",
)

_TIME_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "localtime",
    "gmtime",
})
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})
_UUID_FNS = frozenset({"uuid1", "uuid4"})


def _source_in_call(call: ast.Call,
                    aliases: Dict[str, str]) -> Optional[str]:
    """Describe the taint source a call represents, or None."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        owner, attr = func.value.id, func.attr
        target = aliases.get(owner, owner)
        if target == "time" and attr in _TIME_FNS:
            return f"time.{attr}() reads the wall clock"
        if target == "os" and attr == "urandom":
            return "os.urandom() draws OS entropy"
        if target in ("datetime", "datetime.datetime", "date") and (
                attr in _DATETIME_FNS):
            return f"datetime.{attr}() reads the wall clock"
        if target == "uuid" and attr in _UUID_FNS:
            return f"uuid.{attr}() is entropy/clock-derived"
    rng = _global_rng_target(call, aliases)
    if rng is not None:
        return f"{rng}() draws from the unseeded global RNG"
    ctor = UnseededRngRule._rng_constructor(call, aliases)
    if ctor == "random.SystemRandom":
        return "random.SystemRandom() can never be seeded"
    if ctor is not None and not call.args and not call.keywords:
        return f"{ctor}() constructed without a seed"
    return None


class TaintAnalysis:
    """Shared taint facts for one :class:`Project`.

    Computes, per function: the lexical taint sources it contains, and
    a return-taint summary (does it return a source-derived value?),
    iterated once so single-level helper indirection is covered.
    """

    def __init__(self, project: Project) -> None:
        self.project = project
        self._aliases: Dict[str, Dict[str, str]] = {}
        #: qualname -> [(source node, description)]
        self.sources: Dict[str, List[Tuple[ast.AST, str]]] = {}
        #: qualnames whose return value derives from a source
        self.tainted_returns: Dict[str, Tuple[ast.AST, str]] = {}
        for info in project.functions.values():
            if self._exempt(info.module):
                continue
            self.sources[info.qualname] = list(self._collect_sources(info))
        # Two passes: the second sees helper summaries from the first.
        for _ in range(2):
            changed = False
            for info in project.functions.values():
                if self._exempt(info.module):
                    continue
                if info.qualname in self.tainted_returns:
                    continue
                found = self._tainted_return(info)
                if found is not None:
                    self.tainted_returns[info.qualname] = found
                    changed = True
            if not changed:
                break

    @staticmethod
    def _exempt(module: str) -> bool:
        return any(module == prefix or module.startswith(prefix + ".")
                   for prefix in EXEMPT_MODULE_PREFIXES)

    def aliases_for(self, info: FunctionInfo) -> Dict[str, str]:
        aliases = self._aliases.get(info.module)
        if aliases is None:
            aliases = dict(_import_aliases(info.ctx.tree))
            for node in ast.walk(info.ctx.tree):
                if isinstance(node, ast.Import):
                    for item in node.names:
                        aliases.setdefault(item.asname
                                           or item.name.split(".")[0],
                                           item.name)
                elif isinstance(node, ast.ImportFrom) and node.module:
                    for item in node.names:
                        if item.name != "*":
                            aliases.setdefault(
                                item.asname or item.name,
                                f"{node.module}.{item.name}")
            self._aliases[info.module] = aliases
        return aliases

    # -- lexical sources -----------------------------------------------------
    def _collect_sources(self, info: FunctionInfo,
                         ) -> Iterator[Tuple[ast.AST, str]]:
        aliases = self.aliases_for(info)
        suppressions = info.ctx.suppressions
        for node in self.project._own_nodes(info):
            if isinstance(node, ast.Call):
                described = _source_in_call(node, aliases)
                if described is not None:
                    yield node, described
            elif isinstance(node, (ast.For, ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iterables = ([node.iter] if isinstance(node, ast.For) else
                             [gen.iter for gen in node.generators])
                for iterable in iterables:
                    if not SetIterationRule._is_set_expr(iterable):
                        continue
                    line_rules = suppressions.get(
                        getattr(iterable, "lineno", 0), set())
                    if {"D203", "set-iteration"} & line_rules:
                        continue  # the D203 justification covers us
                    yield (iterable,
                           "set iteration has PYTHONHASHSEED-dependent "
                           "order")

    # -- return taint --------------------------------------------------------
    def _tainted_return(self, info: FunctionInfo,
                        ) -> Optional[Tuple[ast.AST, str]]:
        analysis = _TaintDataflow(self, info)
        envs = statement_envs(analysis, info.node)
        for stmt in self.project._own_nodes(info):
            if not isinstance(stmt, ast.Return) or stmt.value is None:
                continue
            env = envs.get(id(stmt))
            if env is None:
                continue
            reason = analysis.expr_taint(env, stmt.value)
            if reason is not None:
                return stmt, reason
        return None


class _TaintDataflow(ForwardAnalysis[str]):
    """Variable → taint reason (absent = clean)."""

    def __init__(self, analysis: TaintAnalysis, info: FunctionInfo) -> None:
        self.analysis = analysis
        self.info = info
        self.aliases = analysis.aliases_for(info)

    def join_values(self, left: str, right: str) -> str:
        return left

    def expr_taint(self, env: Dict[str, str],
                   expr: ast.AST) -> Optional[str]:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in env:
                return env[node.id]
            if isinstance(node, ast.Call):
                described = _source_in_call(node, self.aliases)
                if described is not None:
                    return described
                for callee in self.analysis.project.resolve_call(
                        node, self.info):
                    summary = self.analysis.tainted_returns.get(callee)
                    if summary is not None:
                        short = self.analysis.project.functions[callee].short
                        return f"{short}() returns a tainted value"
        return None

    def transfer(self, env: Dict[str, str], stmt: ast.stmt) -> Dict[str, str]:
        out = dict(env)

        def bind(target: ast.AST, reason: Optional[str]) -> None:
            for name in assigned_names(target):
                if reason is not None:
                    out[name] = reason
                else:
                    out.pop(name, None)

        if isinstance(stmt, ast.Assign):
            reason = self.expr_taint(out, stmt.value)
            for target in stmt.targets:
                bind(target, reason)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            bind(stmt.target, self.expr_taint(out, stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            reason = self.expr_taint(out, stmt.value)
            if reason is not None:
                bind(stmt.target, reason)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            bind(stmt.target, self.expr_taint(out, stmt.iter))
        return out


class NondetReachesRunRule(ProjectRule):
    """Flag taint sources reachable from a simulation entry point."""

    code = "T701"
    name = "nondet-reaches-run"
    description = ("nondeterminism source reachable from SiriusNetwork/"
                   "FluidNetwork.run or a sweep job via the call graph")

    def check_project(self, project: Project) -> Iterator[Finding]:
        taint = project.shared(TaintAnalysis)
        entries = [
            qualname for qualname in project.functions
            if any(qualname == suffix or qualname.endswith("." + suffix)
                   for suffix in ENTRY_POINT_SUFFIXES)
        ]
        if not entries:
            return
        reached = project.reachable_from(entries)
        for qualname in sorted(reached):
            info = project.functions[qualname]
            for node, described in taint.sources.get(qualname, ()):
                chain = [project.functions[q].short
                         for q in project.call_path(reached, qualname)]
                yield self.finding(
                    info.ctx, node,
                    f"{described}; reachable from simulation entry point "
                    f"via {' -> '.join(chain)}",
                )


class TaintedReturnRule(ProjectRule):
    """Flag sim-critical functions returning source-derived values."""

    code = "T702"
    name = "tainted-return"
    description = ("function in a simulation-critical package returns a "
                   "value derived from a nondeterminism source")

    def check_project(self, project: Project) -> Iterator[Finding]:
        taint = project.shared(TaintAnalysis)
        for qualname, (stmt, reason) in sorted(
                taint.tainted_returns.items()):
            info = project.functions[qualname]
            if not self._sim_critical(info.module):
                continue
            yield self.finding(
                info.ctx, stmt,
                f"{info.short} returns a nondeterministic value: {reason}",
            )

    @staticmethod
    def _sim_critical(module: str) -> bool:
        return any(module == prefix or module.startswith(prefix + ".")
                   for prefix in SIM_CRITICAL_PREFIXES)


TAINT_FLOW_RULES = [NondetReachesRunRule(), TaintedReturnRule()]
