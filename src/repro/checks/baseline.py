"""Baseline file support for :mod:`repro.checks`.

The baseline (``checks_baseline.json``, committed at the repo root)
records the fingerprints of accepted pre-existing findings so they do
not block CI while anything *new* does.  Fingerprints are keyed on
(path, rule, normalized source line) — see
:attr:`repro.checks.engine.Finding.fingerprint` — so edits that merely
shift line numbers do not invalidate the baseline.  Each fingerprint
carries a count, so introducing a *second* identical violation on an
already-baselined line pattern is still caught.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.checks.engine import Finding

__all__ = [
    "load_baseline",
    "write_baseline",
    "diff_against_baseline",
    "DEFAULT_BASELINE_NAME",
]

DEFAULT_BASELINE_NAME = "checks_baseline.json"
_FORMAT_VERSION = 1


def load_baseline(path: Path) -> Dict[str, int]:
    """Fingerprint -> accepted count.  A missing file is an empty baseline."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "fingerprints" not in data:
        raise ValueError(f"malformed baseline file {path}")
    fingerprints = data["fingerprints"]
    if not isinstance(fingerprints, dict):
        raise ValueError(f"malformed baseline fingerprints in {path}")
    return {str(key): int(value) for key, value in fingerprints.items()}


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Persist ``findings`` as the new accepted baseline.

    The output is byte-deterministic for a given finding *set*: entries
    are ordered by ``(path, rule, line)`` of each fingerprint's first
    finding (fingerprint string as the tie-break), regardless of the
    order rules ran or files were walked, and the envelope keys are
    written in a fixed order — so the file diffs like the source tree
    reads, and re-running ``--write-baseline`` on an unchanged tree
    produces a byte-identical file.
    """
    counts = Counter(finding.fingerprint for finding in findings)
    order: Dict[str, Tuple[str, str, int]] = {}
    for finding in findings:
        key = (finding.path, finding.rule, finding.line)
        previous = order.get(finding.fingerprint)
        if previous is None or key < previous:
            order[finding.fingerprint] = key
    ordered = sorted(counts, key=lambda fp: (*order[fp], fp))
    payload = {
        "version": _FORMAT_VERSION,
        "comment": (
            "Accepted pre-existing sirius-lint findings. Regenerate with "
            "`python -m repro.checks src/repro --write-baseline` after "
            "reviewing that every entry is intentional."
        ),
        "count": sum(counts.values()),
        "fingerprints": {key: counts[key] for key in ordered},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def diff_against_baseline(
    findings: Sequence[Finding], baseline: Dict[str, int],
) -> Tuple[List[Finding], List[str]]:
    """Split findings into (new, stale-baseline-entries).

    A finding is *new* when its fingerprint occurs more times than the
    baseline accepts.  A baseline entry is *stale* when the code no
    longer produces it (the fix should be celebrated by shrinking the
    baseline, not letting it rot).
    """
    remaining = Counter(baseline)
    new: List[Finding] = []
    for finding in findings:
        if remaining.get(finding.fingerprint, 0) > 0:
            remaining[finding.fingerprint] -= 1
        else:
            new.append(finding)
    stale = sorted(key for key, count in remaining.items() if count > 0)
    return new, stale
