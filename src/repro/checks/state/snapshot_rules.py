"""Snapshot-completeness rules (family ``M12``) for
:mod:`repro.checks.state`.

ROADMAP item 3 (checkpoint/resume sweep orchestration) will serialize
live simulator state.  The bug class that kills such features is
*silent omission*: a class grows a new mutable field, the checkpoint
method keeps working, and resumed runs diverge without an error.  These
rules make the omission a lint failure instead, by diffing each class's
checkpoint surface against its :class:`~repro.checks.state.model.
ClassStateModel`:

* ``M1201 snapshot-missing-field`` — a ``snapshot()`` /
  ``__getstate__()`` method (plus everything it reaches through
  ``self.m()`` chains) never *reads* a field the class mutates outside
  ``__init__``;
* ``M1202 restore-missing-field`` — a ``restore()`` /
  ``__setstate__()`` method never *writes* such a field (a
  ``self.__dict__.update(...)`` in the closure counts as writing
  everything);
* ``M1203 checkpoint-field-drift`` — a ``FooCheckpoint`` /
  ``FooSnapshot`` companion class does not carry a field for every
  mutated field of ``Foo`` (matching ``_depth`` against either
  ``_depth`` or ``depth`` on the companion).

Fields mutated *only* inside the snapshot/restore closure itself are
exempt — lazily filled caches and emission cursors are bookkeeping of
the checkpoint, not state it must capture.  Findings anchor on the
checkpoint method's ``def`` line (M1201/M1202) or the companion
class's ``class`` line (M1203); that anchor line is where a
``# lint: ignore[...]`` for a deliberate partial snapshot belongs —
the mutation evidence named in the message may live in another method
or file and suppressions there do nothing.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.checks.engine import Finding, ProjectRule
from repro.checks.flow.project import ClassInfo, Project
from repro.checks.state.model import (
    INIT_METHODS,
    ClassStateModel,
    StateAnalysis,
)

__all__ = [
    "SNAPSHOT_RULES",
    "SnapshotMissingFieldRule",
    "RestoreMissingFieldRule",
    "CheckpointFieldDriftRule",
]

#: Method names that expose a class's read-side checkpoint surface.
SNAPSHOT_METHODS = ("snapshot", "__getstate__")

#: Method names that expose the write-side (resume) surface.
RESTORE_METHODS = ("restore", "__setstate__")

#: Companion-class suffixes paired with the class they checkpoint.
COMPANION_SUFFIXES = ("Checkpoint", "Snapshot")


def _required_fields(model: ClassStateModel,
                     entry_methods: List[str]) -> List[str]:
    """Fields the checkpoint surface must cover: everything mutated
    outside construction and outside the checkpoint closure itself."""
    exclude: Set[str] = set(INIT_METHODS)
    for entry in entry_methods:
        exclude |= model.closure_methods(entry)
    return model.mutated_fields(exclude=exclude)


def _checkpoint_entries(model: ClassStateModel) -> List[str]:
    """Every snapshot/restore-family method the class defines."""
    return [name for name in (*SNAPSHOT_METHODS, *RESTORE_METHODS)
            if name in model.info.methods]


def _evidence(model: ClassStateModel, field_name: str) -> str:
    evidence = model.mutation_evidence(field_name)
    if evidence is None:
        return ""
    method, line = evidence
    return f" (mutated in {method}(), line {line})"


class _CheckpointMethodRule(ProjectRule):
    """Shared shape of M1201/M1202: per checkpoint method, diff the
    fields its closure covers against the fields the class mutates."""

    entry_methods: tuple = ()
    verb: str = ""

    def covered(self, model: ClassStateModel, entry: str) -> Set[str]:
        raise NotImplementedError

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis: StateAnalysis = project.shared(StateAnalysis)
        for qualname in sorted(analysis.models):
            model = analysis.models[qualname]
            entries = [name for name in self.entry_methods
                       if name in model.info.methods]
            if not entries:
                continue
            required = set(_required_fields(model,
                                            _checkpoint_entries(model)))
            if not required:
                continue
            for entry in entries:
                covered = self.covered(model, entry)
                missing = sorted(required - covered)
                if not missing:
                    continue
                fn = project.functions.get(model.info.methods[entry])
                if fn is None:
                    continue
                listed = ", ".join(
                    f"'{name}'{_evidence(model, name)}" for name in missing)
                yield self.finding(
                    fn.ctx, fn.node,
                    f"{model.info.name}.{entry}() never {self.verb} "
                    f"mutated field{'s' if len(missing) != 1 else ''} "
                    f"{listed}; a checkpoint built from it would drop "
                    "state",
                )


class SnapshotMissingFieldRule(_CheckpointMethodRule):
    code = "M1201"
    name = "snapshot-missing-field"
    description = ("snapshot()/__getstate__() must read every field the "
                   "class mutates outside __init__")
    entry_methods = SNAPSHOT_METHODS
    verb = "reads"

    def covered(self, model: ClassStateModel, entry: str) -> Set[str]:
        return model.closure_reads(entry) | model.closure_writes(entry)


class RestoreMissingFieldRule(_CheckpointMethodRule):
    code = "M1202"
    name = "restore-missing-field"
    description = ("restore()/__setstate__() must write every field the "
                   "class mutates outside __init__")
    entry_methods = RESTORE_METHODS
    verb = "writes"

    def covered(self, model: ClassStateModel, entry: str) -> Set[str]:
        writes = model.closure_writes(entry)
        if "__dict__" in writes:
            # ``self.__dict__.update(state)`` restores wholesale.
            return set(model.fields)
        return writes


class CheckpointFieldDriftRule(ProjectRule):
    """A ``FooCheckpoint``/``FooSnapshot`` companion must carry every
    mutated field of ``Foo``."""

    code = "M1203"
    name = "checkpoint-field-drift"
    description = ("a *Checkpoint/*Snapshot companion class must carry "
                   "a field for every mutated field of its subject")

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis: StateAnalysis = project.shared(StateAnalysis)
        for qualname in sorted(project.classes):
            companion = project.classes[qualname]
            subject = self._subject_for(companion, analysis)
            if subject is None:
                continue
            required_fields = _required_fields(subject,
                                               _checkpoint_entries(subject))
            surface = self._field_surface(companion, analysis)
            missing = [name for name in required_fields
                       if name not in surface
                       and name.lstrip("_") not in surface]
            if not missing:
                continue
            ctx = project.contexts.get(
                project.contexts_modules().get(companion.module, ""))
            if ctx is None:
                continue
            listed = ", ".join(
                f"'{name}'{_evidence(subject, name)}" for name in missing)
            yield self.finding(
                ctx, companion.node,
                f"{companion.name} carries no field for "
                f"{subject.info.name}'s mutated "
                f"field{'s' if len(missing) != 1 else ''} {listed}; a "
                "resume from this checkpoint would lose state",
            )

    @staticmethod
    def _subject_for(companion: ClassInfo, analysis: StateAnalysis,
                     ) -> Optional[ClassStateModel]:
        """The class a companion checkpoints: strip the suffix, prefer a
        same-module match, else a unique project-wide one."""
        base_name = ""
        for suffix in COMPANION_SUFFIXES:
            if companion.name.endswith(suffix) and \
                    len(companion.name) > len(suffix):
                base_name = companion.name[:-len(suffix)]
                break
        if not base_name:
            return None
        same_module = analysis.model_for(f"{companion.module}.{base_name}")
        if same_module is not None:
            return same_module
        matches = analysis.models_named(base_name)
        return matches[0] if len(matches) == 1 else None

    @staticmethod
    def _field_surface(companion: ClassInfo,
                       analysis: StateAnalysis) -> Set[str]:
        """Names the companion can hold state under: dataclass-style
        class-level annotations, ``__init__``-bound fields, and
        ``__init__`` parameters."""
        surface: Set[str] = set()
        for stmt in companion.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                surface.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        surface.add(target.id)
        model = analysis.model_for(companion.qualname)
        if model is not None:
            surface.update(model.fields)
            init = analysis.project.functions.get(
                companion.methods.get("__init__", ""))
            if init is not None:
                surface.update(init.params)
                surface.update(init.kwonly)
        return surface


SNAPSHOT_RULES = [SnapshotMissingFieldRule(), RestoreMissingFieldRule(),
                  CheckpointFieldDriftRule()]
