"""``repro.checks.state`` — sirius-state, the mutable-state analysis
layer (lint families ``M12``/``N13``/``W14``).

Fourth analysis layer on the :mod:`repro.checks.flow` project model
(after dataflow, parity and concurrency): a per-class **mutable-state
model** (:mod:`repro.checks.state.model`) consumed by three rule
families —

* ``M12xx`` snapshot-completeness
  (:mod:`repro.checks.state.snapshot_rules`): checkpoint surfaces
  (``snapshot``/``restore``/``__getstate__``/``__setstate__``,
  ``*Checkpoint`` companions) must cover every mutated field;
* ``N13xx`` protocol-conformance
  (:mod:`repro.checks.state.protocol_rules`): strategy/backend
  implementations must carry the complete, call-compatible protocol
  surface with no abstract leftovers;
* ``W14xx`` backend state parity
  (:mod:`repro.checks.state.parity_rules`): sibling backend loops must
  read/write the same network-state field set.

This is the static groundwork for ROADMAP items 1 (scheduler strategy
interface) and 3 (checkpoint/resume orchestration), built PR-7-style
*before* the risky subsystems so their bug classes fail lint first.
"""

from repro.checks.state.model import ClassStateModel, StateAnalysis
from repro.checks.state.parity_rules import STATE_PARITY_RULES
from repro.checks.state.protocol_rules import PROTOCOL_RULES, ProtocolAnalysis
from repro.checks.state.snapshot_rules import SNAPSHOT_RULES

#: Every sirius-state rule, in family order (M12, N13, W14).
STATE_RULES = [*SNAPSHOT_RULES, *PROTOCOL_RULES, *STATE_PARITY_RULES]

__all__ = [
    "STATE_RULES",
    "ClassStateModel",
    "StateAnalysis",
    "ProtocolAnalysis",
]
