"""Backend state-parity rules (family ``W14``) for
:mod:`repro.checks.state`.

``S803`` keeps sibling backend loops honest about their *phase
structure*; this family extends the audit to the **state they touch**.
The cell simulator's epoch loops (``SiriusNetwork.run`` for
reference/fast, ``VectorizedEngine.run``) and the fluid simulator's
event loops (``_loop_reference`` / ``_loop_incremental``) are each
bound by a bit-identical-results contract, enforced dynamically by the
seeded equivalence suites.  The static shadow enforced here: a backend
loop that silently stops writing a state field its siblings write has
diverged *by construction* — lint should say so before a seeded run
has to.

Sibling loops are discovered exactly like ``S803``: by their literal
``.lap("<phase>")`` label vocabulary (``deliver``/``transmit`` → cell
group, ``advance``/``settle`` → fluid group).  For each loop the audit
extracts **normalized state-field signatures**:

* attribute stores, augmented stores, ``del``\\ s and in-place mutator
  calls, resolved through local aliases (``nodes = net.nodes`` then
  ``node = nodes[idx]`` roots at ``nodes``) and truncated to
  ``root.field`` granularity;
* ``self`` is stripped, and a parameter-bound field dereference
  (``self.net.nodes`` where ``__init__`` stored ``net`` from a
  constructor argument) is stripped with it — so the engine that
  *wraps* the network and the network's own method land on the same
  signature for the same state;
* calls into project methods are expanded through the per-class
  mutable-state models: ``node.receive_transit(cell)`` contributes
  every field ``receive_transit`` (transitively) mutates, and
  arguments are mapped onto parameter mutations, so an engine method
  taking the node as a parameter still charges its writes to
  ``nodes.*``;
* purely local state (slabs, active sets, heaps) and observability
  roots never participate — persistent bookkeeping *inside* one
  backend is its own business.

Rules:

* ``W1401 backend-write-set`` — a loop never writes a state field its
  sibling backends write;
* ``W1402 backend-result-fields`` — sibling loops constructing the
  same result class must pass the same keyword set (an omitted keyword
  silently zeroes a stat on one backend only);
* ``W1403 backend-read-set`` — a loop neither reads nor writes a
  node-state field its siblings read (gated to the shared node
  collection, where a dropped read means a dropped protocol input
  rather than a different caching strategy).

Findings anchor on the loop's first ``.lap(...)`` call — the same
anchor ``S803`` uses — so one ``# lint: ignore[...]`` line can carry a
deliberate, documented asymmetry.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.checks.engine import Finding, ProjectRule
from repro.checks.flow.project import FunctionInfo, Project
from repro.checks.state.model import (MUTATOR_METHODS, StateAnalysis,
                                      _is_self_attr)

__all__ = [
    "STATE_PARITY_RULES",
    "StateParityAudit",
    "BackendWriteSetRule",
    "BackendResultFieldsRule",
    "BackendReadSetRule",
]

#: Receiver roots that are observability plumbing, never state (shared
#: vocabulary with the S8xx audit).
_OBS_ROOTS = frozenset({"tracer", "profiler", "registry", "telemetry",
                        "obs", "prof"})

#: Lap-label keys that group sibling backend loops (cf. ``S803``).
_GROUP_KEYS: Tuple[Tuple[str, frozenset], ...] = (
    ("cell", frozenset({"deliver", "transmit"})),
    ("fluid", frozenset({"advance", "settle"})),
)

#: Iterable-wrapper callables stripped when resolving loop aliases.
_ITER_WRAPPERS = frozenset({"sorted", "list", "tuple", "reversed", "iter",
                            "enumerate"})


def _chain_segments(expr: ast.AST) -> Optional[List[str]]:
    """Attribute chain as ``[root, attr, ...]``, subscripts skipped."""
    parts: List[str] = []
    node = expr
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            parts.reverse()
            return parts
        else:
            return None


def _walk_with_nested(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a loop body including its nested defs (they share the
    loop's locals), excluding nested classes and lambdas."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class _Loop:
    """One discovered backend loop with its extracted state sets."""

    info: FunctionInfo
    group: str
    labels: Set[str]
    anchor: ast.AST               #: first ``.lap(...)`` call
    writes: Dict[str, ast.AST]    #: signature -> one witnessing node
    reads: Set[str]
    #: constructed project class qualname -> keyword names passed
    results: Dict[str, Set[str]]


class _LoopAudit:
    """State-signature extraction for one backend loop."""

    def __init__(self, project: Project, analysis: StateAnalysis,
                 info: FunctionInfo) -> None:
        self.project = project
        self.analysis = analysis
        self.info = info
        self.owner = analysis.model_for(
            f"{info.module}.{info.class_name}") if info.class_name else None
        self.params = self._param_names()
        self.aliases: Dict[str, Optional[List[str]]] = {}
        self._build_aliases()

    # -- normalization -------------------------------------------------------
    def _param_names(self) -> Set[str]:
        args = self.info.node.args
        names = {a.arg for a in (*args.posonlyargs, *args.args,
                                 *args.kwonlyargs)}
        names.discard("self")
        names.discard("cls")
        return names

    def _param_bound(self, name: str) -> bool:
        if self.owner is None:
            return False
        record = self.owner.fields.get(name)
        return record is not None and record.param_bound

    def normalize(self, expr: ast.AST, *,
                  for_alias: bool = False) -> Optional[List[str]]:
        """Normalized state path of an expression, or None for local /
        observability roots.  ``for_alias`` permits a fully-stripped
        (empty) path — ``net = self.net`` aliases the shared object
        itself."""
        segments = _chain_segments(expr)
        if segments is None:
            return None
        root, rest = segments[0], segments[1:]
        if root in ("self", "cls"):
            if rest and self._param_bound(rest[0]) and (
                    len(rest) > 1 or for_alias):
                rest = rest[1:]
            path = rest
        elif root in self.aliases:
            base = self.aliases[root]
            if base is None:
                return None
            path = [*base, *rest]
        elif root in self.params:
            path = segments
        else:
            return None
        if path and path[0] in _OBS_ROOTS:
            return None
        if not path and not for_alias:
            return None
        return path

    def signature(self, path: List[str]) -> str:
        """``root.field`` signature: state parity is diffed per field."""
        return ".".join(path[:2])

    def _build_aliases(self) -> None:
        """Fill ``self.aliases``: local name -> normalized state path it
        aliases (None = poisoned: the name also holds non-state
        values).  Two ordered passes so an alias-of-an-alias defined
        textually later still resolves (``net = self.net`` before
        ``nodes = net.nodes`` and vice versa)."""
        aliases = self.aliases
        for _ in range(2):
            for node in ast.walk(self.info.node):
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    self._note_alias(aliases, node.targets[0].id, node.value)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    self._note_iter_alias(aliases, node.target, node.iter)

    def _note_alias(self, aliases: Dict[str, Optional[List[str]]],
                    name: str, value: ast.AST) -> None:
        path = self.normalize(self._unwrap(value), for_alias=True)
        if path is not None:
            if aliases.get(name, path) == path:
                aliases[name] = path
            else:
                aliases[name] = None
        elif name in aliases and aliases[name] is not None:
            aliases[name] = None

    def _note_iter_alias(self, aliases: Dict[str, Optional[List[str]]],
                         target: ast.AST, source: ast.AST) -> None:
        unwrapped = self._unwrap(source)
        if isinstance(target, ast.Tuple) and len(target.elts) == 2 and \
                isinstance(target.elts[1], ast.Name) and \
                isinstance(source, ast.Call) and \
                isinstance(source.func, ast.Name) and \
                source.func.id == "enumerate":
            target = target.elts[1]
        if isinstance(target, ast.Name):
            path = self.normalize(unwrapped, for_alias=True)
            if path is not None:
                if aliases.get(target.id, path) == path:
                    aliases[target.id] = path
                else:
                    aliases[target.id] = None

    @staticmethod
    def _unwrap(expr: ast.AST) -> ast.AST:
        while (isinstance(expr, ast.Call)
               and isinstance(expr.func, ast.Name)
               and expr.func.id in _ITER_WRAPPERS and expr.args):
            expr = expr.args[0]
        if isinstance(expr, ast.Call) and isinstance(expr.func,
                                                     ast.Attribute) \
                and expr.func.attr in ("values", "get", "setdefault"):
            return expr.func.value
        return expr

    # -- extraction ----------------------------------------------------------
    def extract(self) -> Tuple[Dict[str, ast.AST], Set[str],
                               Dict[str, Set[str]]]:
        writes: Dict[str, ast.AST] = {}
        reads: Set[str] = set()
        results: Dict[str, Set[str]] = {}

        def note_write(path: Optional[List[str]], node: ast.AST) -> None:
            if path:
                writes.setdefault(self.signature(path), node)

        plumbing = self.analysis.plumbing_fields()

        def note_read(path: Optional[List[str]]) -> None:
            if path and not (len(path) >= 2 and path[1] in plumbing):
                reads.add(self.signature(path))

        for node in _walk_with_nested(self.info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        note_write(self.normalize(target), target)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        note_write(self.normalize(target), target)
            elif isinstance(node, ast.Call):
                self._extract_call(node, note_write, note_read, results)
            elif isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load):
                parent = getattr(node, "_lint_parent", None)
                if isinstance(parent, ast.Call) and parent.func is node:
                    continue  # method access, charged by the call handler
                note_read(self.normalize(node))
        return writes, reads, results

    def _extract_call(self, node: ast.Call, note_write, note_read,
                      results: Dict[str, Set[str]]) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in MUTATOR_METHODS:
                note_write(self.normalize(func.value), node)
                return
            if func.attr in self.project.methods_by_name:
                receiver = self.normalize(func.value, for_alias=True)
                if receiver is not None:
                    self._expand_method(node, func.attr, receiver,
                                        note_write, note_read)
                return
        constructed = self._constructed_class(node)
        if constructed is not None:
            kwargs = {kw.arg for kw in node.keywords if kw.arg is not None}
            results.setdefault(constructed, set()).update(kwargs)
            return
        self._map_call_params(node, self.project.resolve_call(
            node, self.info), note_write, note_read)

    def _expand_method(self, node: ast.Call, method: str,
                       receiver: List[str], note_write,
                       note_read) -> None:
        """Charge a project method's field accesses to its receiver,
        and its parameter accesses to the matching arguments."""
        for field in sorted(self.analysis.method_write_fields(method)):
            note_write([*receiver, field], node)
        for field in sorted(self.analysis.method_read_fields(method)):
            note_read([*receiver, field])
        callees = [qual for qual in
                   self.project.methods_by_name.get(method, ())]
        self._map_call_params(node, callees, note_write, note_read)

    def _map_call_params(self, node: ast.Call, callees: List[str],
                         note_write, note_read) -> None:
        """Map positional arguments onto callee parameter accesses."""
        for qual in callees:
            fn = self.project.functions.get(qual)
            if fn is None:
                continue
            access = self._param_access(fn)
            if not access:
                continue
            for formal, actual in zip(fn.params, node.args):
                fields = access.get(formal)
                if fields is None:
                    continue
                param_writes, param_reads = fields
                path = self.normalize(actual, for_alias=True)
                if path is None:
                    continue
                for field in sorted(param_writes):
                    note_write([*path, field], node)
                for field in sorted(param_reads):
                    note_read([*path, field])

    def _param_access(self, fn: FunctionInfo,
                      ) -> Dict[str, Tuple[Set[str], Set[str]]]:
        """param name -> (written fields, read fields) the callee
        touches through it (first level; memoized project-wide)."""
        cache: Dict[str, Dict[str, Tuple[Set[str], Set[str]]]] = \
            self.project.__dict__.setdefault("_state_param_access", {})
        cached = cache.get(fn.qualname)
        if cached is not None:
            return cached
        params = set(fn.params) | set(fn.kwonly)
        access: Dict[str, Tuple[Set[str], Set[str]]] = {}

        def note(chain: Optional[List[str]], *, write: bool) -> None:
            if chain and len(chain) >= 2 and chain[0] in params:
                slot = access.setdefault(chain[0], (set(), set()))
                slot[0 if write else 1].add(chain[1])

        for node in _walk_with_nested(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)) \
                            and not _is_self_attr(target):
                        note(_chain_segments(target), write=True)
            elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute) and \
                    node.func.attr in MUTATOR_METHODS:
                note(_chain_segments(node.func.value), write=True)
            elif isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load):
                parent = getattr(node, "_lint_parent", None)
                if isinstance(parent, ast.Call) and parent.func is node:
                    continue
                note(_chain_segments(node), write=False)
        cache[fn.qualname] = access
        return access

    def _constructed_class(self, node: ast.Call) -> Optional[str]:
        """Project class qualname this call constructs, or None."""
        for qual in self.project.resolve_call(node, self.info):
            if qual.endswith(".__init__"):
                return qual[:-len(".__init__")]
        func = node.func
        if isinstance(func, ast.Name):
            dotted = self.project.imports.get(
                self.info.module, {}).get(func.id,
                                          f"{self.info.module}.{func.id}")
            if dotted in self.project.classes:
                return dotted
        return None


class StateParityAudit:
    """Shared cross-backend state audit for one :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        analysis: StateAnalysis = project.shared(StateAnalysis)
        self.loops: List[_Loop] = []
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            # Backend loops are engine *methods*; module-level functions
            # with lap calls (test fixtures replaying profiles) are not
            # execution strategies.
            if info.class_name is None:
                continue
            found = self._lap_labels(info)
            if found is None:
                continue
            labels, anchor = found
            group = self._group_of(labels)
            if group is None:
                continue
            audit = _LoopAudit(project, analysis, info)
            writes, reads, results = audit.extract()
            self.loops.append(_Loop(info=info, group=group, labels=labels,
                                    anchor=anchor, writes=writes,
                                    reads=reads, results=results))

    @staticmethod
    def _lap_labels(info: FunctionInfo,
                    ) -> Optional[Tuple[Set[str], ast.AST]]:
        labels: Set[str] = set()
        anchor: Optional[ast.AST] = None
        for node in ast.walk(info.node):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "lap"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                labels.add(node.args[0].value)
                if anchor is None:
                    anchor = node
        if anchor is None:
            return None
        return labels, anchor

    @staticmethod
    def _group_of(labels: Set[str]) -> Optional[str]:
        for group, key in _GROUP_KEYS:
            if key <= labels:
                return group
        return None

    def groups(self) -> Iterator[List[_Loop]]:
        for group, _key in _GROUP_KEYS:
            members = [loop for loop in self.loops if loop.group == group]
            if len(members) >= 2:
                yield members


def _sibling_with(loops: List[_Loop], me: _Loop, signature: str,
                  *, read: bool = False) -> str:
    for loop in loops:
        if loop is me:
            continue
        if (signature in loop.reads) if read else (signature in loop.writes):
            return loop.info.short
    return "a sibling backend loop"


class BackendWriteSetRule(ProjectRule):
    code = "W1401"
    name = "backend-write-set"
    description = ("sibling backend loops must write the same "
                   "network-state field set")

    def check_project(self, project: Project) -> Iterator[Finding]:
        audit: StateParityAudit = project.shared(StateParityAudit)
        for loops in audit.groups():
            union: Set[str] = set()
            for loop in loops:
                union |= set(loop.writes)
            for loop in loops:
                for signature in sorted(union - set(loop.writes)):
                    sibling = _sibling_with(loops, loop, signature)
                    yield self.finding(
                        loop.info.ctx, loop.anchor,
                        f"backend loop {loop.info.short} never writes "
                        f"state field '{signature}' but its sibling "
                        f"{sibling} does; the backends' state write "
                        "sets have diverged",
                    )


class BackendResultFieldsRule(ProjectRule):
    code = "W1402"
    name = "backend-result-fields"
    description = ("sibling backend loops must build their result "
                   "object from the same keyword set")

    def check_project(self, project: Project) -> Iterator[Finding]:
        audit: StateParityAudit = project.shared(StateParityAudit)
        for loops in audit.groups():
            union: Dict[str, Set[str]] = {}
            builders: Dict[str, int] = {}
            for loop in loops:
                for cls_qual, kwargs in loop.results.items():
                    union.setdefault(cls_qual, set()).update(kwargs)
                    builders[cls_qual] = builders.get(cls_qual, 0) + 1
            for loop in loops:
                for cls_qual, kwargs in sorted(loop.results.items()):
                    if builders.get(cls_qual, 0) < 2:
                        continue
                    missing = sorted(union[cls_qual] - kwargs)
                    if not missing:
                        continue
                    cls_name = cls_qual.rsplit(".", 1)[-1]
                    yield self.finding(
                        loop.info.ctx, loop.anchor,
                        f"backend loop {loop.info.short} builds "
                        f"{cls_name} without keyword"
                        f"{'s' if len(missing) != 1 else ''} "
                        f"{', '.join(repr(k) for k in missing)} that its "
                        "sibling backend loops pass; the omitted stats "
                        "silently default on this backend only",
                    )


class BackendReadSetRule(ProjectRule):
    code = "W1403"
    name = "backend-read-set"
    description = ("sibling backend loops must consume the same "
                   "node-state field set")

    #: Only node-collection state participates: differing *self*-level
    #: caching strategies are the whole point of having backends.
    _ROOT = "nodes."

    def check_project(self, project: Project) -> Iterator[Finding]:
        audit: StateParityAudit = project.shared(StateParityAudit)
        for loops in audit.groups():
            union: Set[str] = set()
            for loop in loops:
                union |= {sig for sig in loop.reads
                          if sig.startswith(self._ROOT)}
            for loop in loops:
                touched = set(loop.reads) | set(loop.writes)
                for signature in sorted(union - touched):
                    sibling = _sibling_with(loops, loop, signature,
                                            read=True)
                    yield self.finding(
                        loop.info.ctx, loop.anchor,
                        f"backend loop {loop.info.short} never reads "
                        f"node-state field '{signature}' but its "
                        f"sibling {sibling} does; a protocol input has "
                        "been dropped on this backend",
                    )


STATE_PARITY_RULES = [BackendWriteSetRule(), BackendResultFieldsRule(),
                      BackendReadSetRule()]
