"""Strategy-protocol conformance rules (family ``N13``) for
:mod:`repro.checks.state`.

ROADMAP item 1 promotes scheduling to a strategy interface with
rotor/Apollo/PULSE peers; the epoch-loop backends and the fluid
engines already are such strategy families.  The failure mode of
string-dispatched strategies is *surface drift*: an implementation
misses a method, grows an incompatible signature, or keeps an abstract
stub, and the error surfaces at dispatch time deep inside a sweep.
These rules enforce the contract statically:

* ``N1301 protocol-missing-method`` — a class subclassing a protocol
  (``typing.Protocol`` base, or an ABC with ``@abstractmethod``
  methods) does not implement its full declared surface;
* ``N1302 protocol-signature-mismatch`` — an implementation (or a
  sibling strategy method such as ``_loop_incremental`` next to
  ``_loop_reference``) declares a signature callers of the protocol
  surface cannot use interchangeably;
* ``N1303 abstract-leftover`` — an implementation "implements" a
  protocol method with an abstract body (``...``/``pass``/docstring
  only, ``raise NotImplementedError``) or a surviving
  ``@abstractmethod`` decorator.

A *protocol* class here is one whose base chain reaches
``typing.Protocol``, or an ``abc.ABC``/``ABCMeta`` class with at least
one ``@abstractmethod``.  Its required surface is every method it (or
a protocol ancestor) declares abstractly — concrete default bodies on
a protocol are mixin behaviour, not obligations.  Signature
compatibility is call-interchangeability: same positional names in
order (extras need defaults), every protocol keyword accepted, no new
required parameters.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.checks.engine import Finding, ProjectRule
from repro.checks.flow.project import ClassInfo, FunctionInfo, Project

__all__ = [
    "PROTOCOL_RULES",
    "ProtocolAnalysis",
    "ProtocolMissingMethodRule",
    "ProtocolSignatureMismatchRule",
    "AbstractLeftoverRule",
]

#: Base-expression dotted texts that mark a protocol declaration even
#: when the name does not resolve inside the project.
_PROTOCOL_BASES = frozenset({"Protocol", "typing.Protocol"})
_ABC_BASES = frozenset({"ABC", "abc.ABC", "ABCMeta", "abc.ABCMeta"})

#: Method-name prefixes that group sibling strategy methods on one
#: class (``_loop_reference`` / ``_loop_incremental``): same prefix →
#: same call sites → identical signatures required.
STRATEGY_PREFIXES = ("_loop_", "_strategy_", "_backend_")


def _decorator_names(node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for deco in getattr(node, "decorator_list", []):
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


def _is_abstract_decorated(node: ast.AST) -> bool:
    return bool(_decorator_names(node)
                & {"abstractmethod", "abstractproperty"})


def _is_abstractish(node: ast.AST) -> bool:
    """A body that declares rather than implements: docstring plus
    ``...``/``pass`` only, or a bare ``raise NotImplementedError``."""
    body = list(getattr(node, "body", []))
    if body and isinstance(body[0], ast.Expr) and isinstance(
            body[0].value, ast.Constant) and isinstance(
            body[0].value.value, str):
        body = body[1:]
    if not body:
        return True
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant) and stmt.value.value is Ellipsis:
            continue
        if isinstance(stmt, ast.Raise):
            exc = stmt.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            if isinstance(target, ast.Name) and target.id in (
                    "NotImplementedError", "NotImplemented"):
                continue
        return False
    return True


@dataclass(frozen=True)
class _Signature:
    """Call-compatibility view of one method signature."""

    pos: Tuple[str, ...]          #: positional names, self/cls stripped
    pos_defaults: int             #: how many trailing positionals default
    kwonly: Tuple[str, ...]
    kwonly_defaulted: Tuple[str, ...]
    has_vararg: bool
    has_kwarg: bool

    @classmethod
    def of(cls, node: ast.AST, is_method: bool) -> "_Signature":
        args = node.args
        pos = [a.arg for a in (*args.posonlyargs, *args.args)]
        if is_method and pos and pos[0] in ("self", "cls"):
            pos = pos[1:]
        defaulted = [a.arg for a, d in zip(args.kwonlyargs, args.kw_defaults)
                     if d is not None]
        return cls(
            pos=tuple(pos),
            pos_defaults=len(args.defaults),
            kwonly=tuple(a.arg for a in args.kwonlyargs),
            kwonly_defaulted=tuple(defaulted),
            has_vararg=args.vararg is not None,
            has_kwarg=args.kwarg is not None,
        )

    def render(self) -> str:
        parts = list(self.pos)
        if self.has_vararg or self.kwonly:
            parts.append("*" if not self.has_vararg else "*args")
        parts.extend(self.kwonly)
        if self.has_kwarg:
            parts.append("**kwargs")
        return f"({', '.join(parts)})"


def _incompatibility(proto: _Signature, impl: _Signature) -> Optional[str]:
    """Why ``impl`` cannot stand in for ``proto`` at call sites (or None)."""
    n = len(proto.pos)
    if impl.pos[:n] != proto.pos:
        return (f"positional parameters {impl.render()} do not match the "
                f"declared {proto.render()}")
    extra_pos = impl.pos[n:]
    undefaulted = len(impl.pos) - impl.pos_defaults
    for index, name in enumerate(extra_pos, start=n):
        if index < undefaulted:
            return (f"adds required positional parameter '{name}' absent "
                    f"from the declared {proto.render()}")
    if proto.has_vararg and not impl.has_vararg:
        return "drops the declared *args"
    if not impl.has_kwarg:
        accepted = set(impl.kwonly) | set(impl.pos)
        for name in proto.kwonly:
            if name not in accepted:
                return (f"does not accept declared keyword parameter "
                        f"'{name}'")
    for name in impl.kwonly:
        if name not in proto.kwonly and name not in proto.pos \
                and name not in impl.kwonly_defaulted:
            return (f"adds required keyword parameter '{name}' absent "
                    f"from the declared {proto.render()}")
    return None


class ProtocolAnalysis:
    """Protocol classes, their surfaces, and their implementations."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: qualname -> "typing" | "abc" | None (concrete); see
        #: :meth:`_protocol_kind`.
        self._protocol_memo: Dict[str, Optional[str]] = {}
        #: protocol qualname -> {method name: declaring FunctionInfo}
        self.surfaces: Dict[str, Dict[str, FunctionInfo]] = {}
        #: implementation qualname -> protocol qualnames it subclasses
        self.implementations: Dict[str, List[str]] = {}
        for qualname in sorted(project.classes):
            if self.is_protocol(qualname):
                self.surfaces[qualname] = self._surface(qualname)
        for qualname in sorted(project.classes):
            if self.is_protocol(qualname):
                continue
            protocols = [ancestor for ancestor in self._ancestors(qualname)
                         if ancestor in self.surfaces]
            if protocols:
                self.implementations[qualname] = protocols

    # -- classification ------------------------------------------------------
    def is_protocol(self, qualname: str) -> bool:
        return self._protocol_kind(qualname) is not None

    def _protocol_kind(self, qualname: str) -> Optional[str]:
        """``"typing"``, ``"abc"``, or None for a concrete class.

        Typing semantics: subclassing a ``Protocol`` class *without*
        listing ``Protocol`` again yields a concrete implementation —
        even one that (buggily) keeps an ``@abstractmethod``, which is
        exactly what ``N1303`` flags.  ABC hierarchies differ: an
        abstract subclass of an abstract base is still abstract.
        """
        memo = self._protocol_memo.get(qualname)
        if memo is not None or qualname in self._protocol_memo:
            return memo
        self._protocol_memo[qualname] = None  # cycle guard
        info = self.project.classes.get(qualname)
        if info is None:
            return None
        kind: Optional[str] = None
        abstract = any(
            _is_abstract_decorated(self.project.functions[m].node)
            for m in info.methods.values() if m in self.project.functions)
        for base in info.bases:
            resolved_text = self._resolved_base_text(info.module, base)
            if base in _PROTOCOL_BASES or resolved_text in _PROTOCOL_BASES:
                kind = "typing"
                break
            if (base in _ABC_BASES or resolved_text in _ABC_BASES) \
                    and abstract:
                kind = "abc"
                break
            resolved = self.project._resolve_class_text(info.module, base)
            if resolved is not None and abstract \
                    and self._protocol_kind(resolved) == "abc":
                kind = "abc"
                break
        if kind is None and abstract and self._metaclass_is_abc(info):
            kind = "abc"
        self._protocol_memo[qualname] = kind
        return kind

    def _resolved_base_text(self, module: str, text: str) -> str:
        alias, _, rest = text.partition(".")
        target = self.project.imports.get(module, {}).get(alias)
        if target is None:
            return text
        return f"{target}.{rest}" if rest else target

    @staticmethod
    def _metaclass_is_abc(info: ClassInfo) -> bool:
        for keyword in info.node.keywords:
            if keyword.arg == "metaclass":
                text = keyword.value
                name = (text.attr if isinstance(text, ast.Attribute)
                        else getattr(text, "id", ""))
                if name == "ABCMeta":
                    return True
        return False

    # -- surfaces and chains -------------------------------------------------
    def _ancestors(self, qualname: str) -> List[str]:
        """Project-resolvable base chain of a class (BFS, no self)."""
        seen: Set[str] = {qualname}
        order: List[str] = []
        frontier = [qualname]
        while frontier:
            info = self.project.classes.get(frontier.pop(0))
            if info is None:
                continue
            for base in info.bases:
                resolved = self.project._resolve_class_text(info.module, base)
                if resolved is not None and resolved not in seen:
                    seen.add(resolved)
                    order.append(resolved)
                    frontier.append(resolved)
        return order

    def _surface(self, qualname: str) -> Dict[str, FunctionInfo]:
        """Required methods of a protocol: abstract declarations on it
        and on every protocol ancestor (nearest declaration wins)."""
        surface: Dict[str, FunctionInfo] = {}
        for cls_qual in (qualname, *self._ancestors(qualname)):
            if cls_qual != qualname and not self.is_protocol(cls_qual):
                continue
            info = self.project.classes.get(cls_qual)
            if info is None:
                continue
            for method, fn_qual in info.methods.items():
                fn = self.project.functions.get(fn_qual)
                if fn is None or method in surface or method == "__init__":
                    continue
                if _is_abstract_decorated(fn.node) or _is_abstractish(fn.node):
                    surface[method] = fn
        return surface

    def concrete_methods(self, qualname: str) -> Dict[str, FunctionInfo]:
        """Methods an implementation actually provides, own first, then
        inherited from non-protocol ancestors (nearest wins)."""
        provided: Dict[str, FunctionInfo] = {}
        for cls_qual in (qualname, *self._ancestors(qualname)):
            if self.is_protocol(cls_qual):
                continue
            info = self.project.classes.get(cls_qual)
            if info is None:
                continue
            for method, fn_qual in info.methods.items():
                fn = self.project.functions.get(fn_qual)
                if fn is not None and method not in provided:
                    provided[method] = fn
        return provided

    # -- strategy method groups ----------------------------------------------
    def strategy_groups(self) -> Iterator[Tuple[ClassInfo, str,
                                                List[FunctionInfo]]]:
        """(class, prefix, members in source order) for every class with
        two or more sibling strategy methods sharing a prefix."""
        for qualname in sorted(self.project.classes):
            info = self.project.classes[qualname]
            for prefix in STRATEGY_PREFIXES:
                members = [
                    self.project.functions[fn_qual]
                    for method, fn_qual in info.methods.items()
                    if method.startswith(prefix)
                    and len(method) > len(prefix)
                    and fn_qual in self.project.functions
                ]
                if len(members) >= 2:
                    members.sort(key=lambda fn: fn.node.lineno)
                    yield info, prefix, members


class ProtocolMissingMethodRule(ProjectRule):
    code = "N1301"
    name = "protocol-missing-method"
    description = ("a protocol implementation must provide the full "
                   "declared method surface")

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis: ProtocolAnalysis = project.shared(ProtocolAnalysis)
        for impl_qual in sorted(analysis.implementations):
            impl = project.classes[impl_qual]
            provided = analysis.concrete_methods(impl_qual)
            for proto_qual in analysis.implementations[impl_qual]:
                proto = project.classes[proto_qual]
                missing = [
                    method
                    for method in sorted(analysis.surfaces[proto_qual])
                    if method not in provided
                ]
                if not missing:
                    continue
                ctx = project.contexts.get(
                    project.contexts_modules().get(impl.module, ""))
                if ctx is None:
                    continue
                listed = ", ".join(f"{name}()" for name in missing)
                yield self.finding(
                    ctx, impl.node,
                    f"{impl.name} subclasses {proto.name} but never "
                    f"implements {listed}; dispatching through the "
                    "protocol surface would fail at runtime",
                )


class ProtocolSignatureMismatchRule(ProjectRule):
    code = "N1302"
    name = "protocol-signature-mismatch"
    description = ("protocol implementations and sibling strategy "
                   "methods must keep call-compatible signatures")

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis: ProtocolAnalysis = project.shared(ProtocolAnalysis)
        for impl_qual in sorted(analysis.implementations):
            impl = project.classes[impl_qual]
            for proto_qual in analysis.implementations[impl_qual]:
                proto = project.classes[proto_qual]
                surface = analysis.surfaces[proto_qual]
                for method in sorted(surface):
                    fn_qual = impl.methods.get(method)
                    fn = project.functions.get(fn_qual or "")
                    if fn is None:
                        continue
                    reason = _incompatibility(
                        _Signature.of(surface[method].node, is_method=True),
                        _Signature.of(fn.node, is_method=True))
                    if reason is not None:
                        yield self.finding(
                            fn.ctx, fn.node,
                            f"{impl.name}.{method}() {reason} declared by "
                            f"{proto.name}; the strategies are not "
                            "interchangeable at call sites",
                        )
        for info, prefix, members in analysis.strategy_groups():
            leader = members[0]
            leader_sig = _Signature.of(leader.node, is_method=True)
            for member in members[1:]:
                sig = _Signature.of(member.node, is_method=True)
                if sig != leader_sig:
                    yield self.finding(
                        member.ctx, member.node,
                        f"{info.name}.{member.name}() signature "
                        f"{sig.render()} differs from sibling strategy "
                        f"{leader.name}(){leader_sig.render()}; "
                        f"'{prefix}*' strategies share call sites and "
                        "must keep identical signatures",
                    )


class AbstractLeftoverRule(ProjectRule):
    code = "N1303"
    name = "abstract-leftover"
    description = ("a protocol implementation must not keep abstract "
                   "bodies or @abstractmethod decorators")

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis: ProtocolAnalysis = project.shared(ProtocolAnalysis)
        for impl_qual in sorted(analysis.implementations):
            impl = project.classes[impl_qual]
            protocols = analysis.implementations[impl_qual]
            surface_names: Set[str] = set()
            for proto_qual in protocols:
                surface_names |= set(analysis.surfaces[proto_qual])
            for method in sorted(impl.methods):
                fn = project.functions.get(impl.methods[method])
                if fn is None:
                    continue
                if _is_abstract_decorated(fn.node):
                    yield self.finding(
                        fn.ctx, fn.node,
                        f"{impl.name}.{method}() keeps @abstractmethod "
                        "on a concrete strategy implementation; "
                        "instantiating it will fail",
                    )
                elif method in surface_names and _is_abstractish(fn.node):
                    yield self.finding(
                        fn.ctx, fn.node,
                        f"{impl.name}.{method}() has an abstract body "
                        "for a protocol-surface method; the strategy "
                        "would raise or no-op when dispatched",
                    )


PROTOCOL_RULES = [ProtocolMissingMethodRule(),
                  ProtocolSignatureMismatchRule(), AbstractLeftoverRule()]
