"""Per-class mutable-state models for :mod:`repro.checks.state`.

The M12xx / N13xx / W14xx families all reason about the same question
— *what state does this class actually carry?* — so the answer is
computed once per lint run and fetched with
``project.shared(StateAnalysis)``.  For every project class the
analysis builds a :class:`ClassStateModel` recording:

* **fields bound in ``__init__``** — the declared state surface,
  including which of them are *parameter-bound* (``self.net = network``
  stores a reference to an object the caller owns, so mutations through
  that field land on shared state in another module);
* **fields mutated anywhere else** — plain stores (``self.depth = n``),
  augmented stores, subscript/attribute stores one level down
  (``self.fwd[dst] = q``), ``del`` statements, and in-place mutator
  calls (``self.inbox.append(...)``), *including through local
  aliases*: ``q = self.fwd.get(dst); q.append(cell)`` mutates ``fwd``
  exactly as the direct call would, and the backend engines lean on
  that shape heavily;
* **per-method read/write field sets plus the ``self.m()`` call graph**
  — so a rule can ask for the *transitive* field closure of one entry
  point (everything ``snapshot`` reads through any chain of self-calls,
  everything ``restore`` writes).

Properties are treated as methods like any other: a ``@property`` body
that reads three fields contributes those reads to any method that
touches the property.  Nested functions inside a method attribute
their accesses to the enclosing method (closures over ``self`` are the
method's own code).
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.checks.flow.project import ClassInfo, FunctionInfo, Project

__all__ = [
    "ClassStateModel",
    "FieldRecord",
    "StateAnalysis",
    "MUTATOR_METHODS",
]

#: Methods that mutate their receiver in place (shared vocabulary with
#: the concurrency layer; duplicated to keep the state layer importable
#: without it).
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "appendleft", "extendleft",
    "popleft", "sort", "reverse",
})

#: ``self.x.<attr>(...)`` receiver-producing call attrs whose result
#: aliases the container itself (``q = self.fwd.get(dst)``).
_ALIASING_ATTRS = frozenset({"get", "setdefault"})

#: Methods that *construct* rather than evolve state: stores here bind
#: fields (dataclasses run ``__post_init__`` as part of construction).
INIT_METHODS = frozenset({"__init__", "__post_init__"})


@dataclass
class FieldRecord:
    """One ``self.<name>`` field of a class."""

    name: str
    #: bound by a plain ``self.name = ...`` in ``__init__``
    init_bound: bool = False
    #: ``__init__`` binds it straight from a constructor parameter —
    #: the field aliases an object owned across the module boundary
    param_bound: bool = False
    #: method name -> mutation-site AST nodes *outside* ``__init__``
    mutations: Dict[str, List[ast.AST]] = field(default_factory=dict)
    #: method name -> read-site AST nodes
    reads: Dict[str, List[ast.AST]] = field(default_factory=dict)

    @property
    def mutated_outside_init(self) -> bool:
        return bool(self.mutations)


class ClassStateModel:
    """The mutable-state inventory of one project class."""

    def __init__(self, info: ClassInfo, project: Project) -> None:
        self.info = info
        self.project = project
        self.fields: Dict[str, FieldRecord] = {}
        #: method name -> directly read / mutated field names
        self.method_reads: Dict[str, Set[str]] = {}
        self.method_writes: Dict[str, Set[str]] = {}
        #: method name -> method names invoked through ``self``/``cls``
        self.self_calls: Dict[str, Set[str]] = {}
        for method_name, qualname in info.methods.items():
            fn = project.functions.get(qualname)
            if fn is not None:
                self._scan_method(method_name, fn)

    # -- queries -------------------------------------------------------------
    def mutated_fields(self, exclude: Iterable[str] = INIT_METHODS,
                       ) -> List[str]:
        """Fields mutated outside ``exclude`` methods, sorted — the
        state a checkpoint of this class must capture.  Constructors
        (``__init__``/``__post_init__``) are excluded by default:
        construction *binds* state, it does not evolve it (in-place
        mutator calls there count as binding too)."""
        excluded = set(exclude)
        return sorted(name for name, record in self.fields.items()
                      if set(record.mutations) - excluded)

    def aliased_fields(self) -> List[str]:
        """Parameter-bound fields (state shared across the boundary)."""
        return sorted(name for name, record in self.fields.items()
                      if record.param_bound)

    def closure_methods(self, entry: str) -> Set[str]:
        """``entry`` plus every method reachable via ``self.m()`` chains."""
        seen: Set[str] = set()
        frontier = [entry]
        while frontier:
            name = frontier.pop()
            if name in seen or name not in self.info.methods:
                continue
            seen.add(name)
            frontier.extend(self.self_calls.get(name, ()))
        return seen

    def closure_reads(self, entry: str) -> Set[str]:
        """Fields read by ``entry`` or any transitively self-called method."""
        fields: Set[str] = set()
        for name in self.closure_methods(entry):
            fields |= self.method_reads.get(name, set())
        return fields

    def closure_writes(self, entry: str) -> Set[str]:
        """Fields mutated by ``entry`` or any transitive self-call."""
        fields: Set[str] = set()
        for name in self.closure_methods(entry):
            fields |= self.method_writes.get(name, set())
        return fields

    def mutation_evidence(self, field_name: str) -> Optional[Tuple[str, int]]:
        """(method name, line) of one mutation site, for messages.

        Prefers a site outside ``__init__`` — the evidence that made
        the field *mutable state* rather than a constructor binding.
        """
        record = self.fields.get(field_name)
        if record is None:
            return None
        ordered = sorted(record.mutations,
                         key=lambda method: (method in INIT_METHODS, method))
        for method in ordered:
            for node in record.mutations[method]:
                line = getattr(node, "lineno", None)
                if line is not None:
                    return method, line
        return None

    # -- extraction ----------------------------------------------------------
    def _scan_method(self, method_name: str, fn: FunctionInfo) -> None:
        is_init = method_name in INIT_METHODS
        init_params = set(fn.params) | set(fn.kwonly) if is_init else set()
        reads = self.method_reads.setdefault(method_name, set())
        writes = self.method_writes.setdefault(method_name, set())
        calls = self.self_calls.setdefault(method_name, set())
        aliases = self._self_aliases(fn)

        def record(name: str) -> FieldRecord:
            rec = self.fields.get(name)
            if rec is None:
                rec = self.fields[name] = FieldRecord(name=name)
            return rec

        def note_write(name: str, node: ast.AST) -> None:
            writes.add(name)
            record(name).mutations.setdefault(method_name, []).append(node)

        def note_read(name: str, node: ast.AST) -> None:
            reads.add(name)
            record(name).reads.setdefault(method_name, []).append(node)

        def field_of(expr: ast.AST) -> Optional[str]:
            """The self-field an expression is rooted in (alias-aware)."""
            while isinstance(expr, (ast.Subscript, ast.Attribute)):
                if _is_self_attr(expr):
                    return expr.attr  # type: ignore[union-attr]
                expr = expr.value
            if isinstance(expr, ast.Name):
                return aliases.get(expr.id)
            return None

        for node in _walk_with_nested(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    for name in _field_targets(target):
                        self._bind(record(name), node, is_init, init_params,
                                   isinstance(target, ast.Attribute)
                                   and _is_self_attr(target))
                        if not (is_init and isinstance(target, ast.Attribute)
                                and _is_self_attr(target)):
                            note_write(name, target)
                    if isinstance(target, (ast.Subscript, ast.Attribute)) \
                            and not _is_self_attr(target):
                        deep = field_of(target.value)
                        if deep is not None:
                            note_write(deep, target)
                if isinstance(node, ast.AugAssign) and isinstance(
                        node.target, ast.Attribute) and _is_self_attr(
                        node.target):
                    # ``self.x += 1`` also reads the field.
                    note_read(node.target.attr, node.target)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and _is_self_attr(
                            target):
                        note_write(target.attr, target)
                    elif isinstance(target, (ast.Subscript, ast.Attribute)):
                        deep = field_of(target.value)
                        if deep is not None:
                            note_write(deep, target)
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    if _is_self_attr(func):
                        calls.add(func.attr)
                    elif func.attr in MUTATOR_METHODS:
                        owner = field_of(func.value)
                        if owner is not None:
                            note_write(owner, node)
            elif isinstance(node, ast.Attribute) and _is_self_attr(node):
                if isinstance(node.ctx, ast.Load):
                    parent_call = getattr(node, "_lint_parent", None)
                    is_call_func = (isinstance(parent_call, ast.Call)
                                    and parent_call.func is node)
                    if is_call_func and node.attr in self.info.methods:
                        pass  # already recorded as a self-call
                    else:
                        note_read(node.attr, node)

    @staticmethod
    def _bind(rec: FieldRecord, node: ast.AST, is_init: bool,
              init_params: Set[str], is_plain_self_store: bool) -> None:
        if not (is_init and is_plain_self_store):
            return
        rec.init_bound = True
        value = getattr(node, "value", None)
        if isinstance(value, ast.Name) and value.id in init_params:
            rec.param_bound = True

    @staticmethod
    def _self_aliases(fn: FunctionInfo) -> Dict[str, str]:
        """Local name -> self-field it aliases (one level, flow-insensitive).

        Catches the three shapes the simulator uses: ``x = self._slab``,
        ``q = self.fwd.get(dst)`` / ``.setdefault(...)``, and
        ``for q in self.fwd.values():``.  A name later rebound to a
        non-self value is dropped — better to miss a mutation than to
        invent one.
        """
        aliases: Dict[str, str] = {}
        dropped: Set[str] = set()

        def source_field(expr: ast.AST) -> Optional[str]:
            if isinstance(expr, ast.Attribute) and _is_self_attr(expr):
                return expr.attr
            if isinstance(expr, ast.Subscript):
                return source_field(expr.value)
            if isinstance(expr, ast.Call) and isinstance(
                    expr.func, ast.Attribute):
                if expr.func.attr in _ALIASING_ATTRS or \
                        expr.func.attr == "values":
                    return source_field(expr.func.value)
            return None

        for node in _walk_with_nested(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                fld = source_field(node.value)
                if fld is not None and name not in dropped:
                    aliases[name] = fld
                elif name in aliases:
                    del aliases[name]
                    dropped.add(name)
            elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
                    node.target, ast.Name):
                fld = source_field(node.iter)
                if fld is not None and node.target.id not in dropped:
                    aliases[node.target.id] = fld
        return aliases


def _is_self_attr(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls"))


def _field_targets(target: ast.AST) -> Iterator[str]:
    """Field names a store target binds directly on ``self``."""
    if isinstance(target, ast.Attribute) and _is_self_attr(target):
        yield target.attr
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _field_targets(element)
    elif isinstance(target, ast.Starred):
        yield from _field_targets(target.value)


def _walk_with_nested(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a method body including nested defs, excluding nested classes.

    Source order is preserved (breadth-first, like :func:`ast.walk`) —
    the alias tracker relies on seeing a rebinding *after* the binding
    it poisons.
    """
    queue: Deque[ast.AST] = deque(ast.iter_child_nodes(fn))
    while queue:
        node = queue.popleft()
        if isinstance(node, ast.ClassDef):
            continue
        yield node
        queue.extend(ast.iter_child_nodes(node))


class StateAnalysis:
    """Mutable-state models for every class of one :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.models: Dict[str, ClassStateModel] = {}
        self._plumbing: Optional[Set[str]] = None
        for qualname, info in project.classes.items():
            self.models[qualname] = ClassStateModel(info, project)

    def plumbing_fields(self) -> Set[str]:
        """Field names that are shared-by-reference plumbing: bound
        from a constructor argument in some class and mutated outside
        ``__init__`` in none (``config``, ``topology``, ``rng``, ...).
        Reading such a field through one access path rather than
        another is a caching choice, not a state divergence."""
        if self._plumbing is None:
            bound: Set[str] = set()
            mutated: Set[str] = set()
            for model in self.models.values():
                for name, record in model.fields.items():
                    if record.param_bound:
                        bound.add(name)
                    if set(record.mutations) - INIT_METHODS:
                        mutated.add(name)
            self._plumbing = bound - mutated
        return self._plumbing

    def model_for(self, qualname: str) -> Optional[ClassStateModel]:
        return self.models.get(qualname)

    def models_named(self, class_name: str) -> List[ClassStateModel]:
        """Models of every project class with this bare name."""
        return [model for qualname, model in sorted(self.models.items())
                if model.info.name == class_name]

    def method_write_fields(self, method_name: str) -> Set[str]:
        """Union of transitive field writes of every project method with
        this name — the class-hierarchy approximation the write-set
        audit uses to expand ``node.method()`` calls."""
        fields: Set[str] = set()
        for qualname in self.project.methods_by_name.get(method_name, ()):
            cls_qual = qualname.rsplit(".", 1)[0]
            model = self.models.get(cls_qual)
            if model is not None:
                fields |= model.closure_writes(method_name)
        return fields

    def method_read_fields(self, method_name: str) -> Set[str]:
        """Union of transitive field reads, *excluding* parameter-bound
        fields: a field ``__init__`` stored from a constructor argument
        (config, topology) is shared-by-reference plumbing every caller
        can reach by other paths, not per-instance protocol state."""
        fields: Set[str] = set()
        for qualname in self.project.methods_by_name.get(method_name, ()):
            cls_qual = qualname.rsplit(".", 1)[0]
            model = self.models.get(cls_qual)
            if model is not None:
                for name in model.closure_reads(method_name):
                    record = model.fields.get(name)
                    if record is None or not record.param_bound:
                        fields.add(name)
        return fields
