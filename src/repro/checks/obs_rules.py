"""Observability lint rules (family ``O``).

With :mod:`repro.obs` in place, the simulator's hot paths
(:mod:`repro.core`, :mod:`repro.sim`) have structured channels for
everything they might want to say: metrics for counts, trace events for
occurrences, the profiler for timing.  Ad-hoc ``print()`` calls in
those packages bypass all of it — they are invisible to exporters,
unlabelled, and cost wall-clock inside the epoch loop.  These rules
keep the hot path quiet:

* ``O401 print-in-hot-path`` — a direct ``print(...)`` call inside
  ``repro.core`` or ``repro.sim``;
* ``O402 stream-write-in-hot-path`` — writing to ``sys.stdout`` /
  ``sys.stderr`` there (the same bypass with extra steps).

Presentation layers (``repro.cli``, ``repro.obs.report``, benchmarks,
tests) are out of scope — printing is their job.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.engine import FileContext, Finding, Rule

__all__ = [
    "PrintInHotPathRule",
    "StreamWriteInHotPathRule",
    "OBS_RULES",
]

#: Dotted-module prefixes where simulator hot paths live.
_HOT_PACKAGES = ("repro.core", "repro.sim")


def _in_hot_path(ctx: FileContext) -> bool:
    module = ctx.module_dotted()
    return any(
        module == package or module.startswith(package + ".")
        for package in _HOT_PACKAGES
    )


class PrintInHotPathRule(Rule):
    """Flag ``print()`` in the simulator packages."""

    code = "O401"
    name = "print-in-hot-path"
    description = "print() call inside repro.core/repro.sim"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_hot_path(ctx):
            return
        for node in ctx.walk():
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                yield self.finding(
                    ctx, node,
                    "print() in a simulator package bypasses repro.obs; "
                    "publish a metric, emit a trace event, or move the "
                    "output to the presentation layer",
                )


class StreamWriteInHotPathRule(Rule):
    """Flag direct stdout/stderr writes in the simulator packages."""

    code = "O402"
    name = "stream-write-in-hot-path"
    description = "sys.stdout/sys.stderr write inside repro.core/repro.sim"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_hot_path(ctx):
            return
        for node in ctx.walk():
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("write", "writelines")):
                continue
            stream = node.func.value
            if (isinstance(stream, ast.Attribute)
                    and stream.attr in ("stdout", "stderr")
                    and isinstance(stream.value, ast.Name)
                    and stream.value.id == "sys"):
                yield self.finding(
                    ctx, node,
                    f"sys.{stream.attr}.{node.func.attr}() in a simulator "
                    "package bypasses repro.obs; use the metrics registry "
                    "or event tracer instead",
                )


OBS_RULES = [PrintInHotPathRule(), StreamWriteInHotPathRule()]
