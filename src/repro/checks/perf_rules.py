"""Performance lint rules (family ``P``).

The fast-path work in :mod:`repro.core` exists because a handful of
accidentally-quadratic idioms dominated the epoch loop's profile:
``list.pop(0)`` shifting every element on each call, and fresh
``list(...)`` snapshots of containers taken inside per-epoch loops.
These rules keep those idioms from creeping back into the simulator's
hot packages (``repro.core``, ``repro.sim``):

* ``P501 pop-zero-in-loop`` — ``something.pop(0)`` inside a loop body;
  a :class:`collections.deque` with ``popleft()`` is O(1).
* ``P502 list-copy-in-loop`` — ``list(name)`` / ``list(obj.attr)``
  inside a loop body; hoist the snapshot out of the loop or iterate
  the container directly.

Both rules look only at loop *bodies* (and ``else`` clauses): a
``for x in list(d):`` header at function top level is the standard
snapshot-before-mutation idiom and is evaluated once, so it does not
fire.  Presentation layers and tests are out of scope, as with the
``O4xx`` family.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.engine import FileContext, Finding, Rule, parent_of

__all__ = [
    "PopZeroInLoopRule",
    "ListCopyInLoopRule",
    "PERF_RULES",
]

#: Dotted-module prefixes where simulator hot paths live.
_HOT_PACKAGES = ("repro.core", "repro.sim")

_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _in_hot_path(ctx: FileContext) -> bool:
    module = ctx.module_dotted()
    return any(
        module == package or module.startswith(package + ".")
        for package in _HOT_PACKAGES
    )


def _in_loop_body(node: ast.AST) -> bool:
    """True when ``node`` sits in the body of some enclosing loop.

    Climbs the ``_lint_parent`` chain; at each enclosing loop, the node
    counts only if the chain enters through ``body``/``orelse`` — an
    expression in a loop *header* (``iter`` of a ``for``, ``test`` of a
    ``while``) is evaluated once (``for``) or is the loop condition
    itself, not per-iteration body work.
    """
    child: ast.AST = node
    parent = parent_of(child)
    while parent is not None:
        if isinstance(parent, _LOOPS):
            for stmt in (*parent.body, *parent.orelse):
                if stmt is child:
                    return True
        child, parent = parent, parent_of(parent)
    return False


class PopZeroInLoopRule(Rule):
    """Flag ``.pop(0)`` inside loop bodies in the simulator packages."""

    code = "P501"
    name = "pop-zero-in-loop"
    description = ".pop(0) inside a loop body in repro.core/repro.sim"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_hot_path(ctx):
            return
        for node in ctx.walk():
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "pop"
                    and len(node.args) == 1
                    and not node.keywords
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value == 0):
                continue
            if _in_loop_body(node):
                yield self.finding(
                    ctx, node,
                    ".pop(0) shifts the whole list on every call; use "
                    "collections.deque with popleft() for O(1) head "
                    "removal",
                )


class ListCopyInLoopRule(Rule):
    """Flag ``list(container)`` copies inside loop bodies there."""

    code = "P502"
    name = "list-copy-in-loop"
    description = "list(...) container copy inside a loop body in repro.core/repro.sim"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_hot_path(ctx):
            return
        for node in ctx.walk():
            # Only list(name) / list(obj.attr): a copy of an existing
            # container.  list(map(...)) etc. builds a new sequence and
            # is not a redundant snapshot.
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "list"
                    and len(node.args) == 1
                    and not node.keywords
                    and isinstance(node.args[0], (ast.Name, ast.Attribute))):
                continue
            if _in_loop_body(node):
                yield self.finding(
                    ctx, node,
                    "list(...) copies the container on every iteration; "
                    "hoist the snapshot out of the loop or iterate the "
                    "container directly",
                )


PERF_RULES = [PopZeroInLoopRule(), ListCopyInLoopRule()]
