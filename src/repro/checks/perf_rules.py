"""Performance lint rules (family ``P``).

The fast-path work in :mod:`repro.core` exists because a handful of
accidentally-quadratic idioms dominated the epoch loop's profile:
``list.pop(0)`` shifting every element on each call, and fresh
``list(...)`` snapshots of containers taken inside per-epoch loops.
These rules keep those idioms from creeping back into the simulator's
hot packages (``repro.core``, ``repro.sim``):

* ``P501 pop-zero-in-loop`` — ``something.pop(0)`` inside a loop body;
  a :class:`collections.deque` with ``popleft()`` is O(1).
* ``P502 list-copy-in-loop`` — ``list(name)`` / ``list(obj.attr)``
  inside a loop body; hoist the snapshot out of the loop or iterate
  the container directly.
* ``P503 invariant-mapping-in-loop`` — a dict/set comprehension (or
  ``dict(name)``/``set(name)`` copy) inside a loop body whose free
  names the loop never rebinds or mutates: the mapping is rebuilt
  identically on every iteration.  This is the shape the fluid
  simulator's event loop used to have — per-resource membership dicts
  reconstructed from the full flow list on every event — before the
  incremental engine made that state persistent.

The rules look only at loop *bodies* (and ``else`` clauses): a
``for x in list(d):`` header at function top level is the standard
snapshot-before-mutation idiom and is evaluated once, so it does not
fire.  Presentation layers and tests are out of scope, as with the
``O4xx`` family.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.checks.engine import FileContext, Finding, Rule, parent_of

__all__ = [
    "PopZeroInLoopRule",
    "ListCopyInLoopRule",
    "InvariantMappingInLoopRule",
    "PERF_RULES",
]

#: Dotted-module prefixes where simulator hot paths live.
_HOT_PACKAGES = ("repro.core", "repro.sim")

_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _in_hot_path(ctx: FileContext) -> bool:
    module = ctx.module_dotted()
    return any(
        module == package or module.startswith(package + ".")
        for package in _HOT_PACKAGES
    )


def _in_loop_body(node: ast.AST) -> bool:
    """True when ``node`` sits in the body of some enclosing loop.

    Climbs the ``_lint_parent`` chain; at each enclosing loop, the node
    counts only if the chain enters through ``body``/``orelse`` — an
    expression in a loop *header* (``iter`` of a ``for``, ``test`` of a
    ``while``) is evaluated once (``for``) or is the loop condition
    itself, not per-iteration body work.
    """
    child: ast.AST = node
    parent = parent_of(child)
    while parent is not None:
        if isinstance(parent, _LOOPS):
            for stmt in (*parent.body, *parent.orelse):
                if stmt is child:
                    return True
        child, parent = parent, parent_of(parent)
    return False


class PopZeroInLoopRule(Rule):
    """Flag ``.pop(0)`` inside loop bodies in the simulator packages."""

    code = "P501"
    name = "pop-zero-in-loop"
    description = ".pop(0) inside a loop body in repro.core/repro.sim"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_hot_path(ctx):
            return
        for node in ctx.walk():
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "pop"
                    and len(node.args) == 1
                    and not node.keywords
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value == 0):
                continue
            if _in_loop_body(node):
                yield self.finding(
                    ctx, node,
                    ".pop(0) shifts the whole list on every call; use "
                    "collections.deque with popleft() for O(1) head "
                    "removal",
                )


class ListCopyInLoopRule(Rule):
    """Flag ``list(container)`` copies inside loop bodies there."""

    code = "P502"
    name = "list-copy-in-loop"
    description = "list(...) container copy inside a loop body in repro.core/repro.sim"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_hot_path(ctx):
            return
        for node in ctx.walk():
            # Only list(name) / list(obj.attr): a copy of an existing
            # container.  list(map(...)) etc. builds a new sequence and
            # is not a redundant snapshot.
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "list"
                    and len(node.args) == 1
                    and not node.keywords
                    and isinstance(node.args[0], (ast.Name, ast.Attribute))):
                continue
            if _in_loop_body(node):
                yield self.finding(
                    ctx, node,
                    "list(...) copies the container on every iteration; "
                    "hoist the snapshot out of the loop or iterate the "
                    "container directly",
                )


def _comprehension_free_names(node: ast.AST) -> set:
    """Names a comprehension reads from its enclosing scope.

    Every ``Name`` loaded inside the node, minus the comprehension's
    own targets (which are local to it).
    """
    bound = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.comprehension):
            for target in ast.walk(sub.target):
                if isinstance(target, ast.Name):
                    bound.add(target.id)
    free = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            if sub.id not in bound:
                free.add(sub.id)
    return free


def _names_touched_by_loop(loop: ast.AST) -> set:
    """Names the loop may rebind or mutate on some iteration.

    Conservative: a name counts as touched when it is an assignment /
    ``for`` / ``with`` / walrus target, augmented-assigned, deleted,
    stored through (``name.attr = ...``, ``name[k] = ...``), or the
    receiver of any method call (``name.update(...)`` — we cannot tell
    mutators from readers, so any method call disqualifies).
    """
    touched = set()

    def roots_of(target: ast.AST) -> Iterator[str]:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                yield sub.id

    for sub in ast.walk(loop):
        if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (sub.targets if isinstance(sub, ast.Assign)
                       else [sub.target])
            for target in targets:
                touched.update(roots_of(target))
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            touched.update(roots_of(sub.target))
        elif isinstance(sub, ast.withitem) and sub.optional_vars:
            touched.update(roots_of(sub.optional_vars))
        elif isinstance(sub, ast.NamedExpr):
            touched.add(sub.target.id)
        elif isinstance(sub, ast.Delete):
            for target in sub.targets:
                touched.update(roots_of(target))
        elif (isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)):
            for root in roots_of(sub.func.value):
                touched.add(root)
    return touched


class InvariantMappingInLoopRule(Rule):
    """Flag loop-invariant dict/set rebuilds inside loop bodies."""

    code = "P503"
    name = "invariant-mapping-in-loop"
    description = ("loop-invariant dict/set rebuilt inside a loop body "
                   "in repro.core/repro.sim")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_hot_path(ctx):
            return
        for node in ctx.walk():
            if isinstance(node, (ast.DictComp, ast.SetComp)):
                free = _comprehension_free_names(node)
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in ("dict", "set")
                    and len(node.args) == 1
                    and not node.keywords
                    and isinstance(node.args[0],
                                   (ast.Name, ast.Attribute))):
                free = _comprehension_free_names(node.args[0])
            else:
                continue
            if not free:
                continue
            loop = self._enclosing_loop(node)
            if loop is None:
                continue
            if free & _names_touched_by_loop(loop):
                continue
            yield self.finding(
                ctx, node,
                "dict/set rebuilt from loop-invariant inputs on every "
                "iteration; hoist it above the loop or keep it as "
                "persistent state updated in place",
            )

    @staticmethod
    def _enclosing_loop(node: ast.AST) -> "Optional[ast.AST]":
        """Innermost loop whose body/else contains ``node``, if any."""
        child: ast.AST = node
        parent = parent_of(child)
        while parent is not None:
            if isinstance(parent, _LOOPS):
                for stmt in (*parent.body, *parent.orelse):
                    if stmt is child:
                        return parent
            child, parent = parent, parent_of(parent)
        return None


PERF_RULES = [PopZeroInLoopRule(), ListCopyInLoopRule(),
              InvariantMappingInLoopRule()]
