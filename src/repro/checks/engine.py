"""Core of the ``repro.checks`` static-analysis pass.

The simulator's correctness rests on invariants Python cannot enforce at
runtime without cost: SI base units everywhere (:mod:`repro.units`), a
contention-free cyclic schedule (paper §4.2), and bit-for-bit
reproducible benchmark sweeps.  This module provides the shared lint
machinery — :class:`Finding`, the :class:`Rule` protocol, per-file
parsing with parent links, ``# lint: ignore[rule]`` suppression, and the
file walker — on top of which the three rule families
(:mod:`repro.checks.units_rules`, :mod:`repro.checks.determinism_rules`,
:mod:`repro.checks.invariant_rules`) are built.

Everything here is stdlib-only (``ast``, ``tokenize``); the engine adds
no dependencies to the simulator.
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "Rule",
    "ProjectRule",
    "FileContext",
    "LintStats",
    "family_of_code",
    "rule_family",
    "iter_python_files",
    "parse_file",
    "clear_parse_cache",
    "run_checks",
    "check_source",
    "check_project_source",
    "format_text",
    "format_json",
    "format_sarif",
]


# --------------------------------------------------------------------------
# findings
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class Finding:
    """One lint finding: a rule violation at a source location."""

    rule: str      #: short code, e.g. ``U101``
    name: str      #: kebab-case rule name, e.g. ``unit-literal``
    path: str      #: posix-style path as given to the walker
    line: int      #: 1-based line number
    col: int       #: 0-based column
    message: str   #: human-readable description of the violation
    snippet: str = ""  #: stripped source line, for fingerprints/reports

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline.

        Keyed on (path, rule, normalized source line) so unrelated edits
        that shift line numbers do not invalidate baseline entries.
        """
        normalized = re.sub(r"\s+", " ", self.snippet.strip())
        return f"{self.path}::{self.rule}::{normalized}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule} [{self.name}] {self.message}")


# --------------------------------------------------------------------------
# rules
# --------------------------------------------------------------------------
class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`code`, :attr:`name` and :attr:`description`
    and implement :meth:`check`, yielding findings for one parsed file.
    Suppression and select/ignore filtering are handled by the engine —
    rules simply report everything they see.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.code,
            name=self.name,
            path=ctx.relpath,
            line=line,
            col=col,
            message=message,
            snippet=ctx.line(line),
        )


class ProjectRule(Rule):
    """Base class for whole-project (cross-file) rules.

    Unlike per-file :class:`Rule` subclasses, a project rule sees every
    parsed file at once through a ``repro.checks.flow.Project`` — symbol
    table, call graph and shared analyses — and may anchor findings in
    any file.  Suppression still works per anchoring line: a ``# lint:
    ignore[T701]`` next to the *source* suppresses an interprocedural
    finding whose sink lives in another file.

    Subclasses implement :meth:`check_project`; :meth:`check` is a
    no-op so a project rule can sit in the same registry list as the
    per-file rules.
    """

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        raise NotImplementedError


# --------------------------------------------------------------------------
# per-file context
# --------------------------------------------------------------------------
_IGNORE_RE = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s-]+)\])?"
)
_SKIP_FILE_RE = re.compile(r"#\s*lint:\s*skip-file\b")


@dataclass
class FileContext:
    """A parsed source file plus everything rules need to inspect it."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    #: line -> set of suppressed rule identifiers ("*" = all rules)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    skip_file: bool = False
    #: Per-file scratch space for rule families (cached walks, alias
    #: maps); lives as long as the context, so project rules see the
    #: same cache the per-file pass filled.
    memo: Dict[object, object] = field(default_factory=dict)

    def walk(self) -> Tuple[ast.AST, ...]:
        """Every AST node of the file, cached after the first traversal.

        ``ast.walk`` over a whole module is the single most repeated
        operation across rule families; sharing one flattened traversal
        between the per-file pass and the project-rule passes keeps the
        full-repo lint time flat as families are added.
        """
        nodes = self.memo.get("ast-walk")
        if nodes is None:
            nodes = tuple(ast.walk(self.tree))
            self.memo["ast-walk"] = nodes
        return nodes  # type: ignore[return-value]

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].rstrip("\n")
        return ""

    def is_suppressed(self, finding: Finding) -> bool:
        """True when a ``# lint: ignore`` comment covers ``finding``.

        A suppression comment applies to its own line, and — when it is
        a standalone comment line — to the next code line as well.
        """
        for lineno in (finding.line,):
            rules = self.suppressions.get(lineno)
            if rules and ("*" in rules
                          or finding.rule in rules
                          or finding.name in rules):
                return True
        return False

    def module_dotted(self) -> str:
        """Best-effort dotted module path (``repro.core.rack``)."""
        parts = Path(self.relpath).with_suffix("").parts
        if "repro" in parts:
            parts = parts[parts.index("repro"):]
        return ".".join(parts)


def _collect_suppressions(source: str) -> Tuple[Dict[int, Set[str]], bool]:
    """Map line numbers to suppressed rule sets from lint comments.

    Standalone ``# lint: ignore[...]`` comment lines also cover the next
    non-blank line, so suppressions can precede long statements.
    """
    suppressions: Dict[int, Set[str]] = {}
    skip_file = False
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions, skip_file
    lines = source.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        if _SKIP_FILE_RE.search(tok.string):
            skip_file = True
            continue
        match = _IGNORE_RE.search(tok.string)
        if not match:
            continue
        listed = match.group("rules")
        rules = ({"*"} if listed is None else
                 {part.strip() for part in listed.split(",") if part.strip()})
        lineno = tok.start[0]
        targets = [lineno]
        # A comment-only line extends its suppression to the next code line.
        stripped = lines[lineno - 1].strip() if lineno <= len(lines) else ""
        if stripped.startswith("#"):
            for nxt in range(lineno + 1, len(lines) + 1):
                if lines[nxt - 1].strip():
                    targets.append(nxt)
                    break
        for target in targets:
            suppressions.setdefault(target, set()).update(rules)
    return suppressions, skip_file


def attach_parents(tree: ast.AST) -> None:
    """Annotate every node with a ``_lint_parent`` backlink."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._lint_parent = parent  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_lint_parent", None)


def _relative_to_root(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


#: (resolved path, root) -> (stat signature, parsed context).  Parsing
#: plus parent-link annotation dominates cold lint time; repeated
#: ``run_checks`` calls in one process (the self-check suite, ``--stats``
#: timing runs, editor integrations) reuse the cached context as long as
#: the file is unchanged on disk.  Rules must treat trees as read-only —
#: the cache hands the same AST to every pass.
_PARSE_CACHE: Dict[Tuple[str, Optional[str]], Tuple[Tuple[int, int],
                                                    FileContext]] = {}


def clear_parse_cache() -> None:
    """Drop every cached :class:`FileContext` (test isolation hook)."""
    _PARSE_CACHE.clear()


def parse_file(path: Path, root: Optional[Path] = None) -> Optional[FileContext]:
    """Parse ``path`` into a :class:`FileContext` (None on syntax error).

    Results are memoized on ``(path, root, mtime_ns, size)``: the
    per-file rule pass and every project-rule pass — plus later
    ``run_checks`` calls in the same process — share one parsed AST per
    unchanged file.
    """
    try:
        stat = path.stat()
    except OSError:
        return None
    key = (str(path.resolve()),
           str(root.resolve()) if root is not None else None)
    signature = (stat.st_mtime_ns, stat.st_size)
    cached = _PARSE_CACHE.get(key)
    if cached is not None and cached[0] == signature:
        return cached[1]
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return None
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        _PARSE_CACHE.pop(key, None)
        return None
    attach_parents(tree)
    relpath = _relative_to_root(path, root)
    suppressions, skip_file = _collect_suppressions(source)
    ctx = FileContext(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        suppressions=suppressions,
        skip_file=skip_file,
    )
    _PARSE_CACHE[key] = (signature, ctx)
    return ctx


# --------------------------------------------------------------------------
# walking and running
# --------------------------------------------------------------------------
def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (files or directories), sorted."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen and "__pycache__" not in candidate.parts:
                seen.add(resolved)
                yield candidate


#: A family identifier: letters, optionally followed by leading digits
#: of a code — ``U``, ``F6``, ``T70`` — but never a rule *name*.
_FAMILY_RE = re.compile(r"^[A-Za-z]+\d*$")

#: Code = family + two-digit rule index (``U101`` = ``U1`` + ``01``,
#: ``B1001`` = ``B10`` + ``01``).
_CODE_RE = re.compile(r"^([A-Za-z]+\d*?)\d{2}$")


def family_of_code(code: str) -> str:
    """The family a rule code belongs to (``B1001`` → ``B10``)."""
    match = _CODE_RE.match(code)
    return match.group(1) if match else code


def rule_family(rule: Rule) -> str:
    """A rule's family identifier: explicit ``family`` attr, else derived."""
    explicit = getattr(rule, "family", "")
    return explicit if explicit else family_of_code(rule.code)


def _rule_matches(rule: Rule, identifiers: Set[str],
                  families: Set[str]) -> bool:
    """True when ``identifiers`` names this rule by code, name or family.

    Family matching is longest-prefix and unambiguous across
    mixed-length families: an identifier that *is* a registered family
    (``C9``, ``B10``) matches exactly that family — it never spills
    into a longer family that happens to share the prefix (``C9`` does
    not swallow a ``C90x`` family, ``B1`` does not alias ``B10`` once a
    ``B1xx`` family exists).  An identifier that is not a registered
    family falls back to plain code-prefix matching, so ``B`` selects
    every B-family rule and ``T70`` narrows within ``T7xx``.
    """
    if {rule.code, rule.name} & identifiers:
        return True
    family = rule_family(rule)
    for ident in identifiers:
        if not ident or not _FAMILY_RE.match(ident):
            continue
        if ident in families:
            if family == ident:
                return True
            continue
        if rule.code.startswith(ident):
            return True
    return False


def filter_rules(rules: Sequence[Rule],
                 select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None) -> List[Rule]:
    """Apply ``--select`` / ``--ignore`` identifier sets to ``rules``.

    The registered family set is derived from the *full* rule list, so
    family-identifier matching stays unambiguous even when a select has
    already narrowed the active rules.
    """
    families = {rule_family(rule) for rule in rules}
    active = list(rules)
    if select:
        wanted = {ident.strip() for ident in select if ident.strip()}
        active = [rule for rule in active
                  if _rule_matches(rule, wanted, families)]
    if ignore:
        unwanted = {ident.strip() for ident in ignore if ident.strip()}
        active = [rule for rule in active
                  if not _rule_matches(rule, unwanted, families)]
    return active


@dataclass
class LintStats:
    """Wall-time and finding-count accounting for one lint run.

    Filled by :func:`run_checks` when a ``stats`` instance is passed in;
    rendered by ``sirius-lint --stats`` so per-pass lint-time
    regressions show up in CI logs instead of only in the aggregate.
    """

    files: int = 0
    parse_s: float = 0.0
    file_pass_s: float = 0.0
    project_pass_s: float = 0.0
    #: family identifier -> surviving finding count
    findings_per_family: Dict[str, int] = field(default_factory=dict)
    #: family identifier -> wall time spent in that family's rules
    #: (both passes; parse time is shared and reported separately)
    family_s: Dict[str, float] = field(default_factory=dict)
    total_findings: int = 0

    @property
    def total_s(self) -> float:
        return self.parse_s + self.file_pass_s + self.project_pass_s

    def count(self, findings: Iterable[Finding]) -> None:
        for finding in findings:
            family = family_of_code(finding.rule)
            self.findings_per_family[family] = (
                self.findings_per_family.get(family, 0) + 1)
            self.total_findings += 1

    def charge(self, rule: "Rule", seconds: float) -> None:
        family = rule_family(rule)
        self.family_s[family] = self.family_s.get(family, 0.0) + seconds

    def as_dict(self) -> Dict[str, object]:
        """Machine-readable view (``sirius-lint --stats-json``)."""
        family_order = sorted(set(self.findings_per_family)
                              | set(self.family_s))
        return {
            "files": self.files,
            "passes_s": {
                "parse": round(self.parse_s, 6),
                "file_rules": round(self.file_pass_s, 6),
                "project_rules": round(self.project_pass_s, 6),
                "total": round(self.total_s, 6),
            },
            "families": {
                family: {
                    "findings": self.findings_per_family.get(family, 0),
                    "rule_s": round(self.family_s.get(family, 0.0), 6),
                }
                for family in family_order
            },
            "total_findings": self.total_findings,
        }

    def render(self) -> str:
        lines = [
            "lint stats:",
            f"  files parsed        {self.files}",
            f"  parse pass          {self.parse_s:.2f}s",
            f"  per-file rule pass  {self.file_pass_s:.2f}s",
            f"  project rule pass   {self.project_pass_s:.2f}s",
            f"  total               {self.total_s:.2f}s",
            f"  findings            {self.total_findings}",
        ]
        for family in sorted(set(self.findings_per_family)
                             | set(self.family_s)):
            count = self.findings_per_family.get(family, 0)
            spent = self.family_s.get(family, 0.0)
            lines.append(f"    {family + 'xx':<8}{count:<6}{spent:.2f}s")
        return "\n".join(lines)


def _parse_failure(path: Path, root: Optional[Path]) -> Optional[Finding]:
    """A synthetic ``E001 parse-error`` finding for an unparseable file.

    A file the lint cannot parse must not read as "clean" — it gets a
    finding anchored at the syntax error instead.  Unreadable files
    (binary, permission errors) are still skipped: they are not source.
    """
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return None
    try:
        ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        lines = source.splitlines()
        line = exc.lineno or 1
        return Finding(
            rule="E001",
            name="parse-error",
            path=_relative_to_root(path, root),
            line=line,
            col=max((exc.offset or 1) - 1, 0),
            message=f"file could not be parsed: {exc.msg}",
            snippet=lines[line - 1].strip() if 0 < line <= len(lines) else "",
        )
    return None


def _run_project_rules(contexts: Sequence[FileContext],
                       rules: Sequence["ProjectRule"],
                       stats: Optional[LintStats] = None) -> List[Finding]:
    """Build one ``flow.Project`` over ``contexts`` and run ``rules``.

    Suppressions apply at each finding's anchoring file/line, so a
    cross-file flow finding is silenced where it is reported.
    """
    if not rules or not contexts:
        return []
    # Imported here: flow builds on this module's FileContext/Rule.
    from repro.checks.flow.project import Project

    project = Project(contexts)
    by_path = {ctx.relpath: ctx for ctx in contexts}
    findings: List[Finding] = []
    for rule in rules:
        started = time.perf_counter()
        for finding in rule.check_project(project):
            ctx = by_path.get(finding.path)
            if ctx is None or not ctx.is_suppressed(finding):
                findings.append(finding)
        if stats is not None:
            stats.charge(rule, time.perf_counter() - started)
    return findings


def run_checks(paths: Sequence[Path], rules: Sequence[Rule],
               root: Optional[Path] = None,
               stats: Optional[LintStats] = None) -> List[Finding]:
    """Run ``rules`` over every Python file under ``paths``.

    Per-file rules run file by file; :class:`ProjectRule` instances run
    once over a project built from every file that parsed (so the call
    graph spans all configured paths) — the parsed ASTs are shared
    between the two passes, and cached across runs by
    :func:`parse_file`.  Returns surviving findings (suppressions
    already applied), sorted by location for stable output.  Files that
    fail to parse contribute an ``E001 parse-error`` finding regardless
    of rule selection.  Pass a :class:`LintStats` to collect per-pass
    wall times and per-family finding counts.
    """
    file_rules = [rule for rule in rules
                  if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in rules
                     if isinstance(rule, ProjectRule)]
    findings: List[Finding] = []
    contexts: List[FileContext] = []
    for file_path in iter_python_files(paths):
        started = time.perf_counter()
        ctx = parse_file(file_path, root=root)
        if stats is not None:
            stats.parse_s += time.perf_counter() - started
            stats.files += 1
        if ctx is None:
            failure = _parse_failure(file_path, root)
            if failure is not None:
                findings.append(failure)
            continue
        if ctx.skip_file:
            continue
        contexts.append(ctx)
        started = time.perf_counter()
        for rule in file_rules:
            rule_started = time.perf_counter()
            for finding in rule.check(ctx):
                if not ctx.is_suppressed(finding):
                    findings.append(finding)
            if stats is not None:
                stats.charge(rule, time.perf_counter() - rule_started)
        if stats is not None:
            stats.file_pass_s += time.perf_counter() - started
    started = time.perf_counter()
    findings.extend(_run_project_rules(contexts, project_rules, stats=stats))
    if stats is not None:
        stats.project_pass_s += time.perf_counter() - started
        stats.count(findings)
    findings.sort(key=Finding.sort_key)
    return findings


def _context_from_source(source: str, relpath: str) -> FileContext:
    tree = ast.parse(source)
    attach_parents(tree)
    suppressions, skip_file = _collect_suppressions(source)
    return FileContext(
        path=Path(relpath),
        relpath=relpath,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        suppressions=suppressions,
        skip_file=skip_file,
    )


def check_source(source: str, rules: Sequence[Rule],
                 relpath: str = "<string>") -> List[Finding]:
    """Lint a source string — the primary hook for fixture tests.

    :class:`ProjectRule` instances run over a one-file project; use
    :func:`check_project_source` when a fixture needs several files.
    """
    return check_project_source({relpath: source}, rules)


def check_project_source(files: Dict[str, str],
                         rules: Sequence[Rule]) -> List[Finding]:
    """Lint a relpath → source mapping as one project.

    The multi-file twin of :func:`check_source`: every file is parsed
    into the same project, so cross-module flow rules see imports and
    call edges between fixture files.  Dotted module names derive from
    the relpaths (``src/repro/core/x.py`` → ``repro.core.x``), so
    fixtures should use realistic paths when resolution matters.
    """
    contexts = [_context_from_source(source, relpath)
                for relpath, source in files.items()]
    active = [ctx for ctx in contexts if not ctx.skip_file]
    findings: List[Finding] = []
    for ctx in active:
        for rule in rules:
            if isinstance(rule, ProjectRule):
                continue
            for finding in rule.check(ctx):
                if not ctx.is_suppressed(finding):
                    findings.append(finding)
    findings.extend(_run_project_rules(
        active, [rule for rule in rules if isinstance(rule, ProjectRule)]))
    findings.sort(key=Finding.sort_key)
    return findings


# --------------------------------------------------------------------------
# output formatting
# --------------------------------------------------------------------------
def format_text(findings: Sequence[Finding]) -> str:
    if not findings:
        return "no findings"
    lines = [finding.render() for finding in findings]
    lines.append(f"{len(findings)} finding{'s' if len(findings) != 1 else ''}")
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    import json

    return json.dumps(
        {"findings": [finding.to_dict() for finding in findings],
         "count": len(findings)},
        indent=2,
        sort_keys=True,
    )


def format_sarif(findings: Sequence[Finding],
                 rules: Sequence[Rule] = ()) -> str:
    """Minimal SARIF 2.1.0 log, consumable by code-scanning uploaders.

    One run, one ``sirius-lint`` driver; each finding becomes a result
    with the baseline fingerprint under ``partialFingerprints`` so
    SARIF consumers track findings across line-number churn the same
    way the committed baseline does.
    """
    import json

    described = {rule.code: rule for rule in rules}
    seen_codes = sorted({finding.rule for finding in findings})
    sarif_rules = []
    for code in seen_codes:
        entry: Dict[str, object] = {"id": code}
        rule = described.get(code)
        if rule is not None:
            entry["name"] = rule.name
            entry["shortDescription"] = {"text": rule.description}
        sarif_rules.append(entry)
    results = [
        {
            "ruleId": finding.rule,
            "level": "warning",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                },
            }],
            "partialFingerprints": {
                "siriusLint/v1": finding.fingerprint,
            },
        }
        for finding in findings
    ]
    log = {
        "version": "2.1.0",
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "runs": [{
            "tool": {"driver": {
                "name": "sirius-lint",
                "informationUri": "https://example.invalid/sirius-repro",
                "rules": sarif_rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True)
