"""Determinism lint rules (family ``D``).

The Fig 9–13 benchmark sweeps must be bit-for-bit reproducible across
runs: every random draw has to come from an explicitly seeded generator
that is threaded through the simulation (the ``phy/pam4.py`` /
``optics/soa.py`` pattern).  These rules catch the three ways hidden
nondeterminism slips in:

* ``D201 global-rng`` — sampling from the module-level ``random.*`` or
  ``np.random.*`` globals, whose state is shared and unseeded;
* ``D202 unseeded-rng`` — constructing ``random.Random()`` /
  ``np.random.default_rng()`` / ``np.random.RandomState()`` without a
  seed or with a literal ``None`` seed (or any ``random.SystemRandom``,
  which cannot be seeded at all);
* ``D203 set-iteration`` — iterating a ``set`` whose order depends on
  ``PYTHONHASHSEED``; wrap in ``sorted(...)`` before feeding
  simulation state.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.checks.engine import FileContext, Finding, Rule

__all__ = [
    "GlobalRngRule",
    "UnseededRngRule",
    "SetIterationRule",
    "DETERMINISM_RULES",
]

#: ``random`` module functions that draw from (or reseed) global state.
_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "getrandbits", "choice", "choices",
    "shuffle", "sample", "uniform", "triangular", "gauss", "normalvariate",
    "lognormvariate", "expovariate", "betavariate", "gammavariate",
    "paretovariate", "vonmisesvariate", "weibullvariate", "binomialvariate",
    "seed", "setstate", "getstate", "randbytes",
})

#: ``numpy.random`` legacy global-state functions — the full sampling
#: surface of the implicit global ``RandomState``, not just the common
#: draws: any of these silently couples a simulation to shared state.
_NP_RANDOM_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "permuted", "normal",
    "uniform", "poisson", "exponential", "pareto", "binomial", "seed",
    "standard_normal", "bytes", "beta", "chisquare", "dirichlet", "f",
    "gamma", "geometric", "gumbel", "hypergeometric", "laplace",
    "logistic", "lognormal", "logseries", "multinomial",
    "multivariate_normal", "negative_binomial", "noncentral_chisquare",
    "noncentral_f", "power", "random_integers", "rayleigh",
    "standard_cauchy", "standard_exponential", "standard_gamma",
    "standard_t", "triangular", "vonmises", "wald", "weibull", "zipf",
    "get_state", "set_state",
})


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local alias -> canonical module for imports the rules care about."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name in ("random", "numpy", "numpy.random"):
                    aliases[item.asname or item.name.split(".")[0]] = item.name
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for item in node.names:
                    if item.name == "random":
                        aliases[item.asname or "random"] = "numpy.random"
            elif node.module == "numpy.random":
                for item in node.names:
                    if item.name in ("default_rng", "RandomState"):
                        aliases[item.asname or item.name] = item.name
    return aliases


def _aliases_for(ctx: FileContext) -> Dict[str, str]:
    """RNG-relevant import aliases for a file, memoized on the context."""
    aliases = ctx.memo.get("rng-aliases")
    if aliases is None:
        aliases = _import_aliases(ctx.tree)
        ctx.memo["rng-aliases"] = aliases
    return aliases  # type: ignore[return-value]


def _global_rng_target(node: ast.Call,
                       aliases: Dict[str, str]) -> Optional[str]:
    """Dotted name of a global-RNG call, or None."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    owner = func.value
    # random.<fn>(...) via "import random [as r]"
    if isinstance(owner, ast.Name):
        module = aliases.get(owner.id)
        if module == "random" and func.attr in _RANDOM_FNS:
            return f"random.{func.attr}"
        if module == "numpy.random" and func.attr in _NP_RANDOM_FNS:
            return f"numpy.random.{func.attr}"
    # np.random.<fn>(...) via "import numpy [as np]"
    if (isinstance(owner, ast.Attribute) and owner.attr == "random"
            and isinstance(owner.value, ast.Name)
            and aliases.get(owner.value.id, "").startswith("numpy")
            and func.attr in _NP_RANDOM_FNS):
        return f"numpy.random.{func.attr}"
    return None


class GlobalRngRule(Rule):
    """Flag draws from the shared module-level RNG."""

    code = "D201"
    name = "global-rng"
    description = "call samples the module-level random/np.random global state"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = _aliases_for(ctx)
        if not aliases:
            return
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            target = _global_rng_target(node, aliases)
            if target is not None:
                yield self.finding(
                    ctx, node,
                    f"{target}() draws from the global RNG; inject a seeded "
                    "random.Random/np.random.default_rng instead",
                )


class UnseededRngRule(Rule):
    """Flag RNG construction that produces run-to-run different streams."""

    code = "D202"
    name = "unseeded-rng"
    description = "RNG constructed without an explicit seed"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = _aliases_for(ctx)
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            ctor = self._rng_constructor(node, aliases)
            if ctor is None:
                continue
            if ctor == "random.SystemRandom":
                yield self.finding(
                    ctx, node,
                    "SystemRandom is entropy-backed and can never be seeded; "
                    "simulations must use random.Random(seed)",
                )
            elif self._lacks_seed(node):
                yield self.finding(
                    ctx, node,
                    f"{ctor} without a seed gives a different stream every "
                    "run; pass an explicit seed",
                )

    @staticmethod
    def _lacks_seed(node: ast.Call) -> bool:
        """True when the constructor call pins no seed.

        A literal ``None`` seed — positional or ``seed=None`` — is the
        no-argument case spelled out: numpy treats it as "pull entropy
        from the OS", so it is flagged the same way.
        """
        if not node.args and not node.keywords:
            return True
        if node.args:
            first = node.args[0]
            return isinstance(first, ast.Constant) and first.value is None
        for keyword in node.keywords:
            if keyword.arg == "seed":
                return (isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is None)
        return False

    @staticmethod
    def _rng_constructor(node: ast.Call,
                         aliases: Dict[str, str]) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module = aliases.get(func.value.id)
            if module == "random" and func.attr in ("Random", "SystemRandom"):
                return f"random.{func.attr}"
            if (module == "numpy.random"
                    and func.attr in ("default_rng", "RandomState")):
                return f"numpy.random.{func.attr}"
        if (isinstance(func, ast.Attribute)
                and func.attr in ("default_rng", "RandomState")
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and aliases.get(func.value.value.id, "").startswith("numpy")):
            return f"numpy.random.{func.attr}"
        if (isinstance(func, ast.Name)
                and aliases.get(func.id) in ("default_rng", "RandomState")):
            return f"numpy.random.{aliases[func.id]}"
        return None


class SetIterationRule(Rule):
    """Flag iteration over sets, whose order follows ``PYTHONHASHSEED``.

    Iterating a set into simulation state (queue service order, node
    visit order, …) silently breaks reproducibility.  ``sorted(...)``
    around the set is the fix and is recognized as such (the iterable is
    then a ``sorted`` call, not a set expression).
    """

    code = "D203"
    name = "set-iteration"
    description = "iteration over a set has hash-seed-dependent order"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        set_names = self._set_bound_names(ctx.tree)
        for node in ctx.walk():
            iterables = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iterables.extend(gen.iter for gen in node.generators)
            for iterable in iterables:
                reason = self._set_expression(iterable, set_names)
                if reason is not None:
                    yield self.finding(
                        ctx, iterable,
                        f"iterating {reason} has PYTHONHASHSEED-dependent "
                        "order; wrap in sorted(...) before it feeds "
                        "simulation state",
                    )

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")):
            return True
        if (isinstance(node, ast.BinOp)
                and isinstance(node.op, (ast.BitAnd, ast.BitOr, ast.Sub,
                                         ast.BitXor))):
            # set algebra keeps set-ness; either side proves it
            return (SetIterationRule._is_set_expr(node.left)
                    or SetIterationRule._is_set_expr(node.right))
        return False

    @classmethod
    def _set_bound_names(cls, tree: ast.Module) -> Set[str]:
        """Names assigned a set expression anywhere in the file."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and cls._is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif (isinstance(node, ast.AnnAssign) and node.value is not None
                  and isinstance(node.target, ast.Name)
                  and cls._is_set_expr(node.value)):
                names.add(node.target.id)
        return names

    @classmethod
    def _set_expression(cls, node: ast.AST,
                        set_names: Set[str]) -> Optional[str]:
        if cls._is_set_expr(node):
            return "a set expression"
        if isinstance(node, ast.Name) and node.id in set_names:
            return f"set-valued name {node.id!r}"
        return None


DETERMINISM_RULES = [GlobalRngRule(), UnseededRngRule(), SetIterationRule()]
