"""Async event-loop blocking rules (family ``B10``).

The service era puts epoch-loop simulations behind async endpoints.  A
single synchronous call inside a coroutine — or anywhere on a
coroutine's same-thread call path — stalls the event loop for every
other request.  These rules walk the call graph from each ``async def``
root, stopping at thread/process/executor boundary edges (work handed
to ``run_in_executor`` or ``asyncio.to_thread`` does *not* block the
loop), and flag what remains:

* ``B1001 blocking-call-in-async`` — a stdlib blocking primitive
  (``time.sleep``, file/socket I/O including DNS resolution,
  ``subprocess``/``os.system``) on a coroutine's synchronous call path;
* ``B1002 sim-run-in-async`` — a whole epoch-loop simulation or sweep
  (``SiriusNetwork.run``, ``FluidNetwork.run``,
  ``ParallelSweepRunner.map``/``map_stream``, the sweep job entry
  points) invoked synchronously from a coroutine —
  milliseconds-to-minutes of CPU the loop cannot preempt.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.checks.concurrency.boundaries import ConcurrencyAnalysis
from repro.checks.engine import Finding, ProjectRule
from repro.checks.flow.project import Project

__all__ = [
    "BlockingCallInAsyncRule",
    "SimRunInAsyncRule",
    "ASYNC_RULES",
]

#: Import-resolved dotted names that block the calling thread.
_BLOCKING_DOTTED = {
    "time.sleep": "time.sleep()",
    "os.system": "os.system()",
    "os.wait": "os.wait()",
    "socket.create_connection": "socket.create_connection()",
    "socket.getaddrinfo": "socket.getaddrinfo()",
    "socket.gethostbyname": "socket.gethostbyname()",
    "subprocess.run": "subprocess.run()",
    "subprocess.call": "subprocess.call()",
    "subprocess.check_call": "subprocess.check_call()",
    "subprocess.check_output": "subprocess.check_output()",
    "subprocess.getoutput": "subprocess.getoutput()",
    "subprocess.getstatusoutput": "subprocess.getstatusoutput()",
    "subprocess.Popen": "subprocess.Popen()",
    "urllib.request.urlopen": "urllib.request.urlopen()",
}

#: Method names that do synchronous file I/O on a Path/file receiver.
_BLOCKING_IO_ATTRS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})

#: Project qualname suffixes that are entire simulations or sweeps.
_SIM_SUFFIXES = (
    "SiriusNetwork.run",
    "FluidNetwork.run",
    "ParallelSweepRunner.map",
    "ParallelSweepRunner.map_stream",
    ".run_sirius_job",
    ".run_fluid_job",
)


def _blocking_label(call: ast.Call,
                    imports: Dict[str, str]) -> Optional[str]:
    """Human label when this call blocks the calling thread, else None."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "open()"
        dotted = imports.get(func.id)
        if dotted in _BLOCKING_DOTTED:
            return _BLOCKING_DOTTED[dotted]
        return None
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr in _BLOCKING_IO_ATTRS:
        return f"Path.{func.attr}()"
    if isinstance(func.value, ast.Name):
        base = imports.get(func.value.id)
        if base is not None:
            dotted = f"{base}.{func.attr}"
            if dotted in _BLOCKING_DOTTED:
                return _BLOCKING_DOTTED[dotted]
    return None


def _chain(project: Project, reached, qualname: str) -> str:
    path = project.call_path(reached, qualname)
    return " -> ".join(project.functions[q].short for q in path
                       if q in project.functions)


class BlockingCallInAsyncRule(ProjectRule):
    """Flag stdlib blocking primitives on a coroutine's sync call path."""

    code = "B1001"
    name = "blocking-call-in-async"
    description = ("blocking stdlib call on the synchronous call path "
                   "of an async def")

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = project.shared(ConcurrencyAnalysis)
        reported: Set[Tuple[str, int, int]] = set()
        for root in analysis.async_roots:
            reached = project.reachable_from([root], cross_boundaries=False)
            for qualname in sorted(reached):
                info = project.functions.get(qualname)
                if info is None:
                    continue
                imports = project.imports.get(info.module, {})
                for node in project._own_nodes(info):
                    if not isinstance(node, ast.Call):
                        continue
                    label = _blocking_label(node, imports)
                    if label is None:
                        continue
                    key = (qualname, node.lineno, node.col_offset)
                    if key in reported:
                        continue
                    reported.add(key)
                    where = ("directly" if qualname == root
                             else f"via {_chain(project, reached, qualname)}")
                    yield self.finding(
                        info.ctx, node,
                        f"{label} blocks the event loop inside async "
                        f"{project.functions[root].short} ({where}); await "
                        "an async equivalent or offload with "
                        "asyncio.to_thread / run_in_executor",
                    )


class SimRunInAsyncRule(ProjectRule):
    """Flag epoch-loop simulations invoked synchronously from a coroutine."""

    code = "B1002"
    name = "sim-run-in-async"
    description = ("epoch-loop simulation or sweep run synchronously "
                   "inside an async def")

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = project.shared(ConcurrencyAnalysis)
        reported: Set[Tuple[str, str]] = set()
        for root in analysis.async_roots:
            reached = project.reachable_from([root], cross_boundaries=False)
            for target in sorted(reached):
                if target == root or not _is_sim_entry(target):
                    continue
                caller, site = reached[target]
                if caller is None or site is None:
                    continue
                if (caller, target) in reported:
                    continue
                reported.add((caller, target))
                caller_info = project.functions[caller]
                yield self.finding(
                    caller_info.ctx, site,
                    f"{project.functions[target].short} is an epoch-loop "
                    "entry point; calling it synchronously inside async "
                    f"{project.functions[root].short} stalls the event loop "
                    "for its whole runtime — offload with "
                    "loop.run_in_executor (or asyncio.to_thread)",
                )


def _is_sim_entry(qualname: str) -> bool:
    return any(qualname.endswith(suffix) for suffix in _SIM_SUFFIXES)


ASYNC_RULES: List[ProjectRule] = [BlockingCallInAsyncRule(),
                                  SimRunInAsyncRule()]
