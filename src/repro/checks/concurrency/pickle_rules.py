"""Pickle-safety rules (family ``K11``) for sweep jobs and checkpoints.

Everything that crosses the :class:`ParallelSweepRunner` process
boundary rides through ``pickle``: the job dataclasses going out, the
:class:`SweepPoint` results coming back, and any future checkpoint
dataclasses written to disk.  An unpicklable field fails only at
runtime, deep inside ``multiprocessing``'s worker loop, with a
traceback that names neither the class nor the field.  These rules
prove the property statically instead:

* ``K1101 unpicklable-job-field`` — a dataclass field reachable from a
  worker-entry signature (or any ``*Checkpoint`` class) is annotated
  with a type pickle rejects — callables, generators, locks, open
  files, sockets — or carries a lambda default;
* ``K1102 unpicklable-callable-to-pool`` — a lambda or nested function
  is handed to a process pool (``pool.map`` surface,
  ``Process(target=...)``); pickle serializes functions by qualified
  name, so only module-level functions survive the trip.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.checks.engine import Finding, ProjectRule
from repro.checks.flow.project import ClassInfo, FunctionInfo, Project, \
    _POOL_MAP_ATTRS, _TARGET_CTORS

__all__ = [
    "UnpicklableJobFieldRule",
    "UnpicklableCallableToPoolRule",
    "PICKLE_RULES",
]

#: Import-resolved dotted annotation names pickle rejects.  Callables
#: and generators pickle by qualified name only (lambdas, closures and
#: live generators fail); locks, files and sockets are process-local
#: OS handles.
_UNPICKLABLE_DOTTED = frozenset({
    "typing.Callable", "collections.abc.Callable",
    "typing.Generator", "collections.abc.Generator",
    "typing.Iterator", "collections.abc.Iterator",
    "typing.AsyncIterator", "collections.abc.AsyncIterator",
    "typing.IO", "typing.TextIO", "typing.BinaryIO",
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "threading.Event", "threading.Thread",
    "multiprocessing.Lock", "multiprocessing.RLock",
    "multiprocessing.Condition", "multiprocessing.Semaphore",
    "multiprocessing.Queue", "multiprocessing.Pool",
    "socket.socket",
    "io.TextIOWrapper", "io.BufferedReader", "io.BufferedWriter",
    "io.IOBase",
})

#: Bare names treated as unpicklable when no import maps them elsewhere
#: (covers string annotations and ``from typing import Callable``).
_UNPICKLABLE_BARE = frozenset({
    name.rpartition(".")[2] for name in sorted(_UNPICKLABLE_DOTTED)
} - {"Queue", "Pool", "Thread", "Event", "socket"})

_REASONS = {
    "Callable": "pickle serializes callables by qualified name only "
                "(lambdas and bound closures fail)",
    "Generator": "live generators cannot be pickled",
    "Iterator": "live iterators generally cannot be pickled",
    "AsyncIterator": "live async iterators cannot be pickled",
}
_DEFAULT_REASON = "it is a process-local handle pickle rejects"


def _reason_for(leaf: str) -> str:
    return _REASONS.get(leaf.rpartition(".")[2], _DEFAULT_REASON)


class UnpicklableJobFieldRule(ProjectRule):
    """Prove every field of boundary-crossing dataclasses picklable."""

    code = "K1101"
    name = "unpicklable-job-field"
    description = ("dataclass field reachable from a worker-entry "
                   "signature has an unpicklable annotation or default")

    def check_project(self, project: Project) -> Iterator[Finding]:
        roots = self._root_classes(project)
        seen: Set[str] = set()
        queue = [(qualname, origin) for qualname, origin in sorted(roots)]
        while queue:
            qualname, origin = queue.pop(0)
            if qualname in seen:
                continue
            seen.add(qualname)
            cls = project.classes.get(qualname)
            if cls is None:
                continue
            info = self._class_ctx(project, cls)
            if info is None:
                continue
            ctx, imports = info
            for stmt in cls.node.body:
                if not (isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)):
                    continue
                field_name = stmt.target.id
                leaf = self._unpicklable_leaf(stmt.annotation, imports)
                if leaf is not None:
                    yield self.finding(
                        ctx, stmt,
                        f"field '{field_name}' of {cls.name} (crosses the "
                        f"process boundary via {origin}) is annotated "
                        f"{leaf}; {_reason_for(leaf)} — carry a description "
                        "(dotted name, config values) and rebuild in the "
                        "worker",
                    )
                lambda_default = self._lambda_default(stmt.value)
                if lambda_default is not None:
                    yield self.finding(
                        ctx, lambda_default,
                        f"field '{field_name}' of {cls.name} (crosses the "
                        f"process boundary via {origin}) defaults to a "
                        "lambda; lambdas cannot be pickled — use a "
                        "module-level function or default_factory",
                    )
                for nested in self._project_classes(stmt.annotation,
                                                    cls.module, project,
                                                    imports):
                    queue.append((nested, origin))

    # -- root discovery ------------------------------------------------------
    def _root_classes(self, project: Project,
                      ) -> Set[Tuple[str, str]]:
        """(class qualname, origin label) for boundary-crossing classes."""
        roots: Set[Tuple[str, str]] = set()
        for entry in sorted(project.worker_entries):
            info = project.functions.get(entry)
            if info is None:
                continue
            imports = project.imports.get(info.module, {})
            annotations = [a.annotation for a in
                           (*info.node.args.posonlyargs, *info.node.args.args,
                            *info.node.args.kwonlyargs)
                           if a.annotation is not None]
            if info.node.returns is not None:
                annotations.append(info.node.returns)
            for annotation in annotations:
                for qualname in self._project_classes(annotation,
                                                      info.module, project,
                                                      imports):
                    roots.add((qualname, info.short))
        for qualname, cls in project.classes.items():
            if cls.name.endswith("Checkpoint"):
                roots.add((qualname, f"checkpoint class {cls.name}"))
        return roots

    # -- helpers -------------------------------------------------------------
    @staticmethod
    def _class_ctx(project: Project, cls: ClassInfo):
        relpath = project.contexts_modules().get(cls.module)
        if relpath is None:
            return None
        ctx = project.contexts[relpath]
        return ctx, project.imports.get(cls.module, {})

    @staticmethod
    def _annotation_leaves(annotation: ast.AST,
                           ) -> Iterator[Tuple[str, Optional[str]]]:
        """(bare name, import alias base or None) for each named leaf.

        String annotations are re-parsed so quoted forward references
        participate too.
        """
        stack = [annotation]
        while stack:
            node = stack.pop()
            for leaf in ast.walk(node):
                if isinstance(leaf, ast.Constant) and isinstance(leaf.value,
                                                                 str):
                    try:
                        stack.append(ast.parse(leaf.value, mode="eval").body)
                    except SyntaxError:
                        pass
                elif isinstance(leaf, ast.Name):
                    yield leaf.id, None
                elif (isinstance(leaf, ast.Attribute)
                      and isinstance(leaf.value, ast.Name)):
                    yield leaf.attr, leaf.value.id

    def _unpicklable_leaf(self, annotation: ast.AST,
                          imports: Dict[str, str]) -> Optional[str]:
        for name, base in self._annotation_leaves(annotation):
            if base is not None:
                dotted = f"{imports.get(base, base)}.{name}"
                if dotted in _UNPICKLABLE_DOTTED:
                    return dotted
                continue
            target = imports.get(name)
            if target is not None:
                if target in _UNPICKLABLE_DOTTED:
                    return target
            elif name in _UNPICKLABLE_BARE:
                return name
        return None

    def _project_classes(self, annotation: ast.AST, module: str,
                         project: Project,
                         imports: Dict[str, str]) -> Iterator[str]:
        for name, base in self._annotation_leaves(annotation):
            if base is not None:
                dotted = f"{imports.get(base, base)}.{name}"
                if dotted in project.classes:
                    yield dotted
                continue
            own = f"{module}.{name}"
            if own in project.classes:
                yield own
                continue
            target = imports.get(name)
            if target is not None and target in project.classes:
                yield target

    @staticmethod
    def _lambda_default(value: Optional[ast.AST]) -> Optional[ast.AST]:
        if value is None:
            return None
        if isinstance(value, ast.Lambda):
            return value
        if (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
                and value.func.id == "field"):
            for keyword in value.keywords:
                if (keyword.arg == "default"
                        and isinstance(keyword.value, ast.Lambda)):
                    return keyword.value
        return None


class UnpicklableCallableToPoolRule(ProjectRule):
    """Flag lambdas/nested functions handed across a process boundary."""

    code = "K1102"
    name = "unpicklable-callable-to-pool"
    description = ("lambda or nested function passed to a process pool "
                   "cannot be pickled")

    def check_project(self, project: Project) -> Iterator[Finding]:
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            for node in project._own_nodes(info):
                if not isinstance(node, ast.Call):
                    continue
                for candidate, surface in self._process_candidates(
                        node, info, project):
                    yield from self._check_candidate(
                        candidate, surface, node, info, project)

    @staticmethod
    def _process_candidates(call: ast.Call, info: FunctionInfo,
                            project: Project,
                            ) -> Iterator[Tuple[ast.AST, str]]:
        func = call.func
        if (isinstance(func, ast.Attribute)
                and func.attr in _POOL_MAP_ATTRS and call.args):
            yield call.args[0], f".{func.attr}()"
        dotted = project._dotted_callable(func, info)
        if dotted is not None and _TARGET_CTORS.get(dotted) == "process":
            for keyword in call.keywords:
                if keyword.arg == "target":
                    yield keyword.value, "Process(target=...)"

    def _check_candidate(self, candidate: ast.AST, surface: str,
                         call: ast.Call, info: FunctionInfo,
                         project: Project) -> Iterator[Finding]:
        if isinstance(candidate, ast.Lambda):
            yield self.finding(
                info.ctx, call,
                f"lambda passed to {surface} runs in a worker process; "
                "pickle serializes functions by qualified name, so lambdas "
                "fail — use a module-level function",
            )
            return
        for target in project.resolve_func_ref(candidate, info):
            target_info = project.functions.get(target)
            if target_info is not None and target_info.parent is not None:
                yield self.finding(
                    info.ctx, call,
                    f"nested function {target_info.short} passed to "
                    f"{surface} runs in a worker process; functions defined "
                    "inside another function cannot be pickled — move it to "
                    "module level",
                )


PICKLE_RULES: List[ProjectRule] = [UnpicklableJobFieldRule(),
                                   UnpicklableCallableToPoolRule()]
