"""Concurrency/race rules (family ``C9``) for the sweep/service era.

:class:`~repro.perf.sweep.ParallelSweepRunner` keeps sweeps
deterministic *by construction* — jobs are pure descriptions, results
are compact values.  That construction is only safe while no mutable
state leaks across the ``multiprocessing`` boundary, which no runtime
test can see: a forked worker happily mutates its private copy of a
module global and every assertion in the worker passes.  These rules
audit the boundary statically, using the call graph's process-edge
annotations:

* ``C901 worker-writes-shared-state`` — a function in the worker
  closure mutates a module-level container that parent-side code also
  uses.  Worker writes never propagate back across the boundary, so
  the parent reads a stale (or forever-empty) structure.
* ``C902 fork-inherited-state`` — the worker closure uses module-level
  state whose *identity* matters: an RNG instance (each worker inherits
  the same stream under fork — parallel draws then depend on worker
  scheduling — and re-seeds from the OS under spawn), a ``repro.obs``
  recorder (counts split invisibly across processes), or a container
  the parent mutates after workers start (the worker sees a snapshot).
* ``C903 lock-discipline`` — ``lock.acquire()`` without a
  ``try/finally`` release on the very next statement, or the
  ``with lock.acquire():`` misuse (that guards a *bool*, not the
  lock).  Use ``with lock:``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.checks.concurrency.boundaries import ConcurrencyAnalysis
from repro.checks.engine import FileContext, Finding, ProjectRule, Rule, \
    parent_of
from repro.checks.flow.project import Project

__all__ = [
    "WorkerWritesSharedStateRule",
    "ForkInheritedStateRule",
    "LockDisciplineRule",
    "RACE_RULES",
]

_KIND_DESCRIPTIONS = {
    "rng": "RNG instance",
    "obs": "observability recorder",
    "container": "mutable container",
}


class WorkerWritesSharedStateRule(ProjectRule):
    """Flag worker-side writes to module state the parent also uses."""

    code = "C901"
    name = "worker-writes-shared-state"
    description = ("module-level mutable state written in a sweep worker "
                   "process but also used by the parent")

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = project.shared(ConcurrencyAnalysis)
        parent_users = {}
        for qualname, use in analysis.parent_uses():
            parent_users.setdefault(use.state, qualname)
        reported: Set[Tuple[str, Tuple[str, str]]] = set()
        for qualname, use in analysis.worker_uses():
            if not use.mutates or use.state not in parent_users:
                continue
            if (qualname, use.state) in reported:
                continue
            reported.add((qualname, use.state))
            state = analysis.globals[use.state]
            chain = " -> ".join(analysis.worker_chain(qualname))
            parent_fn = project.functions[parent_users[use.state]].short
            yield self.finding(
                project.functions[qualname].ctx, use.node,
                f"module-level '{state.name}' is mutated in a sweep worker "
                f"process (via {chain}) but {parent_fn} uses it in the "
                "parent; writes in a multiprocessing worker land in the "
                "worker's copy and never propagate back — return the data "
                "through the job result instead",
            )


class ForkInheritedStateRule(ProjectRule):
    """Flag worker-side use of state that does not survive fork/spawn."""

    code = "C902"
    name = "fork-inherited-state"
    description = ("worker process uses module-level RNG/recorder/cache "
                   "state inherited across the multiprocessing boundary")

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = project.shared(ConcurrencyAnalysis)
        parent_mutated = {use.state for _q, use in analysis.parent_uses()
                          if use.mutates}
        reported: Set[Tuple[str, Tuple[str, str]]] = set()
        for qualname, use in analysis.worker_uses():
            state = analysis.globals[use.state]
            if state.kind == "container":
                # Reading a parent-mutated cache in the worker sees a
                # start-time snapshot (fork) or a fresh import (spawn).
                if use.mutates or use.state not in parent_mutated:
                    continue
                detail = ("the parent mutates it after workers start, so "
                          "the worker reads a stale fork-time snapshot "
                          "(or a fresh copy under spawn)")
            else:
                detail = (
                    "every forked worker inherits the same stream, making "
                    "parallel draws depend on worker scheduling, and spawn "
                    "re-creates it from scratch; thread seeded per-job "
                    "state through the job description instead"
                    if state.kind == "rng" else
                    "each worker records into its own invisible copy; "
                    "aggregate through the job result instead")
            if (qualname, use.state) in reported:
                continue
            reported.add((qualname, use.state))
            chain = " -> ".join(analysis.worker_chain(qualname))
            yield self.finding(
                project.functions[qualname].ctx, use.node,
                f"module-level {_KIND_DESCRIPTIONS[state.kind]} "
                f"'{state.name}' is used inside a sweep worker (via "
                f"{chain}); {detail}",
            )


class LockDisciplineRule(Rule):
    """Flag ``.acquire()`` outside the with/try-finally discipline."""

    code = "C903"
    name = "lock-discipline"
    description = ("lock.acquire() without with-statement or try/finally "
                   "release discipline")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"):
                continue
            misuse = self._with_misuse(node)
            if misuse is not None:
                yield self.finding(
                    ctx, node,
                    "'with lock.acquire():' guards the acquire's boolean "
                    "result, not the lock, and never releases it; use "
                    "'with lock:'",
                )
                continue
            if not self._released_in_finally(node):
                yield self.finding(
                    ctx, node,
                    ".acquire() without a try/finally release leaks the "
                    "lock on any exception between acquire and release; "
                    "use 'with lock:' (or release in a finally block)",
                )

    @staticmethod
    def _with_misuse(node: ast.Call):
        parent = parent_of(node)
        if isinstance(parent, ast.withitem) and parent.context_expr is node:
            return parent
        return None

    @staticmethod
    def _released_in_finally(node: ast.Call) -> bool:
        """True when the acquire is directly followed by a try whose
        ``finally`` releases the same receiver (textually)."""
        receiver = ast.dump(node.func.value)
        stmt: Optional[ast.AST] = node
        while stmt is not None and not isinstance(stmt, ast.stmt):
            stmt = parent_of(stmt)
        # ``stmt`` is now the expression statement (or assignment)
        # containing the acquire; its parent owns the enclosing body.
        if stmt is None:
            return False
        holder = parent_of(stmt)
        if holder is None:
            return False
        for field_name in ("body", "orelse", "finalbody"):
            body = getattr(holder, field_name, None)
            if not isinstance(body, list) or stmt not in body:
                continue
            index = body.index(stmt)
            if index + 1 < len(body):
                nxt = body[index + 1]
                if isinstance(nxt, ast.Try) and _releases(nxt.finalbody,
                                                          receiver):
                    return True
            return False
        return False


def _releases(statements: List[ast.stmt], receiver: str) -> bool:
    for stmt in statements:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "release"
                    and ast.dump(node.func.value) == receiver):
                return True
    return False


RACE_RULES = [WorkerWritesSharedStateRule(), ForkInheritedStateRule(),
              LockDisciplineRule()]
