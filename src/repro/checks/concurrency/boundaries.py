"""Shared concurrency facts for one :class:`~repro.checks.flow.Project`.

The C9xx / B10xx / K11xx families all reason about the same few
structures, so they are computed once per lint run and fetched with
``project.shared(ConcurrencyAnalysis)``:

* **worker closure** — every function reachable from a process-boundary
  edge target (a ``ParallelSweepRunner`` / ``multiprocessing.Pool``
  worker entry point), *without* crossing further boundaries.  Code in
  this closure executes in a forked or spawned child.
* **module-level state index** — every module-level binding whose value
  is mutable (containers, RNG instances, ``repro.obs`` recorders), with
  per-function reference and mutation sites.  A binding shared across
  the process boundary is exactly the state the C9xx rules audit.
* **async roots** — every ``async def`` in the project, the starting
  points for the B10xx event-loop-blocking closure.

Names that follow the ``NULL_*`` / ``Null*`` sentinel convention are
exempt from the state index: the no-op registry/tracer singletons are
stateless by design, so sharing them across a fork is harmless.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.checks.engine import FileContext
from repro.checks.flow.project import FunctionInfo, Project

__all__ = [
    "ConcurrencyAnalysis",
    "GlobalState",
    "StateUse",
    "MUTATOR_METHODS",
]

#: Methods that mutate a container in place.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "appendleft", "extendleft",
    "popleft", "sort", "reverse",
})

#: Constructors that build a mutable container.
_CONTAINER_CTORS = frozenset({
    "dict", "list", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque",
})

#: Constructors that build a random-number generator whose *state*
#: advances on every draw — the canonical fork-unsafe object.
_RNG_CTORS = frozenset({
    "Random", "SystemRandom", "default_rng", "RandomState", "Generator",
})

#: ``repro.obs`` recorder types: registries and tracers accumulate
#: events in-process, so a module-level instance silently splits into
#: one copy per worker.
_OBS_CTORS = frozenset({
    "Observation", "MetricsRegistry", "EventTracer", "PhaseProfiler",
})


def _is_sentinel(name: str) -> bool:
    return name.startswith("__") or "NULL" in name.upper().split("_")


@dataclass(frozen=True)
class GlobalState:
    """One module-level mutable binding."""

    module: str
    name: str
    #: "container" | "rng" | "obs"
    kind: str
    node: ast.AST
    ctx: FileContext

    @property
    def key(self) -> Tuple[str, str]:
        return (self.module, self.name)

    @property
    def dotted(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass(frozen=True)
class StateUse:
    """One reference to a module-level binding inside a function."""

    state: Tuple[str, str]  # (module, name)
    node: ast.AST
    mutates: bool


class ConcurrencyAnalysis:
    """Worker closures plus the shared-state index for one project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: functions running in a pool worker (boundary-free closure
        #: from every process-edge target)
        self.worker_reach = project.reachable_from(
            sorted(project.worker_entries), cross_boundaries=False)
        self.worker_side: Set[str] = set(self.worker_reach)
        #: every ``async def`` qualname
        self.async_roots: List[str] = sorted(
            qualname for qualname, info in project.functions.items()
            if isinstance(info.node, ast.AsyncFunctionDef))
        #: (module, name) -> GlobalState
        self.globals: Dict[Tuple[str, str], GlobalState] = {}
        for ctx in project.contexts.values():
            for state in self._module_state(ctx):
                self.globals[state.key] = state
        #: function qualname -> uses of indexed module-level state
        self.uses: Dict[str, List[StateUse]] = {}
        if self.globals:
            for info in project.functions.values():
                uses = list(self._state_uses(info))
                if uses:
                    self.uses[info.qualname] = uses

    # -- module-level state --------------------------------------------------
    def _module_state(self, ctx: FileContext) -> Iterator[GlobalState]:
        module = ctx.module_dotted()
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            else:
                continue
            if not isinstance(target, ast.Name) or _is_sentinel(target.id):
                continue
            kind = self._classify(value)
            if kind is not None:
                yield GlobalState(module=module, name=target.id, kind=kind,
                                  node=value, ctx=ctx)

    @staticmethod
    def _classify(value: ast.AST) -> Optional[str]:
        """Mutable-state kind of a module-level value expression."""
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                              ast.SetComp, ast.DictComp)):
            return "container"
        if isinstance(value, ast.Call):
            func = value.func
            callee = (func.attr if isinstance(func, ast.Attribute)
                      else func.id if isinstance(func, ast.Name) else "")
            if callee in _CONTAINER_CTORS:
                return "container"
            if callee in _RNG_CTORS:
                return "rng"
            if callee in _OBS_CTORS or callee == "recording":
                return "obs"
        return None

    # -- per-function references ---------------------------------------------
    def _state_uses(self, info: FunctionInfo) -> Iterator[StateUse]:
        """References/mutations of indexed globals inside one function.

        A plain name resolves against the function's own module (unless
        shadowed by a local binding); ``from mod import NAME`` aliases
        and ``mod.NAME`` attribute chains resolve through the import
        map, so cross-module sharing is visible too.
        """
        imports = self.project.imports.get(info.module, {})
        local_names = self._local_bindings(info)
        declared_global: Set[str] = set()
        for node in self.project._own_nodes(info):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)

        def resolve(name: str) -> Optional[Tuple[str, str]]:
            own = (info.module, name)
            if own in self.globals and (
                    name not in local_names or name in declared_global):
                return own
            target = imports.get(name)
            if target is not None and "." in target:
                module, _, attr = target.rpartition(".")
                if (module, attr) in self.globals:
                    return (module, attr)
            return None

        for node in self.project._own_nodes(info):
            if isinstance(node, ast.Call) and isinstance(node.func,
                                                         ast.Attribute):
                receiver = self._receiver_state(node.func.value, info,
                                                imports, resolve)
                if receiver is not None:
                    yield StateUse(receiver, node,
                                   node.func.attr in MUTATOR_METHODS)
                    continue
            if isinstance(node, ast.Subscript):
                receiver = self._receiver_state(node.value, info, imports,
                                                resolve)
                if receiver is not None:
                    yield StateUse(receiver, node,
                                   isinstance(node.ctx,
                                              (ast.Store, ast.Del)))
                    continue
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                state = resolve(node.id)
                if state is not None:
                    yield StateUse(state, node, False)
            elif isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Store, ast.Del)):
                if node.id in declared_global:
                    state = (info.module, node.id)
                    if state in self.globals:
                        yield StateUse(state, node, True)
            elif isinstance(node, ast.Attribute) and isinstance(
                    node.value, ast.Name):
                module = imports.get(node.value.id)
                if module is not None and (module, node.attr) in self.globals:
                    yield StateUse((module, node.attr), node, False)

    def _receiver_state(self, node, info, imports, resolve,
                        ) -> Optional[Tuple[str, str]]:
        """The indexed global a method/subscript receiver denotes."""
        if isinstance(node, ast.Name):
            return resolve(node.id)
        if isinstance(node, ast.Attribute) and isinstance(node.value,
                                                          ast.Name):
            module = imports.get(node.value.id)
            if module is not None and (module, node.attr) in self.globals:
                return (module, node.attr)
        return None

    def _local_bindings(self, info: FunctionInfo) -> Set[str]:
        """Names the function binds itself (params + assignments)."""
        names: Set[str] = set(info.params) | set(info.kwonly)
        args = info.node.args
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                names.add(extra.arg)
        for node in self.project._own_nodes(info):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                names.add(node.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for name in _target_names(node.target):
                    names.add(name)
        return names

    # -- convenience queries -------------------------------------------------
    def worker_chain(self, qualname: str) -> List[str]:
        """Readable worker-entry → … → function call chain."""
        path = self.project.call_path(self.worker_reach, qualname)
        return [self.project.functions[q].short
                for q in path if q in self.project.functions]

    def worker_uses(self) -> Iterator[Tuple[str, StateUse]]:
        """(function qualname, use) pairs inside the worker closure."""
        for qualname in sorted(self.worker_side):
            for use in self.uses.get(qualname, ()):
                yield qualname, use

    def parent_uses(self) -> Iterator[Tuple[str, StateUse]]:
        """(function qualname, use) pairs outside the worker closure."""
        for qualname in sorted(self.uses):
            if qualname in self.worker_side:
                continue
            for use in self.uses[qualname]:
                yield qualname, use


def _target_names(target: ast.AST) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
