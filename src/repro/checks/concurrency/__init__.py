"""Concurrency, async-blocking and pickle-safety analysis.

The third analysis layer on top of the :mod:`repro.checks.flow` symbol
table and call graph.  Three rule families share one
:class:`~repro.checks.concurrency.boundaries.ConcurrencyAnalysis`
computed per lint run:

* ``C9xx`` — cross-process races and fork-inherited state
  (:mod:`.race_rules`);
* ``B10xx`` — event-loop blocking on async call paths
  (:mod:`.async_rules`);
* ``K11xx`` — pickle-safety of everything crossing the sweep's
  process boundary (:mod:`.pickle_rules`).
"""

from repro.checks.concurrency.async_rules import ASYNC_RULES
from repro.checks.concurrency.boundaries import ConcurrencyAnalysis
from repro.checks.concurrency.pickle_rules import PICKLE_RULES
from repro.checks.concurrency.race_rules import RACE_RULES

__all__ = [
    "ASYNC_RULES",
    "CONCURRENCY_RULES",
    "ConcurrencyAnalysis",
    "PICKLE_RULES",
    "RACE_RULES",
]

CONCURRENCY_RULES = [*RACE_RULES, *ASYNC_RULES, *PICKLE_RULES]
