"""Unit-dimension lint rules (family ``U``).

The library's contract (:mod:`repro.units`) is that every internal
quantity is an SI base unit: seconds, bits, bits-per-second, watts,
metres.  These rules catch the three ways that contract silently breaks:

* ``U101 unit-literal`` — a raw power-of-ten literal (``1e-9``,
  ``50e9``) used as a unit conversion where a named constant (``NS``,
  ``GBPS``, …) should be;
* ``U102 db-linear-mix`` — adding or subtracting a decibel quantity
  (``*_db`` / ``*_dbm``) and a linear power quantity (``*_mw`` /
  ``*_w``), which is meaningless without a log/linear conversion;
* ``U103 dimension-mismatch`` — adding, subtracting or comparing names
  whose suffixes declare different dimensions (``*_s`` vs ``*_bits``).

The dimension tracker is deliberately lightweight: it reads the
trailing ``_suffix`` naming convention the codebase already uses and
stays silent whenever either side's dimension is unknown.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.checks.engine import FileContext, Finding, Rule, parent_of

__all__ = [
    "UnitLiteralRule",
    "DbLinearMixRule",
    "DimensionMismatchRule",
    "dimension_of",
    "UNITS_RULES",
]


# --------------------------------------------------------------------------
# the suffix -> dimension convention
# --------------------------------------------------------------------------
#: Trailing name tokens and the physical dimension they declare.
_SUFFIX_DIMENSION: Dict[str, str] = {
    # time
    "s": "time", "ms": "time", "us": "time", "ns": "time", "ps": "time",
    "sec": "time", "secs": "time", "seconds": "time",
    # data
    "bit": "data", "bits": "data", "byte": "data", "bytes": "data",
    # rates
    "bps": "rate", "kbps": "rate", "mbps": "rate", "gbps": "rate",
    "tbps": "rate", "pbps": "rate",
    # linear power
    "w": "power", "mw": "power", "uw": "power",
    "watt": "power", "watts": "power",
    # logarithmic power / ratios
    "db": "level", "dbm": "level",
    # distance
    "m": "length", "km": "length", "nm": "length", "metres": "length",
    # frequency
    "hz": "frequency", "khz": "frequency", "mhz": "frequency",
    "ghz": "frequency", "thz": "frequency",
    # energy
    "j": "energy", "pj": "energy", "joules": "energy",
}


def dimension_of(name: Optional[str]) -> Optional[str]:
    """Dimension declared by ``name``'s trailing ``_suffix`` token."""
    if not name or "_" not in name:
        return None
    return _SUFFIX_DIMENSION.get(name.rsplit("_", 1)[-1].lower())


def _trailing_name(node: ast.AST) -> Optional[str]:
    """The identifier a dimension suffix would live on, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


# --------------------------------------------------------------------------
# U101 — raw power-of-ten literals
# --------------------------------------------------------------------------
#: exponent -> repro.units constants that encode the same scale.
_EXPONENT_SUGGESTIONS: Dict[int, str] = {
    -12: "PS / PICOSECOND / PICOJOULE",
    -9: "NS / NANOSECOND / NANOMETRE",
    -6: "US / MICROSECOND / PPM / MICROWATT",
    -3: "MS / MILLISECOND / MILLIWATT",
    3: "KBPS / KILOBYTE / KILOMETRE / KILOWATT",
    6: "MBPS / MEGAWATT",
    9: "GBPS / GIGAHERTZ",
    12: "TBPS",
    15: "PBPS",
}

#: dimension -> exponent -> the one constant that fits.
_DIMENSIONED_SUGGESTIONS: Dict[Tuple[str, int], str] = {
    ("time", -3): "MS", ("time", -6): "US", ("time", -9): "NS",
    ("time", -12): "PS",
    ("rate", 3): "KBPS", ("rate", 6): "MBPS", ("rate", 9): "GBPS",
    ("rate", 12): "TBPS", ("rate", 15): "PBPS",
    ("power", -3): "MILLIWATT", ("power", -6): "MICROWATT",
    ("power", 6): "MEGAWATT", ("power", 3): "KILOWATT",
    ("length", -9): "NANOMETRE", ("length", 3): "KILOMETRE",
    ("frequency", 9): "GIGAHERTZ",
    ("energy", -12): "PICOJOULE",
}

_SCI_LITERAL_RE = re.compile(
    r"^(?P<mantissa>\d+(?:\.\d*)?|\.\d+)[eE](?P<exponent>[+-]?\d+)$"
)


def _literal_segment(ctx: FileContext, node: ast.AST) -> Optional[str]:
    """Single-line source text of ``node`` via the cached line table.

    ``ast.get_source_segment`` re-splits the whole file per call, which
    dominated lint runtime; numeric literals never span lines, so a
    line/column slice is equivalent and O(segment).
    """
    line = getattr(node, "lineno", None)
    if line is None or getattr(node, "end_lineno", line) != line:
        return None
    # ast column offsets count UTF-8 bytes, not code points.
    raw = ctx.line(line).encode("utf-8")
    start = getattr(node, "col_offset", 0)
    end = getattr(node, "end_col_offset", len(raw))
    try:
        return raw[start:end].decode("utf-8")
    except UnicodeDecodeError:
        return None


def _sci_exponent(ctx: FileContext, node: ast.Constant) -> Optional[int]:
    """Exponent of ``node`` when written in scientific notation, else None."""
    if not isinstance(node.value, (int, float)) or isinstance(node.value, bool):
        return None
    segment = _literal_segment(ctx, node)
    if segment is None:
        return None
    match = _SCI_LITERAL_RE.match(segment.strip())
    if match is None:
        return None
    return int(match.group("exponent"))


class UnitLiteralRule(Rule):
    """Flag raw power-of-ten conversion factors.

    A scientific-notation literal whose exponent matches one of the
    :mod:`repro.units` scales is flagged when it is

    * an operand of a multiplication or division (the classic
      ``duration / 1e-6`` conversion), or
    * the value given to a name that declares a dimension suffix
      (``base_rtt_s=2e-6``, ``control_link_bps: float = 100e9``).

    Comparison tolerances (``abs(x) < 1e-9``) and function-call epsilons
    are deliberately not flagged.
    """

    code = "U101"
    name = "unit-literal"
    description = "raw power-of-ten literal where a repro.units constant fits"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Constant):
                continue
            exponent = _sci_exponent(ctx, node)
            if exponent is None or exponent not in _EXPONENT_SUGGESTIONS:
                continue
            context = self._literal_context(node)
            if context is None:
                continue
            kind, name = context
            suggestion = self._suggest(name, exponent)
            segment = _literal_segment(ctx, node) or str(node.value)
            if kind == "binop":
                message = (f"raw unit literal {segment} in arithmetic; "
                           f"use {suggestion} from repro.units")
            else:
                message = (f"raw unit literal {segment} assigned to "
                           f"dimensioned name {name!r}; "
                           f"use {suggestion} from repro.units")
            yield self.finding(ctx, node, message)

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def _suggest(name: Optional[str], exponent: int) -> str:
        dim = dimension_of(name)
        if dim is not None:
            specific = _DIMENSIONED_SUGGESTIONS.get((dim, exponent))
            if specific:
                return specific
        return _EXPONENT_SUGGESTIONS[exponent]

    @staticmethod
    def _literal_context(node: ast.Constant) -> Optional[Tuple[str, Optional[str]]]:
        """(kind, dimensioned-name) when the literal is in a flaggable spot."""
        parent = parent_of(node)
        if isinstance(parent, ast.BinOp) and isinstance(parent.op, (ast.Mult, ast.Div)):
            other = parent.right if parent.left is node else parent.left
            return "binop", _trailing_name(other)
        if isinstance(parent, ast.keyword) and dimension_of(parent.arg):
            return "named", parent.arg
        if isinstance(parent, ast.AnnAssign):
            target = _trailing_name(parent.target)
            if parent.value is node and dimension_of(target):
                return "named", target
        if isinstance(parent, ast.Assign) and parent.value is node:
            for target in parent.targets:
                name = _trailing_name(target)
                if dimension_of(name):
                    return "named", name
        if isinstance(parent, ast.arguments):
            name = UnitLiteralRule._default_param_name(parent, node)
            if dimension_of(name):
                return "named", name
        return None

    @staticmethod
    def _default_param_name(args: ast.arguments,
                            default: ast.Constant) -> Optional[str]:
        """Parameter name whose default value is ``default``."""
        positional: List[ast.arg] = list(args.posonlyargs) + list(args.args)
        for arg, value in zip(positional[len(positional) - len(args.defaults):],
                              args.defaults):
            if value is default:
                return arg.arg
        for arg, value in zip(args.kwonlyargs, args.kw_defaults):
            if value is default:
                return arg.arg
        return None


# --------------------------------------------------------------------------
# U102 — decibel / linear mixing
# --------------------------------------------------------------------------
class DbLinearMixRule(Rule):
    """Flag ``x_db + y_mw``-style sums of log and linear power.

    Decibels add where linear powers multiply; summing the two without a
    :func:`repro.units.dbm_to_mw`-style conversion is always a bug.
    """

    code = "U102"
    name = "db-linear-mix"
    description = "decibel quantity added to / subtracted from linear power"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not (isinstance(node, ast.BinOp)
                    and isinstance(node.op, (ast.Add, ast.Sub))):
                continue
            left = _trailing_name(node.left)
            right = _trailing_name(node.right)
            dims = {dimension_of(left), dimension_of(right)}
            if dims == {"level", "power"}:
                yield self.finding(
                    ctx, node,
                    f"mixing decibel and linear power: {left!r} "
                    f"{'+' if isinstance(node.op, ast.Add) else '-'} {right!r} "
                    "(convert with dbm_to_mw/mw_to_dbm first)",
                )


# --------------------------------------------------------------------------
# U103 — cross-dimension arithmetic
# --------------------------------------------------------------------------
class DimensionMismatchRule(Rule):
    """Flag additive arithmetic/comparison across different dimensions.

    Multiplication and division legitimately combine dimensions
    (``bits / bps -> seconds``), so only ``+``, ``-`` and comparisons
    are checked, and only when *both* sides carry a known suffix.
    The log/linear power pair is left to ``U102``.
    """

    code = "U103"
    name = "dimension-mismatch"
    description = "add/sub/compare between names of different dimensions"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if (isinstance(node, ast.BinOp)
                    and isinstance(node.op, (ast.Add, ast.Sub))):
                pairs = [(node.left, node.right)]
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                pairs = list(zip(operands, operands[1:]))
            else:
                continue
            for left_node, right_node in pairs:
                left = _trailing_name(left_node)
                right = _trailing_name(right_node)
                left_dim, right_dim = dimension_of(left), dimension_of(right)
                if (left_dim is None or right_dim is None
                        or left_dim == right_dim):
                    continue
                if {left_dim, right_dim} == {"level", "power"}:
                    continue  # U102's finding
                yield self.finding(
                    ctx, node,
                    f"dimension mismatch: {left!r} is {left_dim} but "
                    f"{right!r} is {right_dim}",
                )


UNITS_RULES = [UnitLiteralRule(), DbLinearMixRule(), DimensionMismatchRule()]
