"""Invariant lint rules (family ``I``).

The simulator's structural invariants — immutable configuration,
validated parameters, a contention-free schedule (paper §4.2, Fig 5b) —
are stated in docstrings but not enforceable by Python alone.  These
rules police the code patterns that would erode them:

* ``I301 frozen-mutation`` — assigning to fields of a
  ``@dataclass(frozen=True)`` (or reaching around it with
  ``object.__setattr__`` outside ``__post_init__``);
* ``I302 missing-validator`` — a ``*Config`` dataclass without a
  ``__post_init__`` validator, so bad parameters propagate silently;
* ``I303 schedule-bypass`` — constructing a ``CyclicSchedule`` without
  calling ``verify_contention_free()`` in the same scope, bypassing the
  permutation check that keeps the static schedule collision-free.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.checks.engine import FileContext, Finding, Rule, parent_of

__all__ = [
    "FrozenMutationRule",
    "MissingValidatorRule",
    "ScheduleBypassRule",
    "INVARIANT_RULES",
]


def _is_dataclass_decorator(node: ast.AST) -> bool:
    """True for ``@dataclass`` / ``@dataclasses.dataclass`` (w/ or w/o args)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id == "dataclass"
    if isinstance(node, ast.Attribute):
        return node.attr == "dataclass"
    return False


def _dataclass_decorator(cls: ast.ClassDef) -> Optional[ast.AST]:
    for decorator in cls.decorator_list:
        if _is_dataclass_decorator(decorator):
            return decorator
    return None


def _is_frozen_dataclass(cls: ast.ClassDef) -> bool:
    decorator = _dataclass_decorator(cls)
    if not isinstance(decorator, ast.Call):
        return False
    return any(
        kw.arg == "frozen" and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in decorator.keywords
    )


def _enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    current = parent_of(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parent_of(current)
    return None


def _enclosing_class(node: ast.AST) -> Optional[ast.ClassDef]:
    current = parent_of(node)
    while current is not None:
        if isinstance(current, ast.ClassDef):
            return current
        current = parent_of(current)
    return None


class FrozenMutationRule(Rule):
    """Flag writes to frozen-dataclass fields.

    Direct ``self.x = ...`` inside a frozen dataclass raises
    ``FrozenInstanceError`` at runtime, but only on the code path that
    executes it; the lint catches it statically.  The
    ``object.__setattr__`` escape hatch is legitimate only inside
    ``__post_init__`` (to store derived fields); anywhere else it
    silently mutates state every consumer assumes immutable.
    """

    code = "I301"
    name = "frozen-mutation"
    description = "mutation of a frozen dataclass field"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._direct_assignments(ctx)
        yield from self._setattr_bypasses(ctx)

    def _direct_assignments(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in ctx.walk():
            if not (isinstance(cls, ast.ClassDef) and _is_frozen_dataclass(cls)):
                continue
            for node in ast.walk(cls):
                targets: List[ast.AST] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        yield self.finding(
                            ctx, target,
                            f"assignment to 'self.{target.attr}' inside frozen "
                            f"dataclass {cls.name!r} raises FrozenInstanceError; "
                            "frozen fields are immutable after construction",
                        )

    def _setattr_bypasses(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "__setattr__"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "object"):
                continue
            function = _enclosing_function(node)
            if function is not None and function.name == "__post_init__":
                continue
            yield self.finding(
                ctx, node,
                "object.__setattr__ bypasses frozen-dataclass immutability "
                "outside __post_init__",
            )


class MissingValidatorRule(Rule):
    """Flag ``*Config`` dataclasses without a ``__post_init__`` validator.

    Every configuration dataclass in the simulator validates its
    parameters on construction (``SlotTiming``, ``CongestionConfig``,
    ``RackConfig``, …); one without a validator lets a negative load or
    zero bandwidth corrupt a whole benchmark sweep downstream.
    """

    code = "I302"
    name = "missing-validator"
    description = "config dataclass lacks a __post_init__ validator"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in ctx.walk():
            if not isinstance(cls, ast.ClassDef):
                continue
            if not cls.name.endswith("Config"):
                continue
            if _dataclass_decorator(cls) is None:
                continue
            has_validator = any(
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "__post_init__"
                for item in cls.body
            )
            if not has_validator:
                yield self.finding(
                    ctx, cls,
                    f"config dataclass {cls.name!r} has no __post_init__ "
                    "validator; invalid parameters will propagate silently",
                )


class ScheduleBypassRule(Rule):
    """Flag schedule construction that skips the permutation check.

    The static cyclic schedule is only contention-free if every
    (grating, output-port) pair receives at most one transmission per
    slot — ``CyclicSchedule.verify_contention_free()`` asserts exactly
    that.  Building a schedule without verifying it in the same scope
    means a mis-parameterized topology silently double-books receivers.
    """

    code = "I303"
    name = "schedule-bypass"
    description = "CyclicSchedule built without verify_contention_free()"

    #: class names whose construction must be paired with verification.
    schedule_classes = ("CyclicSchedule",)
    verifier = "verify_contention_free"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not (isinstance(node, ast.Call)
                    and self._is_schedule_ctor(node)):
                continue
            scope = _enclosing_function(node) or ctx.tree
            if isinstance(scope, ast.Module):
                scope_cls = _enclosing_class(node)
                if scope_cls is not None:
                    # a bare constructor call in a class body (e.g. a
                    # default field value) is checked against the class
                    scope = scope_cls
            if not self._scope_verifies(scope):
                yield self.finding(
                    ctx, node,
                    "CyclicSchedule constructed without a "
                    "verify_contention_free() call in the same scope; the "
                    "schedule's permutation invariant (§4.2) goes unchecked",
                )

    def _is_schedule_ctor(self, node: ast.Call) -> bool:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in self.schedule_classes

    def _scope_verifies(self, scope: ast.AST) -> bool:
        for node in ast.walk(scope):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == self.verifier):
                return True
        return False


INVARIANT_RULES = [FrozenMutationRule(), MissingValidatorRule(),
                   ScheduleBypassRule()]
