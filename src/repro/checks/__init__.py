"""``repro.checks`` — simulator-aware static analysis for the reproduction.

An AST-based lint engine (stdlib only) with three rule families:

* **unit-dimension** (``U1xx``): raw power-of-ten literals, dB/linear
  power mixing, cross-dimension arithmetic — guarding the SI-base-unit
  contract of :mod:`repro.units`;
* **determinism** (``D2xx``): module-global RNG draws, unseeded RNG
  construction, set-iteration order — guarding bit-for-bit reproducible
  benchmark sweeps (Figs 9–13);
* **invariant** (``I3xx``): frozen-dataclass mutation, missing config
  validators, schedule construction that bypasses the contention-free
  permutation check (paper §4.2).

On top of the per-file families, :mod:`repro.checks.flow` adds
project-wide dataflow analyses (symbol table + call graph + CFGs):
**dimensional flow** (``F6xx``), **determinism taint** (``T7xx``) and
the **fast-path parity audit** (``S8xx``).

Run as ``python -m repro.checks src/repro`` or via the ``sirius-lint``
console script; suppress an intentional finding with a trailing
``# lint: ignore[rule-id]`` comment; accepted pre-existing findings
live in the committed ``checks_baseline.json``.
"""

from repro.checks.baseline import (
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.checks.cli import main
from repro.checks.engine import (
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    check_project_source,
    check_source,
    filter_rules,
    format_json,
    format_sarif,
    format_text,
    iter_python_files,
    parse_file,
    run_checks,
)
from repro.checks.registry import ALL_RULES

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Finding",
    "ProjectRule",
    "Rule",
    "check_project_source",
    "check_source",
    "diff_against_baseline",
    "filter_rules",
    "format_json",
    "format_sarif",
    "format_text",
    "iter_python_files",
    "load_baseline",
    "main",
    "parse_file",
    "run_checks",
    "write_baseline",
]
