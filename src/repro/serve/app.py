"""The ``sirius-repro serve`` application: HTTP + websocket front end.

One :class:`TelemetryServer` owns three things:

* a :class:`repro.serve.jobs.JobPool` running simulations in executor
  threads;
* a :class:`repro.serve.hub.TelemetryHub` fanning frames out to
  websocket subscribers with per-subscriber backpressure;
* a *sampler task* that ticks every ``sample_interval_s``, pulls a
  delta snapshot (:meth:`MetricsRegistry.collect_delta`) and a tap
  drain from every live run, and publishes the results as
  ``metrics.delta`` / ``events`` frames.

The sampler is the only reader of each run's registry cursor, and it
runs on the event loop — simulations write metrics from executor
threads, the sampler reads delta snapshots without locks (the registry
is designed for that), and the hub never awaits a peer.  A stalled
browser therefore costs that browser frames, never the epoch loop
time.

HTTP surface (all JSON unless noted)::

    GET  /              the dashboard (text/html, single file)
    GET  /api/runs      current run table
    GET  /api/runs/{id} one run's row plus a full metric snapshot
    POST /api/jobs      submit {"kind": "simulate"|"sweep", "params": {…}}
    GET  /api/stats     hub/subscriber statistics
    GET  /ws            websocket upgrade (the streaming protocol)
"""

from __future__ import annotations

import asyncio
from time import monotonic
from typing import Optional

from repro.serve.dashboard import DASHBOARD_HTML
from repro.serve.http import (
    HttpError,
    HttpRequest,
    json_response,
    read_request,
    response_bytes,
)
from repro.serve.hub import DEFAULT_QUEUE_FRAMES, Subscriber, TelemetryHub
from repro.serve.jobs import JobPool, JobSpecError, RunHandle
from repro.serve.protocol import (
    ProtocolError,
    encode_frame,
    error_frame,
    events_frame,
    heartbeat_frame,
    hello_frame,
    metrics_delta_frame,
    parse_client_frame,
    run_update_frame,
)
from repro.serve.websocket import WebSocket, accept_key

__all__ = ["TelemetryServer", "serve_forever"]

#: Sampler tick period.  Four ticks per second keeps the dashboard
#: fluid while the per-tick work (a delta snapshot) stays microseconds.
DEFAULT_SAMPLE_INTERVAL_S = 0.25

#: Heartbeats are sent every N sampler ticks.
_HEARTBEAT_EVERY_TICKS = 4

#: Cap on trace events shipped per run per tick; the rest stay in the
#: tap for the next tick (or are dropped there, counted).
_EVENTS_PER_TICK = 2048


class TelemetryServer:
    """The asyncio service behind ``sirius-repro serve``.

    Use as an async context manager (tests) or via :func:`serve_forever`
    (the CLI)::

        async with TelemetryServer(port=0) as server:
            ...  # server.port is the bound ephemeral port
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8151, *,
                 sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
                 queue_frames: int = DEFAULT_QUEUE_FRAMES,
                 max_workers: int = 4) -> None:
        if sample_interval_s <= 0:
            raise ValueError(
                f"sample_interval_s must be > 0, got {sample_interval_s}"
            )
        self.host = host
        self.port = port
        self.sample_interval_s = sample_interval_s
        self.hub = TelemetryHub(queue_frames)
        self.pool = JobPool(max_workers=max_workers,
                            on_update=self._on_run_update)
        self._server: Optional[asyncio.base_events.Server] = None
        self._sampler_task: Optional[asyncio.Task] = None
        self._started_at = 0.0
        self._tick = 0
        #: Runs whose final post-completion sample has been published.
        self._flushed: set = set()
        #: Live per-connection handler tasks, cancelled on stop().
        self._conn_tasks: set = set()

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.port = sock.getsockname()[1]
            break
        self._started_at = monotonic()
        self._sampler_task = asyncio.get_running_loop().create_task(
            self._sampler_loop()
        )

    async def stop(self) -> None:
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            try:
                await self._sampler_task
            except asyncio.CancelledError:
                pass
            self._sampler_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self.hub.shutdown()
        self.pool.shutdown(wait=False)

    async def __aenter__(self) -> "TelemetryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def uptime_s(self) -> float:
        return monotonic() - self._started_at

    # -- sampler ------------------------------------------------------------
    async def _sampler_loop(self) -> None:
        while True:
            await asyncio.sleep(self.sample_interval_s)
            self.sample_once()
            self._tick += 1
            if self._tick % _HEARTBEAT_EVERY_TICKS == 0:
                self.hub.publish(heartbeat_frame(
                    round(self.uptime_s, 3),
                    [run.row() for run in self.pool.runs()],
                ))

    def sample_once(self) -> int:
        """One sampler tick: publish deltas for every unflushed run.

        Synchronous and loop-thread-only.  Returns the number of frames
        published (tests use it to drive the sampler deterministically
        without waiting out the interval).
        """
        published = 0
        for run in self.pool.runs():
            if run.run_id in self._flushed:
                continue
            # Order matters: read `finished` BEFORE sampling.  If the
            # run finishes mid-sample, this tick is treated as partial
            # and the final flush happens next tick — never missed.
            finished = run.finished
            published += self._publish_run_delta(run)
            if finished:
                self._flushed.add(run.run_id)
        return published

    def _publish_run_delta(self, run: RunHandle) -> int:
        published = 0
        samples, run.cursor = run.obs.registry.collect_delta(
            run.cursor or None
        )
        if samples:
            run.metrics_seq += 1
            self.hub.publish(
                metrics_delta_frame(run.run_id, run.metrics_seq, samples),
                stream="metrics", run_id=run.run_id,
            )
            published += 1
        tapped = run.tap.drain(_EVENTS_PER_TICK)
        if tapped or run.tap.dropped:
            run.events_seq += 1
            self.hub.publish(
                events_frame(
                    run.run_id, run.events_seq,
                    [event.to_dict() for event in tapped],
                    tap_dropped=run.tap.dropped,
                ),
                stream="events", run_id=run.run_id,
            )
            published += 1
        return published

    def _on_run_update(self, run: RunHandle) -> None:
        self.hub.publish(run_update_frame(run.row()))

    # -- HTTP ---------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                writer.write(json_response(
                    exc.status, {"error": exc.reason}
                ))
                await writer.drain()
                return
            if request is None:
                return
            if request.path == "/ws":
                await self._websocket_session(request, reader, writer)
                return
            writer.write(self._route(request))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            # Peer went away, or stop() is tearing the connection down.
            # Either way the task ends normally: letting the exception
            # escape only makes asyncio's streams wrapper log it.
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
            except RuntimeError:
                pass

    def _route(self, request: HttpRequest) -> bytes:
        path, method = request.path, request.method
        try:
            if path == "/" and method == "GET":
                return response_bytes(
                    200, DASHBOARD_HTML.encode("utf-8"),
                    "text/html; charset=utf-8",
                )
            if path == "/api/runs" and method == "GET":
                return json_response(200, {
                    "runs": [run.row() for run in self.pool.runs()],
                })
            if path.startswith("/api/runs/") and method == "GET":
                run = self.pool.get(path[len("/api/runs/"):])
                if run is None:
                    return json_response(404, {"error": "unknown run"})
                return json_response(200, {
                    "run": run.row(),
                    "metrics": run.obs.registry.snapshot()["metrics"],
                })
            if path == "/api/jobs" and method == "POST":
                return self._submit_job(request)
            if path == "/api/stats" and method == "GET":
                return json_response(200, {
                    "uptime_s": round(self.uptime_s, 3),
                    "runs": len(self.pool.runs()),
                    "active_runs": len(self.pool.active_runs()),
                    "hub": self.hub.stats(),
                })
            if path in ("/", "/api/runs", "/api/jobs", "/api/stats"):
                return json_response(405, {"error": "method not allowed"})
            return json_response(404, {"error": f"no route for {path}"})
        except HttpError as exc:
            return json_response(exc.status, {"error": exc.reason})

    def _submit_job(self, request: HttpRequest) -> bytes:
        payload = request.json()
        if not isinstance(payload, dict):
            return json_response(400, {"error": "body must be an object"})
        kind = payload.get("kind", "simulate")
        params = payload.get("params", {})
        if not isinstance(params, dict):
            return json_response(400, {"error": "params must be an object"})
        try:
            handle = self.pool.submit(str(kind), params)
        except JobSpecError as exc:
            return json_response(400, {"error": str(exc)})
        return json_response(201, {"run_id": handle.run_id,
                                   "run": handle.row()})

    # -- websocket ----------------------------------------------------------
    async def _websocket_session(self, request: HttpRequest,
                                 reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        key = request.headers.get("sec-websocket-key")
        if not request.wants_websocket() or not key:
            writer.write(json_response(
                426, {"error": "this endpoint speaks websocket"}
            ))
            await writer.drain()
            return
        writer.write((
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {accept_key(key)}\r\n"
            "\r\n"
        ).encode("latin-1"))
        await writer.drain()
        ws = WebSocket(reader, writer)
        subscriber = self.hub.register()
        subscriber.offer(hello_frame(
            [run.row() for run in self.pool.runs()]
        ))
        writer_task = asyncio.get_running_loop().create_task(
            self._subscriber_writer(ws, subscriber)
        )
        try:
            await self._subscriber_reader(ws, subscriber)
        finally:
            self.hub.unregister(subscriber)
            subscriber.finish()
            try:
                await asyncio.wait_for(writer_task, timeout=2.0)
            except (asyncio.TimeoutError, asyncio.CancelledError,
                    ConnectionError):
                writer_task.cancel()
            ws.close_transport()

    async def _subscriber_reader(self, ws: WebSocket,
                                 subscriber: Subscriber) -> None:
        while True:
            try:
                text = await ws.recv()
            except ConnectionError:
                return
            if text is None:
                return
            try:
                frame = parse_client_frame(text)
            except ProtocolError as exc:
                subscriber.offer(error_frame(str(exc)))
                continue
            if frame["type"] == "subscribe":
                subscriber.subscribe(frame["runs"], frame["streams"])
            elif frame["type"] == "unsubscribe":
                subscriber.unsubscribe()
            elif frame["type"] == "ping":
                subscriber.offer(heartbeat_frame(
                    round(self.uptime_s, 3),
                    [run.row() for run in self.pool.runs()],
                ))

    async def _subscriber_writer(self, ws: WebSocket,
                                 subscriber: Subscriber) -> None:
        """The ONLY place this subscriber's frames touch the network."""
        try:
            async for frame in subscriber.frames():
                await ws.send_text(encode_frame(frame))
        except ConnectionError:
            pass  # peer went away; the reader will notice too


async def serve_forever(host: str, port: int, *,
                        sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
                        max_workers: int = 4,
                        queue_frames: int = DEFAULT_QUEUE_FRAMES,
                        ready_message: bool = True) -> None:
    """Run the service until cancelled (the CLI entry point)."""
    async with TelemetryServer(
        host, port, sample_interval_s=sample_interval_s,
        queue_frames=queue_frames, max_workers=max_workers,
    ) as server:
        if ready_message:
            print(f"sirius-repro serve: dashboard at "
                  f"http://{server.host}:{server.port}/  "
                  f"(websocket at /ws, jobs via POST /api/jobs)")
        await asyncio.Event().wait()
