"""Minimal RFC 6455 websockets over asyncio streams.

The container image carries no third-party websocket library, so the
service implements the protocol directly: the HTTP upgrade handshake
(`Sec-WebSocket-Accept` is the base64 SHA-1 of key + GUID), the frame
codec (FIN/opcode bits, 7/16/64-bit lengths, client-side masking) and
a small :class:`WebSocket` wrapper that handles fragmentation and
ping/pong transparently.  Only what the telemetry service needs is
implemented — text and close frames, no extensions, no compression —
but that subset is spec-conformant, so real browsers connect to the
dashboard endpoint unmodified.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
import struct
from typing import Optional, Tuple

__all__ = [
    "WS_GUID",
    "OP_CONT",
    "OP_TEXT",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "WebSocket",
    "WebSocketError",
    "accept_key",
    "decode_frame_header",
    "encode_frame",
    "client_handshake",
]

#: The fixed GUID every websocket handshake concatenates to the key.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_CONTROL_OPCODES = frozenset({OP_CLOSE, OP_PING, OP_PONG})

#: Upper bound on one message; a telemetry frame is a few KB, so
#: anything near this is a protocol violation, not a big payload.
MAX_MESSAGE_BYTES = 8 * 1024 * 1024


class WebSocketError(ConnectionError):
    """Malformed frame, oversized message or a failed handshake."""


def accept_key(key: str) -> str:
    """``Sec-WebSocket-Accept`` for a client's ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(opcode: int, payload: bytes, *, fin: bool = True,
                 mask: bool = False) -> bytes:
    """One wire frame.  Servers send unmasked; clients must mask."""
    header = bytearray()
    header.append((0x80 if fin else 0x00) | (opcode & 0x0F))
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < (1 << 16):
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if mask:
        key = os.urandom(4)
        header += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + payload


def decode_frame_header(first: int, second: int) -> Tuple[bool, int, bool, int]:
    """(fin, opcode, masked, base_length) from the first two bytes."""
    fin = bool(first & 0x80)
    if first & 0x70:
        raise WebSocketError("reserved frame bits set (no extensions)")
    opcode = first & 0x0F
    masked = bool(second & 0x80)
    return fin, opcode, masked, second & 0x7F


async def _read_frame(reader: asyncio.StreamReader,
                      ) -> Tuple[bool, int, bytes]:
    """Read one frame: (fin, opcode, unmasked payload)."""
    head = await reader.readexactly(2)
    fin, opcode, masked, length = decode_frame_header(head[0], head[1])
    if length == 126:
        (length,) = struct.unpack(">H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", await reader.readexactly(8))
    if length > MAX_MESSAGE_BYTES:
        raise WebSocketError(f"frame of {length} bytes exceeds limit")
    if opcode in _CONTROL_OPCODES and (length > 125 or not fin):
        raise WebSocketError("control frames must be short and unfragmented")
    key = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length) if length else b""
    if masked:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return fin, opcode, payload


class WebSocket:
    """One established websocket connection (either side).

    ``recv()`` returns the next complete *text* message, transparently
    answering pings and reassembling fragments; ``None`` signals a
    clean close.  ``send_text()`` writes one text message and waits for
    the transport buffer to drain — callers that must never block on a
    slow peer (the hub's publisher) do not call this directly; they
    enqueue to the per-subscriber queue and a dedicated writer task
    does the blocking send.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *,
                 client_side: bool = False) -> None:
        self._reader = reader
        self._writer = writer
        self._client_side = client_side
        self.closed = False

    async def send_text(self, text: str) -> None:
        self._writer.write(encode_frame(
            OP_TEXT, text.encode("utf-8"), mask=self._client_side
        ))
        await self._writer.drain()

    async def send_close(self, code: int = 1000) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self._writer.write(encode_frame(
                OP_CLOSE, struct.pack(">H", code), mask=self._client_side
            ))
            await self._writer.drain()
        except (ConnectionError, RuntimeError):
            pass

    async def recv(self) -> Optional[str]:
        """Next text message, or None when the peer closed."""
        fragments: list = []
        while True:
            try:
                fin, opcode, payload = await _read_frame(self._reader)
            except WebSocketError:
                # Protocol violation, not a dropped peer: surface it.
                self.closed = True
                raise
            except (asyncio.IncompleteReadError, ConnectionError):
                self.closed = True
                return None
            if opcode == OP_PING:
                self._writer.write(encode_frame(
                    OP_PONG, payload, mask=self._client_side
                ))
                await self._writer.drain()
                continue
            if opcode == OP_PONG:
                continue
            if opcode == OP_CLOSE:
                await self.send_close()
                return None
            if opcode in (OP_TEXT, OP_BINARY):
                if fragments:
                    raise WebSocketError(
                        "new message started inside a fragmented one"
                    )
                fragments.append(payload)
            elif opcode == OP_CONT:
                if not fragments:
                    raise WebSocketError("continuation without a start frame")
                fragments.append(payload)
            else:
                raise WebSocketError(f"unsupported opcode {opcode:#x}")
            if sum(len(f) for f in fragments) > MAX_MESSAGE_BYTES:
                raise WebSocketError("fragmented message exceeds limit")
            if fin:
                message = b"".join(fragments)
                return message.decode("utf-8")

    def close_transport(self) -> None:
        self.closed = True
        try:
            self._writer.close()
        except RuntimeError:
            pass


async def client_handshake(reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter,
                           host: str, path: str = "/ws") -> WebSocket:
    """Perform the client side of the upgrade on an open connection."""
    key = base64.b64encode(os.urandom(16)).decode("ascii")
    request = (
        f"GET {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Key: {key}\r\n"
        "Sec-WebSocket-Version: 13\r\n"
        "\r\n"
    )
    writer.write(request.encode("ascii"))
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = lines[0].split(" ", 2)
    if len(status) < 2 or status[1] != "101":
        raise WebSocketError(f"upgrade refused: {lines[0]!r}")
    headers = {}
    for line in lines[1:]:
        if ":" in line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    if headers.get("sec-websocket-accept") != accept_key(key):
        raise WebSocketError("Sec-WebSocket-Accept mismatch")
    return WebSocket(reader, writer, client_side=True)
