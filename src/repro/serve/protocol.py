"""Wire schemas of the live telemetry service.

Everything that crosses a websocket (or the HTTP job API) is a JSON
object with a ``type`` field drawn from a closed vocabulary — the same
design choice as :data:`repro.obs.events.EVENT_TYPES`: a closed set
keeps the stream machine-readable for the dashboard, the ``watch``
terminal client and the tests, with no defensive parsing.

Server → client frame types
---------------------------
``hello``          greeting: protocol version + current run table
``run.update``     a run was added or changed state (carries the row)
``metrics.delta``  one run's changed metric samples since the last tick
``events``         one run's freshly tapped trace events
``drops``          frames were dropped for *this* subscriber (count)
``heartbeat``      periodic liveness: server clock + per-run progress
``error``          the server rejected a client frame (reason)

Client → server frame types
---------------------------
``subscribe``      start streaming (``runs``: list of run ids or "*";
                   ``streams``: subset of {"metrics", "events"})
``unsubscribe``    stop streaming
``ping``           echo request (server replies with ``heartbeat``)

Frames are deliberately flat and small; the metric payloads inside
``metrics.delta`` are exactly the sample dicts of
:meth:`repro.obs.metrics.MetricsRegistry.snapshot`.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Sequence

__all__ = [
    "PROTOCOL_VERSION",
    "SERVER_FRAME_TYPES",
    "CLIENT_FRAME_TYPES",
    "STREAM_KINDS",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "parse_client_frame",
    "hello_frame",
    "run_update_frame",
    "metrics_delta_frame",
    "events_frame",
    "drops_frame",
    "heartbeat_frame",
    "error_frame",
]

PROTOCOL_VERSION = 1

SERVER_FRAME_TYPES = frozenset({
    "hello", "run.update", "metrics.delta", "events", "drops",
    "heartbeat", "error",
})

CLIENT_FRAME_TYPES = frozenset({"subscribe", "unsubscribe", "ping"})

#: Streams a subscription can select.
STREAM_KINDS = frozenset({"metrics", "events"})


class ProtocolError(ValueError):
    """A frame that does not follow the protocol (bad JSON, unknown
    type, missing field).  Carried back to clients as an ``error``
    frame rather than tearing the connection down."""


# -- server frame constructors ----------------------------------------------
def hello_frame(runs: Sequence[Dict[str, object]]) -> Dict[str, object]:
    return {
        "type": "hello",
        "protocol": PROTOCOL_VERSION,
        "server": "sirius-repro serve",
        "runs": list(runs),
    }


def run_update_frame(run: Dict[str, object]) -> Dict[str, object]:
    return {"type": "run.update", "run": dict(run)}


def metrics_delta_frame(run_id: str, seq: int,
                        samples: Sequence[Dict[str, object]],
                        ) -> Dict[str, object]:
    return {
        "type": "metrics.delta",
        "run_id": run_id,
        "seq": seq,
        "samples": list(samples),
    }


def events_frame(run_id: str, seq: int,
                 events: Sequence[Dict[str, object]],
                 tap_dropped: int = 0) -> Dict[str, object]:
    return {
        "type": "events",
        "run_id": run_id,
        "seq": seq,
        "events": list(events),
        "tap_dropped": tap_dropped,
    }


def drops_frame(count: int) -> Dict[str, object]:
    """Tells one subscriber how many frames it missed (backpressure)."""
    return {"type": "drops", "count": count}


def heartbeat_frame(uptime_s: float,
                    runs: Sequence[Dict[str, object]],
                    ) -> Dict[str, object]:
    return {"type": "heartbeat", "uptime_s": uptime_s, "runs": list(runs)}


def error_frame(reason: str) -> Dict[str, object]:
    return {"type": "error", "reason": reason}


# -- encoding / decoding ----------------------------------------------------
def encode_frame(frame: Dict[str, object]) -> str:
    """Frame dict -> compact JSON text (one websocket text message)."""
    frame_type = frame.get("type")
    if frame_type not in SERVER_FRAME_TYPES | CLIENT_FRAME_TYPES:
        raise ProtocolError(f"unknown frame type {frame_type!r}")
    return json.dumps(frame, separators=(",", ":"))


def decode_frame(text: str) -> Dict[str, object]:
    """JSON text -> frame dict, validating shape and type."""
    try:
        frame = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    frame_type = frame.get("type")
    if frame_type not in SERVER_FRAME_TYPES | CLIENT_FRAME_TYPES:
        raise ProtocolError(f"unknown frame type {frame_type!r}")
    return frame


def parse_client_frame(text: str) -> Dict[str, object]:
    """Validate a client frame; normalizes ``subscribe`` selections.

    A ``subscribe`` may carry ``runs`` (list of run-id strings, or the
    single string ``"*"``; default everything) and ``streams`` (subset
    of :data:`STREAM_KINDS`; default all).  The returned frame always
    has both fields normalized: ``runs`` is ``"*"`` or a list of
    strings, ``streams`` a sorted list.
    """
    frame = decode_frame(text)
    frame_type = frame["type"]
    if frame_type not in CLIENT_FRAME_TYPES:
        raise ProtocolError(
            f"{frame_type!r} is a server frame, not a client request"
        )
    if frame_type == "subscribe":
        runs = frame.get("runs", "*")
        if runs != "*":
            if (not isinstance(runs, list)
                    or not all(isinstance(r, str) for r in runs)):
                raise ProtocolError(
                    "subscribe.runs must be \"*\" or a list of run ids"
                )
        streams = frame.get("streams", sorted(STREAM_KINDS))
        if (not isinstance(streams, list)
                or not set(streams) <= STREAM_KINDS):
            raise ProtocolError(
                f"subscribe.streams must be a subset of "
                f"{sorted(STREAM_KINDS)}"
            )
        frame["runs"] = runs
        frame["streams"] = sorted(streams)
    return frame


def run_row(run_id: str, kind: str, state: str,
            spec: Dict[str, object],
            progress: Optional[Dict[str, object]] = None,
            result: Optional[Dict[str, object]] = None,
            error: Optional[str] = None) -> Dict[str, object]:
    """The canonical run-table row shared by HTTP and websocket views."""
    row: Dict[str, object] = {
        "run_id": run_id,
        "kind": kind,
        "state": state,
        "spec": dict(spec),
    }
    if progress:
        row["progress"] = dict(progress)
    if result is not None:
        row["result"] = dict(result)
    if error is not None:
        row["error"] = error
    return row
