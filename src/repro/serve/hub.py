"""Fan-out of telemetry frames to many websocket subscribers.

The hub is the backpressure boundary of the service.  Publishing is a
synchronous, non-blocking act: each subscriber owns a bounded
``asyncio.Queue``, ``publish`` does ``put_nowait`` and *drops the
frame for that subscriber* when its queue is full (counting the drop),
so a slow or stalled websocket can never hold up the sampler — and the
sampler never holds up the simulations, which run in executor threads
and are not even aware of the hub.  Each subscriber's dedicated writer
task is the only place that awaits the network.

When a subscriber that missed frames catches up (its queue drains
enough to accept again), the hub enqueues a ``drops`` notice ahead of
the next frame so the client knows its view has a gap.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Dict, Iterable, List, Optional, Set

from repro.serve.protocol import STREAM_KINDS, drops_frame

__all__ = ["Subscriber", "TelemetryHub"]

#: Default per-subscriber queue bound (frames, not bytes).
DEFAULT_QUEUE_FRAMES = 256


class Subscriber:
    """One connected observer: a bounded queue plus its subscription."""

    def __init__(self, name: str,
                 queue_frames: int = DEFAULT_QUEUE_FRAMES) -> None:
        if queue_frames < 2:
            # One slot must always be reservable for the drops notice.
            raise ValueError(
                f"queue_frames must be >= 2, got {queue_frames}"
            )
        self.name = name
        self.queue: "asyncio.Queue[Optional[dict]]" = asyncio.Queue(
            maxsize=queue_frames
        )
        #: Run ids this subscriber wants, or None for "all runs".
        self.runs: Optional[Set[str]] = None
        self.streams: Set[str] = set(STREAM_KINDS)
        self.active = False
        self.dropped_total = 0
        self._dropped_unreported = 0
        self.sent_total = 0

    # -- subscription -------------------------------------------------------
    def subscribe(self, runs, streams: Iterable[str]) -> None:
        self.runs = None if runs == "*" else set(runs)
        self.streams = set(streams)
        self.active = True

    def unsubscribe(self) -> None:
        self.active = False

    def wants(self, stream: str, run_id: Optional[str]) -> bool:
        if not self.active:
            return False
        if stream in STREAM_KINDS and stream not in self.streams:
            return False
        if run_id is not None and self.runs is not None:
            return run_id in self.runs
        return True

    # -- enqueue (publisher side; never blocks) -----------------------------
    def offer(self, frame: dict) -> bool:
        """Queue one frame; on a full queue, count + drop instead."""
        if self._dropped_unreported and self.queue.maxsize - self.queue.qsize() >= 2:
            self.queue.put_nowait(drops_frame(self._dropped_unreported))
            self._dropped_unreported = 0
        try:
            self.queue.put_nowait(frame)
        except asyncio.QueueFull:
            self.dropped_total += 1
            self._dropped_unreported += 1
            return False
        return True

    def finish(self) -> None:
        """Sentinel the writer task on shutdown (best effort)."""
        try:
            self.queue.put_nowait(None)
        except asyncio.QueueFull:
            pass  # a full queue wakes the writer anyway

    # -- drain (writer-task side) -------------------------------------------
    async def frames(self) -> AsyncIterator[dict]:
        """Yield queued frames until the shutdown sentinel."""
        while True:
            frame = await self.queue.get()
            if frame is None:
                return
            self.sent_total += 1
            yield frame


class TelemetryHub:
    """Registry of subscribers with non-blocking fan-out."""

    def __init__(self, queue_frames: int = DEFAULT_QUEUE_FRAMES) -> None:
        self.queue_frames = queue_frames
        self._subscribers: List[Subscriber] = []
        self._serial = 0
        self.published_total = 0

    def __len__(self) -> int:
        return len(self._subscribers)

    def register(self, name: Optional[str] = None, *,
                 queue_frames: Optional[int] = None) -> Subscriber:
        self._serial += 1
        subscriber = Subscriber(name or f"client-{self._serial}",
                                queue_frames or self.queue_frames)
        self._subscribers.append(subscriber)
        return subscriber

    def unregister(self, subscriber: Subscriber) -> None:
        if subscriber in self._subscribers:
            self._subscribers.remove(subscriber)

    def publish(self, frame: dict, *, stream: str = "control",
                run_id: Optional[str] = None) -> int:
        """Offer a frame to every matching subscriber; returns accepts.

        Synchronous by design: the sampler calls this inline each tick
        and must never await a peer.
        """
        self.published_total += 1
        delivered = 0
        for subscriber in self._subscribers:
            if subscriber.wants(stream, run_id):
                if subscriber.offer(frame):
                    delivered += 1
        return delivered

    def stats(self) -> Dict[str, object]:
        return {
            "subscribers": len(self._subscribers),
            "published_total": self.published_total,
            "dropped_total": sum(
                s.dropped_total for s in self._subscribers
            ),
            "clients": [
                {
                    "name": s.name,
                    "active": s.active,
                    "queued": s.queue.qsize(),
                    "sent_total": s.sent_total,
                    "dropped_total": s.dropped_total,
                }
                for s in self._subscribers
            ],
        }

    def shutdown(self) -> None:
        for subscriber in list(self._subscribers):
            subscriber.finish()
