"""The browser dashboard, shipped as one self-contained HTML page.

Served at ``GET /`` by :mod:`repro.serve.app`.  No build step, no CDN,
no external assets — the page opens from an air-gapped lab box, which
is where a Sirius testbed lives.  It connects to ``/ws``, subscribes
to everything and renders:

* a run table (id, kind, state, progress, headline result);
* live queue-occupancy lines (local / vq / fwd / in-flight cells) for
  the selected run, from the ``net_*`` tracked-gauge deltas;
* a goodput line (delivered bits per epoch, from successive
  ``net_delivered_bits`` points);
* a per-node event strip: recent trace events as dots on node rows,
  colored by plane (data / control / failure);
* the subscriber's own drop counter, so a viewer knows when its view
  has gaps (the server drops frames for slow consumers by design).

Colors follow the repo's validated data-viz palette: categorical slots
in fixed order, light and dark both selected (not auto-inverted), text
in ink tokens rather than series colors.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>sirius-repro · live telemetry</title>
<style>
  .viz-root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --surface-2: #f0efec;
    --text-primary: #0b0b0b;
    --text-secondary: #52514e;
    --grid: #e3e2de;
    --series-1: #2a78d6;  /* blue    — local / data plane */
    --series-2: #eb6834;  /* orange  — vq / control plane */
    --series-3: #1baf7a;  /* aqua    — fwd / failures */
    --series-4: #eda100;  /* yellow  — in-flight */
    --status-bad: #e34948;
    --status-good: #008300;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --surface-2: #383835;
      --text-primary: #ffffff;
      --text-secondary: #c3c2b7;
      --grid: #32322f;
      --series-1: #3987e5;
      --series-2: #d95926;
      --series-3: #199e70;
      --series-4: #c98500;
      --status-bad: #e66767;
      --status-good: #00a300;
    }
  }
  body { margin: 0; }
  .viz-root {
    font: 14px/1.45 system-ui, sans-serif;
    background: var(--surface-1); color: var(--text-primary);
    min-height: 100vh; padding: 16px 20px;
  }
  h1 { font-size: 17px; margin: 0 0 2px; }
  .sub { color: var(--text-secondary); font-size: 12px; margin-bottom: 14px; }
  .statusline { display: flex; gap: 16px; align-items: baseline;
                flex-wrap: wrap; margin-bottom: 12px; }
  .pill { font-size: 12px; color: var(--text-secondary); }
  .pill b { color: var(--text-primary); font-weight: 600; }
  .pill.gap b { color: var(--status-bad); }
  table { border-collapse: collapse; width: 100%; margin-bottom: 18px;
          font-variant-numeric: tabular-nums; }
  th, td { text-align: right; padding: 4px 10px; font-size: 13px;
           border-bottom: 1px solid var(--grid); }
  th { color: var(--text-secondary); font-weight: 500; }
  th:first-child, td:first-child { text-align: left; }
  tr.sel td { background: var(--surface-2); cursor: default; }
  tr.row { cursor: pointer; }
  .grid2 { display: grid; gap: 18px;
           grid-template-columns: repeat(auto-fit, minmax(380px, 1fr)); }
  .card h2 { font-size: 13px; font-weight: 600; margin: 0 0 2px; }
  .card .legend { font-size: 12px; color: var(--text-secondary);
                  margin-bottom: 6px; display: flex; gap: 12px;
                  flex-wrap: wrap; }
  .legend .key { display: inline-block; width: 10px; height: 10px;
                 border-radius: 2px; margin-right: 4px;
                 vertical-align: -1px; }
  canvas { width: 100%; height: 190px; display: block; }
  #tooltip { position: fixed; pointer-events: none; display: none;
             background: var(--surface-2); color: var(--text-primary);
             border: 1px solid var(--grid); border-radius: 4px;
             padding: 4px 8px; font-size: 12px; z-index: 9; }
  .state-done { color: var(--status-good); }
  .state-failed { color: var(--status-bad); }
</style>
</head>
<body>
<div class="viz-root">
  <h1>sirius-repro live telemetry</h1>
  <div class="sub">nanosecond optical fabric, observed in flight — select
    a run to chart it</div>
  <div class="statusline">
    <span class="pill">link <b id="link">connecting…</b></span>
    <span class="pill">frames <b id="frames">0</b></span>
    <span class="pill gap">missed <b id="missed">0</b></span>
    <span class="pill">uptime <b id="uptime">–</b></span>
  </div>
  <table id="runs">
    <thead><tr>
      <th>run</th><th>kind</th><th>state</th><th>epoch</th>
      <th>backlog cells</th><th>progress</th><th>goodput</th>
    </tr></thead>
    <tbody></tbody>
  </table>
  <div class="grid2">
    <div class="card">
      <h2>queue occupancy (cells, per sampled epoch)</h2>
      <div class="legend" id="queue-legend"></div>
      <canvas id="queues"></canvas>
    </div>
    <div class="card">
      <h2>delivered payload per sample (bits)</h2>
      <div class="legend"></div>
      <canvas id="goodput"></canvas>
    </div>
    <div class="card">
      <h2>event tracks (recent trace events by node)</h2>
      <div class="legend" id="event-legend"></div>
      <canvas id="events"></canvas>
    </div>
  </div>
  <div id="tooltip"></div>
</div>
<script>
"use strict";
const $ = (id) => document.getElementById(id);
const css = (name) =>
  getComputedStyle(document.querySelector(".viz-root"))
    .getPropertyValue(name).trim();

/* ---- state ----------------------------------------------------------- */
const runs = new Map();        // run_id -> latest row
const series = new Map();      // run_id -> {name -> [[at, value], ...]}
const events = new Map();      // run_id -> recent [{epoch, node, plane}]
const MAX_POINTS = 2000, MAX_EVENTS = 1500;
let selected = null, frameCount = 0, missed = 0;

const QUEUE_SERIES = [
  ["net_local_cells", "local", "--series-1"],
  ["net_vq_cells", "vq", "--series-2"],
  ["net_fwd_cells", "fwd", "--series-3"],
  ["net_in_flight_cells", "in flight", "--series-4"],
];
const PLANES = [
  ["data", "--series-1"], ["control", "--series-2"],
  ["failure", "--series-3"],
];
const planeOf = (type) =>
  type.startsWith("failure") ? "failure"
    : (type.startsWith("grant") || type === "epoch") ? "control" : "data";

/* ---- frame handling -------------------------------------------------- */
function onFrame(frame) {
  frameCount += 1;
  if (frame.type === "hello") {
    frame.runs.forEach(touchRun);
  } else if (frame.type === "run.update") {
    touchRun(frame.run);
  } else if (frame.type === "metrics.delta") {
    absorbMetrics(frame.run_id, frame.samples);
  } else if (frame.type === "events") {
    absorbEvents(frame.run_id, frame.events);
  } else if (frame.type === "drops") {
    missed += frame.count;
  } else if (frame.type === "heartbeat") {
    $("uptime").textContent = frame.uptime_s.toFixed(0) + " s";
    frame.runs.forEach(touchRun);
  }
  $("frames").textContent = String(frameCount);
  $("missed").textContent = String(missed);
  render();
}

function touchRun(row) {
  runs.set(row.run_id, row);
  if (selected === null) selected = row.run_id;
}

function absorbMetrics(runId, samples) {
  let bucket = series.get(runId);
  if (!bucket) { bucket = new Map(); series.set(runId, bucket); }
  for (const sample of samples) {
    if (!sample.points || !sample.points.length) continue;
    let arr = bucket.get(sample.name);
    if (!arr) { arr = []; bucket.set(sample.name, arr); }
    // points_offset lets us detect gaps; on a gap just append — the
    // chart shows the stream that arrived, and "missed" counts the rest.
    arr.push(...sample.points);
    if (arr.length > MAX_POINTS) arr.splice(0, arr.length - MAX_POINTS);
  }
}

function absorbEvents(runId, records) {
  let arr = events.get(runId);
  if (!arr) { arr = []; events.set(runId, arr); }
  for (const ev of records) {
    arr.push({ epoch: ev.epoch, node: ev.node == null ? 0 : ev.node,
               plane: planeOf(ev.type) });
  }
  if (arr.length > MAX_EVENTS) arr.splice(0, arr.length - MAX_EVENTS);
}

/* ---- run table ------------------------------------------------------- */
function render() {
  const body = $("runs").querySelector("tbody");
  body.innerHTML = "";
  for (const row of runs.values()) {
    const tr = document.createElement("tr");
    tr.className = "row" + (row.run_id === selected ? " sel" : "");
    const p = row.progress || {};
    const goodput = row.result && row.result.normalized_goodput != null
      ? row.result.normalized_goodput.toFixed(3)
      : (row.result && row.result.points
         ? row.result.points.length + " pts" : "–");
    const prog = p.points_total
      ? `${p.points_done || 0}/${p.points_total}` : "–";
    tr.innerHTML =
      `<td>${row.run_id}</td><td>${row.kind}</td>` +
      `<td class="state-${row.state}">${row.state}</td>` +
      `<td>${p.epoch ?? "–"}</td><td>${p.backlog_cells ?? "–"}</td>` +
      `<td>${prog}</td><td>${goodput}</td>`;
    tr.onclick = () => { selected = row.run_id; render(); };
    body.appendChild(tr);
  }
  drawQueueChart();
  drawGoodputChart();
  drawEventStrip();
}

/* ---- charts (canvas, one y-axis each, thin 2px lines) ---------------- */
function prepCanvas(canvas) {
  const dpr = window.devicePixelRatio || 1;
  const w = canvas.clientWidth, h = canvas.clientHeight;
  canvas.width = w * dpr; canvas.height = h * dpr;
  const ctx = canvas.getContext("2d");
  ctx.setTransform(dpr, 0, 0, dpr, 0, 0);
  ctx.clearRect(0, 0, w, h);
  return [ctx, w, h];
}

function frame_axes(ctx, w, h, yMax, pad) {
  ctx.strokeStyle = css("--grid");
  ctx.fillStyle = css("--text-secondary");
  ctx.font = "11px system-ui";
  ctx.lineWidth = 1;
  for (const frac of [0, 0.5, 1]) {
    const y = pad.t + (h - pad.t - pad.b) * (1 - frac);
    ctx.beginPath(); ctx.moveTo(pad.l, y); ctx.lineTo(w - pad.r, y);
    ctx.stroke();
    ctx.fillText(fmt(yMax * frac), 4, y - 2);
  }
}
const fmt = (v) => v >= 1e9 ? (v / 1e9).toFixed(1) + "G"
  : v >= 1e6 ? (v / 1e6).toFixed(1) + "M"
  : v >= 1e3 ? (v / 1e3).toFixed(1) + "k" : String(Math.round(v));

function drawLines(canvas, named) {
  const [ctx, w, h] = prepCanvas(canvas);
  const pad = { l: 34, r: 50, t: 6, b: 14 };
  const all = named.flatMap(([, pts]) => pts);
  if (!all.length) return;
  const xMin = Math.min(...all.map(p => p[0]));
  const xMax = Math.max(...all.map(p => p[0]), xMin + 1);
  const yMax = Math.max(...all.map(p => p[1]), 1);
  frame_axes(ctx, w, h, yMax, pad);
  const X = (x) => pad.l + (w - pad.l - pad.r) * (x - xMin) / (xMax - xMin);
  const Y = (y) => pad.t + (h - pad.t - pad.b) * (1 - y / yMax);
  for (const [label, pts, colorVar] of named) {
    if (!pts.length) continue;
    ctx.strokeStyle = css(colorVar);
    ctx.lineWidth = 2; ctx.lineJoin = "round";
    ctx.beginPath();
    pts.forEach((p, i) =>
      i ? ctx.lineTo(X(p[0]), Y(p[1])) : ctx.moveTo(X(p[0]), Y(p[1])));
    ctx.stroke();
    // Selective direct label: series name at the last point, in ink.
    const last = pts[pts.length - 1];
    ctx.fillStyle = css("--text-secondary");
    ctx.fillText(label, Math.min(X(last[0]) + 4, w - pad.r + 2),
                 Y(last[1]) + 3);
  }
  canvas._scale = { xMin, xMax, yMax, pad, w, h };
}

function drawQueueChart() {
  const bucket = series.get(selected) || new Map();
  const named = QUEUE_SERIES.map(([name, label, colorVar]) =>
    [label, bucket.get(name) || [], colorVar]);
  $("queue-legend").innerHTML = QUEUE_SERIES.map(([, label, colorVar]) =>
    `<span><span class="key" style="background:${css(colorVar)}"></span>` +
    `${label}</span>`).join("");
  drawLines($("queues"), named);
}

function drawGoodputChart() {
  const bucket = series.get(selected) || new Map();
  const pts = bucket.get("net_delivered_bits") || [];
  // Cumulative -> per-sample delta: what each tick actually delivered.
  const deltas = [];
  for (let i = 1; i < pts.length; i++) {
    deltas.push([pts[i][0], Math.max(0, pts[i][1] - pts[i - 1][1])]);
  }
  drawLines($("goodput"), [["delivered", deltas, "--series-1"]]);
}

function drawEventStrip() {
  const canvas = $("events");
  const [ctx, w, h] = prepCanvas(canvas);
  const arr = events.get(selected) || [];
  $("event-legend").innerHTML = PLANES.map(([plane, colorVar]) =>
    `<span><span class="key" style="background:${css(colorVar)}"></span>` +
    `${plane}</span>`).join("");
  if (!arr.length) return;
  const pad = { l: 34, r: 10, t: 6, b: 14 };
  const eMin = Math.min(...arr.map(e => e.epoch));
  const eMax = Math.max(...arr.map(e => e.epoch), eMin + 1);
  const nMax = Math.max(...arr.map(e => e.node), 1);
  ctx.fillStyle = css("--text-secondary");
  ctx.font = "11px system-ui";
  ctx.fillText("node " + nMax, 2, pad.t + 8);
  ctx.fillText("node 0", 2, h - pad.b);
  const colors = Object.fromEntries(
    PLANES.map(([plane, colorVar]) => [plane, css(colorVar)]));
  for (const ev of arr) {
    const x = pad.l + (w - pad.l - pad.r) * (ev.epoch - eMin) / (eMax - eMin);
    const y = pad.t + (h - pad.t - pad.b) * (1 - ev.node / nMax);
    ctx.fillStyle = colors[ev.plane];
    ctx.fillRect(x - 1.5, y - 1.5, 3, 3);
  }
}

/* ---- hover tooltip on the line charts -------------------------------- */
function attachHover(canvas, lookup) {
  canvas.addEventListener("mousemove", (e) => {
    const s = canvas._scale;
    const tip = $("tooltip");
    if (!s) { tip.style.display = "none"; return; }
    const rect = canvas.getBoundingClientRect();
    const fx = (e.clientX - rect.left - s.pad.l) /
               (s.w - s.pad.l - s.pad.r);
    const at = s.xMin + Math.max(0, Math.min(1, fx)) * (s.xMax - s.xMin);
    const lines = lookup(Math.round(at));
    if (!lines.length) { tip.style.display = "none"; return; }
    tip.innerHTML = lines.join("<br>");
    tip.style.display = "block";
    tip.style.left = (e.clientX + 12) + "px";
    tip.style.top = (e.clientY + 12) + "px";
  });
  canvas.addEventListener("mouseleave",
    () => { $("tooltip").style.display = "none"; });
}
const nearest = (pts, at) => {
  if (!pts || !pts.length) return null;
  let best = pts[0];
  for (const p of pts)
    if (Math.abs(p[0] - at) < Math.abs(best[0] - at)) best = p;
  return best;
};
attachHover($("queues"), (at) => {
  const bucket = series.get(selected) || new Map();
  const out = [`epoch ≈ ${at}`];
  for (const [name, label] of QUEUE_SERIES) {
    const p = nearest(bucket.get(name), at);
    if (p) out.push(`${label}: ${fmt(p[1])}`);
  }
  return out.length > 1 ? out : [];
});
attachHover($("goodput"), (at) => {
  const bucket = series.get(selected) || new Map();
  const p = nearest(bucket.get("net_delivered_bits"), at);
  return p ? [`epoch ≈ ${at}`, `cumulative: ${fmt(p[1])} bits`] : [];
});

/* ---- websocket ------------------------------------------------------- */
function connect() {
  const proto = location.protocol === "https:" ? "wss" : "ws";
  const sock = new WebSocket(`${proto}://${location.host}/ws`);
  sock.onopen = () => {
    $("link").textContent = "live";
    sock.send(JSON.stringify(
      { type: "subscribe", runs: "*", streams: ["metrics", "events"] }));
  };
  sock.onmessage = (msg) => onFrame(JSON.parse(msg.data));
  sock.onclose = () => {
    $("link").textContent = "reconnecting…";
    setTimeout(connect, 1500);
  };
}
connect();
</script>
</body>
</html>
"""
