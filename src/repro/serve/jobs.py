"""The service's pool of concurrently running simulations.

A job is submitted over HTTP as a small JSON spec, validated into a
:class:`repro.perf.sweep.SiriusSweepJob` (one run) or a list of them
(a load sweep).  Execution is offloaded to a thread-pool executor —
an epoch loop is milliseconds-to-minutes of pure CPU that must never
run on the event loop (lint rule B1002 guards exactly this) — while
the run's live :class:`repro.obs.Observation` stays shared with the
event loop: the sampler reads delta snapshots from the registry and
drains the event tap while the simulation writes into them.

State transitions are marshalled back onto the event loop with
``call_soon_threadsafe``, so every ``RunHandle`` mutation after
submission happens on the loop thread and readers never see torn
state.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.obs import EventTap, Observation
from repro.perf.sweep import (
    ParallelSweepRunner,
    SiriusSweepJob,
    SweepPoint,
    run_sirius_job,
)
from repro.serve.protocol import run_row
from repro.units import KILOBYTE

__all__ = ["JobPool", "JobSpecError", "RunHandle"]

#: States a run moves through (strictly forward).
RUN_STATES = ("pending", "running", "done", "failed")


class JobSpecError(ValueError):
    """A submitted job spec that does not validate."""


#: Accepted spec fields for one simulate run and their defaults.  The
#: names mirror the ``sirius-repro simulate`` CLI flags, not the
#: internal dataclass fields, so a dashboard form and a curl call read
#: the same.
SIMULATE_DEFAULTS: Dict[str, object] = {
    "nodes": 16,
    "grating_ports": 4,
    "load": 0.5,
    "flows": 300,
    "multiplier": 1.5,
    "queue_threshold": 4,
    "ideal": False,
    "mean_flow_kb": 100.0,
    "seed": 1,
    "backend": None,
    "max_epochs": None,
    "sample_every": 4,
    "max_events": 65_536,
}

#: Extra fields a sweep spec accepts on top of the per-run ones.
SWEEP_ONLY_FIELDS = ("loads", "workers")


def _simulate_job(spec: Dict[str, object], label: str) -> SiriusSweepJob:
    return SiriusSweepJob(
        n_nodes=int(spec["nodes"]),  # type: ignore[arg-type]
        grating_ports=int(spec["grating_ports"]),  # type: ignore[arg-type]
        load=float(spec["load"]),  # type: ignore[arg-type]
        n_flows=int(spec["flows"]),  # type: ignore[arg-type]
        uplink_multiplier=float(spec["multiplier"]),  # type: ignore[arg-type]
        queue_threshold=int(spec["queue_threshold"]),  # type: ignore[arg-type]
        ideal=bool(spec["ideal"]),
        mean_flow_bits=float(spec["mean_flow_kb"]) * KILOBYTE,  # type: ignore[arg-type]
        seed=int(spec["seed"]),  # type: ignore[arg-type]
        workload_seed=int(spec["seed"]) + 1,  # type: ignore[arg-type]
        max_epochs=(None if spec["max_epochs"] is None
                    else int(spec["max_epochs"])),  # type: ignore[arg-type]
        backend=spec["backend"],  # type: ignore[arg-type]
        label=label,
    )


def validate_spec(kind: str, params: Dict[str, object]) -> Dict[str, object]:
    """Normalize a submitted spec; raises :class:`JobSpecError`."""
    if kind not in ("simulate", "sweep"):
        raise JobSpecError(f"unknown job kind {kind!r}")
    allowed = set(SIMULATE_DEFAULTS)
    if kind == "sweep":
        allowed |= set(SWEEP_ONLY_FIELDS)
    unknown = set(params) - allowed
    if unknown:
        raise JobSpecError(
            f"unknown {kind} spec fields: {sorted(unknown)} "
            f"(accepted: {sorted(allowed)})"
        )
    spec = dict(SIMULATE_DEFAULTS)
    spec.update(params)
    if kind == "sweep":
        loads = spec.get("loads") or [0.25, 0.5, 1.0]
        if (not isinstance(loads, list) or not loads
                or not all(isinstance(l, (int, float)) and l > 0
                           for l in loads)):
            raise JobSpecError("sweep.loads must be a list of positive loads")
        spec["loads"] = [float(l) for l in loads]
        spec.setdefault("workers", None)
    try:
        # Build (and discard) the job up front so bad numbers fail at
        # submission time with the dataclass's own message, not later
        # inside the executor.
        _simulate_job({k: spec[k] for k in SIMULATE_DEFAULTS}, label="probe")
    except (TypeError, ValueError) as exc:
        raise JobSpecError(str(exc)) from None
    return spec


def _point_summary(point: SweepPoint) -> Dict[str, object]:
    return {
        "label": point.label,
        "load": point.load,
        "n_flows": point.n_flows,
        "completed_flows": point.completed_flows,
        "normalized_goodput": round(point.normalized_goodput, 6),
        "fct_p50_s": point.fct_p50_s,
        "fct_p99_s": point.fct_p99_s,
        "duration_s": point.duration_s,
        "epochs": point.epochs,
        "delivered_cells": point.delivered_cells,
        "failed_flows": point.failed_flows,
    }


@dataclass
class RunHandle:
    """Everything the service tracks about one submitted run."""

    run_id: str
    kind: str
    spec: Dict[str, object]
    obs: Observation
    tap: EventTap
    state: str = "pending"
    error: Optional[str] = None
    result: Optional[Dict[str, object]] = None
    #: Sweep-only: per-point summaries, filled as points complete.
    points_done: int = 0
    points_total: int = 0
    #: Wall-clock seconds the simulation itself took (executor-side).
    sim_wall_s: Optional[float] = None
    #: Delta-snapshot cursor + stream sequence, owned by the sampler.
    cursor: Dict[str, Dict[str, object]] = field(default_factory=dict)
    metrics_seq: int = 0
    events_seq: int = 0
    #: Set (on the loop thread) when the run reaches a terminal state.
    #: Await this instead of polling ``finished``: on a single-core box
    #: a polling waiter's wakeups steal the GIL from the epoch loop.
    done_event: Optional[asyncio.Event] = None

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    async def wait_finished(self) -> None:
        """Block until the run is done or failed (loop thread only)."""
        if self.done_event is not None:
            await self.done_event.wait()
            return
        while not self.finished:  # pragma: no cover - submit always sets it
            await asyncio.sleep(0.05)

    def progress(self) -> Dict[str, object]:
        # get() (never gauge()): reading progress must not register an
        # instrument the simulation later wants with different options.
        registry = self.obs.registry
        progress: Dict[str, object] = {}
        for field_name, metric in (("epoch", "run_epoch"),
                                   ("backlog_cells", "net_backlog_cells"),
                                   ("delivered_bits", "net_delivered_bits")):
            instrument = registry.get(metric)
            if instrument is not None:
                progress[field_name] = instrument.value()
        if self.kind == "sweep":
            progress["points_done"] = self.points_done
            progress["points_total"] = self.points_total
        if self.sim_wall_s is not None:
            progress["sim_wall_s"] = round(self.sim_wall_s, 6)
        return progress

    def row(self) -> Dict[str, object]:
        return run_row(self.run_id, self.kind, self.state, self.spec,
                       progress=self.progress(), result=self.result,
                       error=self.error)


class JobPool:
    """Owns every submitted run and its executor future.

    ``on_update`` (when given) is called on the event loop thread with
    the :class:`RunHandle` after every state change — the service uses
    it to broadcast ``run.update`` frames the moment a run starts,
    finishes a sweep point, completes or fails.
    """

    def __init__(self, *, max_workers: int = 4,
                 on_update: Optional[Callable[[RunHandle], None]] = None,
                 ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.on_update = on_update
        self._runs: Dict[str, RunHandle] = {}
        self._order: List[str] = []
        self._serial = 0
        self._executor = None  # created lazily, inside the running loop

    # -- introspection ------------------------------------------------------
    def runs(self) -> List[RunHandle]:
        return [self._runs[run_id] for run_id in self._order]

    def get(self, run_id: str) -> Optional[RunHandle]:
        return self._runs.get(run_id)

    def active_runs(self) -> List[RunHandle]:
        return [run for run in self.runs() if not run.finished]

    # -- submission ---------------------------------------------------------
    def submit(self, kind: str, params: Dict[str, object]) -> RunHandle:
        """Validate, register and start one run (loop thread only)."""
        spec = validate_spec(kind, params)
        self._serial += 1
        run_id = f"run-{self._serial}"
        obs = Observation.live(
            sample_every=int(spec["sample_every"]),  # type: ignore[arg-type]
            max_events=int(spec["max_events"]),  # type: ignore[arg-type]
        )
        handle = RunHandle(run_id=run_id, kind=kind, spec=spec, obs=obs,
                           tap=obs.tracer.tap(),
                           done_event=asyncio.Event())
        if kind == "sweep":
            handle.points_total = len(spec["loads"])  # type: ignore[arg-type]
        self._runs[run_id] = handle
        self._order.append(run_id)
        loop = asyncio.get_running_loop()
        if self._executor is None:
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="sirius-serve-run",
            )
        handle.state = "running"
        self._notify(handle)
        if kind == "simulate":
            work = self._execute_simulate
        else:
            work = self._execute_sweep
        future = loop.run_in_executor(self._executor, work, handle, loop)
        future.add_done_callback(
            lambda fut, h=handle: self._finish(h, fut)
        )
        return handle

    # -- executor-side work (never touches handle state directly) ----------
    def _execute_simulate(self, handle: RunHandle,
                          loop: asyncio.AbstractEventLoop,
                          ) -> Dict[str, object]:
        job = _simulate_job(
            {k: handle.spec[k] for k in SIMULATE_DEFAULTS},
            label=handle.run_id,
        )
        started = time.perf_counter()
        point = run_sirius_job(job, obs=handle.obs)
        wall = time.perf_counter() - started
        summary = _point_summary(point)
        summary["sim_wall_s"] = round(wall, 6)
        return summary

    def _execute_sweep(self, handle: RunHandle,
                       loop: asyncio.AbstractEventLoop,
                       ) -> Dict[str, object]:
        spec = handle.spec
        jobs = [
            _simulate_job(
                {**{k: spec[k] for k in SIMULATE_DEFAULTS}, "load": load},
                label=f"{handle.run_id}@{load}",
            )
            for load in spec["loads"]  # type: ignore[union-attr]
        ]
        runner = ParallelSweepRunner(spec.get("workers"))  # type: ignore[arg-type]
        points: List[Optional[SweepPoint]] = [None] * len(jobs)

        def on_point(index: int, point: SweepPoint) -> None:
            # Executor thread: marshal the progress tick to the loop.
            loop.call_soon_threadsafe(self._sweep_point_done, handle)

        started = time.perf_counter()
        for index, point in runner.map_stream(run_sirius_job, jobs,
                                              on_result=on_point):
            points[index] = point
        wall = time.perf_counter() - started
        return {
            "points": [_point_summary(p) for p in points if p is not None],
            "sim_wall_s": round(wall, 6),
        }

    # -- loop-side state transitions ----------------------------------------
    def _sweep_point_done(self, handle: RunHandle) -> None:
        handle.points_done += 1
        self._notify(handle)

    def _finish(self, handle: RunHandle, future) -> None:
        exc = future.exception()
        if exc is not None:
            handle.state = "failed"
            handle.error = f"{type(exc).__name__}: {exc}"
        else:
            result = future.result()
            handle.sim_wall_s = result.get("sim_wall_s")
            handle.result = result
            handle.state = "done"
        if handle.done_event is not None:
            handle.done_event.set()
        self._notify(handle)

    def _notify(self, handle: RunHandle) -> None:
        if self.on_update is not None:
            self.on_update(handle)

    # -- shutdown -----------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None
