"""A deliberately small HTTP/1.1 layer for the telemetry service.

Request parsing and response serialization over asyncio streams —
nothing more.  The service needs four verbs' worth of HTTP (a job API,
a couple of JSON GETs, the dashboard page and the websocket upgrade),
and the container image has no asyncio HTTP framework, so this module
implements exactly that subset with hard limits on header and body
sizes.  Routing lives in :mod:`repro.serve.app`; the websocket
handshake lives in :mod:`repro.serve.websocket`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "read_request",
    "response_bytes",
    "json_response",
]

#: Limits: a telemetry API request is tiny; anything larger is abuse.
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK", 201: "Created", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    413: "Payload Too Large", 426: "Upgrade Required",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A request the server refuses; carries the response status."""

    def __init__(self, status: int, reason: str) -> None:
        super().__init__(reason)
        self.status = status
        self.reason = reason


@dataclass
class HttpRequest:
    """One parsed request (headers lower-cased, query decoded)."""

    method: str
    target: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """The body as JSON (raises :class:`HttpError` 400 when not)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not JSON: {exc}") from None

    def wants_websocket(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        return (self.headers.get("upgrade", "").lower() == "websocket"
                and "upgrade" in connection)


async def read_request(reader: asyncio.StreamReader,
                       ) -> Optional[HttpRequest]:
    """Parse one request; None on a cleanly closed idle connection."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    query = {
        name: values[-1]
        for name, values in parse_qs(split.query).items()
    }
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated request body") from None
    return HttpRequest(method=method.upper(), target=target,
                       path=split.path, query=query, headers=headers,
                       body=body)


def response_bytes(status: int, body: bytes = b"",
                   content_type: str = "text/plain; charset=utf-8",
                   extra_headers: Tuple[Tuple[str, str], ...] = (),
                   ) -> bytes:
    """Serialize one complete, connection-close HTTP response."""
    reason = _REASONS.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {reason}"]
    head.append(f"Content-Type: {content_type}")
    head.append(f"Content-Length: {len(body)}")
    head.append("Connection: close")
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def json_response(status: int, payload: object) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return response_bytes(status, body, "application/json")
