"""``sirius-repro watch`` — a terminal client for the live service.

Connects to a running ``sirius-repro serve``, subscribes to all runs
and prints one line per telemetry frame: run-state changes, metric
deltas (headline gauges only), event batches and the client's own gap
notices.  Rendering is a pure function from frame to text so the tests
exercise it without a terminal (and the dashboard stays the rich view;
``watch`` is for shells and CI logs).
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional

from repro.serve.protocol import decode_frame
from repro.serve.websocket import client_handshake

__all__ = ["render_frame", "watch"]

#: Gauges worth a terminal line (the rest stream to the dashboard).
_HEADLINE_GAUGES = (
    "run_epoch",
    "net_backlog_cells",
    "net_delivered_bits",
)


def _last_value(sample: Dict[str, object]) -> Optional[object]:
    points = sample.get("points")
    if isinstance(points, list) and points:
        last = points[-1]
        if isinstance(last, (list, tuple)) and len(last) == 2:
            return last[1]
    return sample.get("value")


def render_frame(frame: Dict[str, object]) -> Optional[str]:
    """One frame -> one display line (None: nothing worth printing)."""
    frame_type = frame.get("type")
    if frame_type == "hello":
        runs = frame.get("runs", [])
        return (f"connected (protocol {frame.get('protocol')}); "
                f"{len(runs)} run(s) known")  # type: ignore[arg-type]
    if frame_type == "run.update":
        run = frame.get("run", {})
        parts = [f"{run.get('run_id')} [{run.get('kind')}] "
                 f"{run.get('state')}"]
        progress = run.get("progress") or {}
        if "points_total" in progress:
            parts.append(
                f"points {progress.get('points_done', 0)}"
                f"/{progress['points_total']}"
            )
        if run.get("error"):
            parts.append(f"error: {run['error']}")
        result = run.get("result") or {}
        if "normalized_goodput" in result:
            parts.append(f"goodput {result['normalized_goodput']}")
        if "sim_wall_s" in result:
            parts.append(f"wall {result['sim_wall_s']}s")
        return "  ".join(parts)
    if frame_type == "metrics.delta":
        named = {s.get("name"): s for s in frame.get("samples", [])}  # type: ignore[union-attr]
        shown: List[str] = []
        for name in _HEADLINE_GAUGES:
            if name in named:
                shown.append(f"{name}={_last_value(named[name])}")
        if not shown:
            return None
        return (f"{frame.get('run_id')} metrics#{frame.get('seq')}  "
                + "  ".join(shown))
    if frame_type == "events":
        events = frame.get("events", [])
        counts: Dict[str, int] = {}
        for event in events:  # type: ignore[union-attr]
            event_type = str(event.get("type"))
            counts[event_type] = counts.get(event_type, 0) + 1
        summary = " ".join(
            f"{name}×{count}" for name, count in sorted(counts.items())
        ) or "(empty)"
        line = (f"{frame.get('run_id')} events#{frame.get('seq')}  "
                f"{summary}")
        if frame.get("tap_dropped"):
            line += f"  [tap dropped {frame['tap_dropped']}]"
        return line
    if frame_type == "drops":
        return (f"!! this client missed {frame.get('count')} frame(s) "
                f"(slow consumer)")
    if frame_type == "heartbeat":
        runs = frame.get("runs", [])
        active = sum(
            1 for run in runs  # type: ignore[union-attr]
            if run.get("state") in ("pending", "running")
        )
        return (f"heartbeat  uptime {frame.get('uptime_s')}s  "
                f"{active} active / {len(runs)} total run(s)")  # type: ignore[arg-type]
    if frame_type == "error":
        return f"server rejected a request: {frame.get('reason')}"
    return None


async def watch(host: str, port: int, *,
                runs: object = "*",
                streams: Optional[List[str]] = None,
                max_frames: Optional[int] = None,
                print_fn=print) -> int:
    """Stream the service's telemetry to ``print_fn``; returns frames seen.

    ``max_frames`` bounds the session (tests); None streams until the
    server closes the connection or the task is cancelled.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        ws = await client_handshake(reader, writer, f"{host}:{port}")
        await ws.send_text(json.dumps({
            "type": "subscribe",
            "runs": runs,
            "streams": streams or ["metrics", "events"],
        }))
        seen = 0
        while max_frames is None or seen < max_frames:
            text = await ws.recv()
            if text is None:
                break
            seen += 1
            line = render_frame(decode_frame(text))
            if line is not None:
                print_fn(line)
        return seen
    finally:
        writer.close()
