"""The live telemetry service (``sirius-repro serve`` / ``watch``).

A stdlib-only asyncio stack: :mod:`repro.serve.http` parses requests,
:mod:`repro.serve.websocket` speaks RFC 6455, :mod:`repro.serve.jobs`
runs simulations in executor threads, :mod:`repro.serve.hub` fans
frames out with per-subscriber backpressure, and
:mod:`repro.serve.app` ties them into :class:`TelemetryServer`.  The
wire vocabulary lives in :mod:`repro.serve.protocol`; the browser
dashboard in :mod:`repro.serve.dashboard`; the terminal client in
:mod:`repro.serve.watch`.
"""

from repro.serve.app import TelemetryServer, serve_forever
from repro.serve.hub import Subscriber, TelemetryHub
from repro.serve.jobs import JobPool, JobSpecError, RunHandle
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.watch import watch

__all__ = [
    "PROTOCOL_VERSION",
    "JobPool",
    "JobSpecError",
    "ProtocolError",
    "RunHandle",
    "Subscriber",
    "TelemetryHub",
    "TelemetryServer",
    "serve_forever",
    "watch",
]
