"""Failure detection, blast radius and schedule adjustment (paper §4.5).

Load-balanced routing increases the *blast radius* of a node failure:
every node detours traffic through every other node, so one failed rack
degrades everyone (unlike a conventional Clos where a dead ToR strands
only its own rack).  Sirius' mitigations, modelled here:

* **Fast detection** — the cyclic schedule connects every pair once per
  epoch (microseconds), so a silent peer is noticed within a few missed
  visits, even for grey failures that only show on an actual link.
* **Proportional degradation** — a failed node costs each survivor
  exactly ``1/N`` of its bandwidth (its slots to/through the dead node
  idle); nothing blackholes once the failure is announced.
* **Schedule adjustment** — for failures that persist, all nodes switch
  (consistently) to a schedule that omits the failed node, regaining
  the lost bandwidth at the price of a coordinated update.

The detector is a per-peer miss counter driven by the epoch loop; the
:class:`FailurePlan` drives node failures/recoveries in
:class:`repro.core.network.SiriusNetwork` simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.obs.metrics import NULL_REGISTRY


@dataclass(frozen=True)
class FailureEvent:
    """A node failing or recovering at a given epoch."""

    epoch: int
    node: int
    #: True = the node fails at ``epoch``; False = it recovers.
    fails: bool = True

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError(f"epoch cannot be negative, got {self.epoch}")
        if self.node < 0:
            raise ValueError(f"node cannot be negative, got {self.node}")


class FailurePlan:
    """A scripted sequence of failures/recoveries for a simulation."""

    def __init__(self, events: Sequence[FailureEvent] = ()) -> None:
        self.events = sorted(events, key=lambda e: e.epoch)
        self._index = 0
        self.failed: Set[int] = set()
        self._registry = NULL_REGISTRY

    def observe_with(self, obs) -> None:
        """Publish fired events into an :class:`repro.obs.Observation`'s
        registry (``failure_events_total{kind}``)."""
        self._registry = obs.registry

    def advance_to(self, epoch: int) -> List[FailureEvent]:
        """Apply all events up to and including ``epoch``.

        Returns the events that fired; :attr:`failed` reflects the new
        state.
        """
        fired: List[FailureEvent] = []
        while (self._index < len(self.events)
               and self.events[self._index].epoch <= epoch):
            event = self.events[self._index]
            if event.fails:
                self.failed.add(event.node)
            else:
                self.failed.discard(event.node)
            fired.append(event)
            self._index += 1
        if fired and self._registry.enabled:
            counter = self._registry.counter(
                "failure_events_total", "scripted failures/recoveries fired",
            )
            for event in fired:
                counter.inc(kind="fail" if event.fails else "recover")
        return fired

    def is_failed(self, node: int) -> bool:
        return node in self.failed

    def next_event_epoch(self) -> Optional[int]:
        """Epoch of the next unfired event, or None when exhausted.

        A pure peek — :attr:`failed` and the cursor are untouched.  The
        vectorized backend's idle-epoch skip uses this to avoid jumping
        over a scripted failure or recovery.
        """
        if self._index < len(self.events):
            return self.events[self._index].epoch
        return None

    @classmethod
    def single_failure(cls, node: int, at_epoch: int,
                       recover_at: Optional[int] = None) -> "FailurePlan":
        """Convenience: one node fails (and optionally recovers)."""
        events = [FailureEvent(at_epoch, node, fails=True)]
        if recover_at is not None:
            if recover_at <= at_epoch:
                raise ValueError("recovery must come after the failure")
            events.append(FailureEvent(recover_at, node, fails=False))
        return cls(events)


class FailureDetector:
    """Per-peer miss counting over the cyclic schedule (§4.5).

    Every epoch each node expects to hear from every other node (a cell
    or an idle keep-alive on the scheduled slot).  ``threshold``
    consecutive misses declare the peer failed; a single successful
    visit clears the counter (handling grey/sporadic failures without
    flapping requires a few misses in a row).
    """

    def __init__(self, n_nodes: int, node: int, *, threshold: int = 3,
                 registry=None) -> None:
        if n_nodes < 2:
            raise ValueError("need at least 2 nodes")
        if not 0 <= node < n_nodes:
            raise ValueError(f"node {node} out of range")
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.n_nodes = n_nodes
        self.node = node
        self.threshold = threshold
        self._misses: Dict[int, int] = {}
        self.suspected: Set[int] = set()
        #: Optional repro.obs metrics registry: publishes per-peer miss
        #: counts and suspicion transitions.
        self._registry = registry if registry is not None else NULL_REGISTRY

    def observe_epoch(self, heard_from: Set[int]) -> List[int]:
        """Record one epoch of visits; returns peers newly suspected."""
        newly = []
        publishing = self._registry.enabled
        for peer in range(self.n_nodes):
            if peer == self.node:
                continue
            if peer in heard_from:
                self._misses.pop(peer, None)
                self.suspected.discard(peer)
                continue
            misses = self._misses.get(peer, 0) + 1
            self._misses[peer] = misses
            if publishing:
                self._registry.counter(
                    "detector_misses_total", "scheduled visits missed",
                ).inc(node=self.node, peer=peer)
            if misses >= self.threshold and peer not in self.suspected:
                self.suspected.add(peer)
                newly.append(peer)
                if publishing:
                    self._registry.counter(
                        "detector_suspected_total", "peers declared failed",
                    ).inc(node=self.node)
        return newly

    def detection_latency_epochs(self) -> int:
        """Worst-case epochs from failure to suspicion."""
        return self.threshold

    def detection_latency_s(self, epoch_duration_s: float) -> float:
        """Worst-case wall-clock detection latency (§4.5: microseconds)."""
        if epoch_duration_s <= 0:
            raise ValueError("epoch duration must be positive")
        return self.threshold * epoch_duration_s


def surviving_bandwidth_fraction(n_nodes: int, n_failed: int,
                                 schedule_adjusted: bool = False) -> float:
    """Usable bandwidth fraction per surviving node after failures.

    Without adjustment, a survivor idles its slots to each failed node:
    it keeps ``(N - 1 - f) / (N - 1)`` of its uplink bandwidth (§4.5:
    "failure of a node means the effective uplink bandwidth of each
    node is reduced by 1/N").  After the consistent schedule update the
    remaining nodes cycle only among themselves and regain everything.
    """
    if n_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if not 0 <= n_failed < n_nodes:
        raise ValueError(
            f"n_failed must be in [0, {n_nodes}), got {n_failed}"
        )
    if schedule_adjusted:
        return 1.0
    usable_peers = n_nodes - 1 - n_failed
    return usable_peers / (n_nodes - 1)


def blast_radius(n_nodes: int, deployment: str = "rack") -> Tuple[int, str]:
    """Nodes affected by a single rack/node failure (§4.5).

    In a conventional Clos a dead ToR strands only its own rack; with
    Sirius' load-balanced routing every node loses the detour capacity
    through the failed node — the blast radius is the whole deployment,
    but the impact is a proportional (1/N) bandwidth loss rather than an
    outage.
    """
    if n_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if deployment not in ("rack", "server"):
        raise ValueError(f"unknown deployment {deployment!r}")
    return n_nodes, (
        "all nodes lose 1/N detour bandwidth; the failed "
        f"{deployment}'s own endpoints lose connectivity"
    )


class AdjustedSchedule:
    """A consistent schedule update that omits failed nodes (§4.5).

    Survivors renumber themselves into a dense range and run the cyclic
    schedule over the reduced set, regaining the bandwidth that idle
    slots to failed nodes would waste.  The mapping is deterministic
    from the failed set, so all nodes compute the same update without
    extra coordination once the failure announcement propagates.
    """

    def __init__(self, n_nodes: int, failed: Set[int]) -> None:
        if n_nodes < 2:
            raise ValueError("need at least 2 nodes")
        bad = [f for f in failed if not 0 <= f < n_nodes]
        if bad:
            raise ValueError(f"failed nodes out of range: {bad}")
        if len(failed) >= n_nodes - 1:
            raise ValueError("fewer than 2 survivors; no schedule possible")
        self.n_nodes = n_nodes
        self.failed = set(failed)
        self.survivors: List[int] = [
            n for n in range(n_nodes) if n not in self.failed
        ]
        self._dense: Dict[int, int] = {
            node: index for index, node in enumerate(self.survivors)
        }

    @property
    def epoch_slots(self) -> int:
        """Slots per adjusted epoch: one visit to each survivor."""
        return len(self.survivors)

    def peer_at(self, node: int, slot: int) -> int:
        """The survivor that ``node`` is connected to at ``slot``."""
        if node in self.failed:
            raise ValueError(f"node {node} is failed")
        if node not in self._dense:
            raise ValueError(f"node {node} out of range")
        if slot < 0:
            raise ValueError("slot cannot be negative")
        dense = self._dense[node]
        peer_dense = (dense + slot) % len(self.survivors)
        return self.survivors[peer_dense]

    def verify_round_robin(self) -> None:
        """Every survivor meets every survivor once per adjusted epoch."""
        for node in self.survivors:
            met = {self.peer_at(node, slot) for slot in range(self.epoch_slots)}
            assert met == set(self.survivors), (
                f"survivor {node} meets {sorted(met)}, expected all survivors"
            )

    def bandwidth_fraction(self) -> float:
        """Usable bandwidth after adjustment (always 1.0)."""
        return surviving_bandwidth_fraction(
            self.n_nodes, len(self.failed), schedule_adjusted=True
        )
