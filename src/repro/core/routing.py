"""Valiant load-balanced routing (paper §4.2).

Traffic from a node, irrespective of its destination, is detoured
uniformly through the other nodes: the source picks a random
intermediate for every cell, sends the cell to the intermediate on the
cyclic schedule, and the intermediate forwards it to the final
destination on its own slot.  Detouring converts any demand matrix into
a (near-)uniform one, which the equal-rate cyclic schedule serves
perfectly; the cost is up to 2× worst-case throughput (Chang et al.
[12]), which Sirius offsets with extra uplinks.

Two details from the paper:

* a cell is detoured through *at most one* intermediate — cells arriving
  at a node from the optical network are either consumed (final
  destination) or sent directly to the destination, never re-detoured;
* the destination itself is a legal "intermediate" (the uniform choice
  is over all nodes other than the source), in which case the cell
  takes a single hop.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence


class ValiantRouter:
    """Uniform-random intermediate selection for one source node.

    Parameters
    ----------
    n_nodes:
        Total nodes in the network.
    node:
        The source node this router serves (never chosen as its own
        intermediate).
    rng:
        Random source; pass a seeded ``random.Random`` for reproducible
        simulations.
    exclude_destination:
        When True the final destination is excluded from the
        intermediate choice, forcing every cell through exactly two
        hops.  The paper's design allows the destination (single-hop);
        the flag exists for the ablation benchmarks.
    """

    def __init__(self, n_nodes: int, node: int, *,
                 rng: Optional[random.Random] = None,
                 exclude_destination: bool = False) -> None:
        if n_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {n_nodes}")
        if not 0 <= node < n_nodes:
            raise ValueError(f"node {node} out of range [0, {n_nodes})")
        self.n_nodes = n_nodes
        self.node = node
        self.rng = rng or random.Random(node)
        self.exclude_destination = exclude_destination
        self._others: List[int] = [n for n in range(n_nodes) if n != node]

    def pick_intermediate(self, dst: int) -> int:
        """Choose an intermediate for a cell destined to ``dst``."""
        self._check_dst(dst)
        if not self.exclude_destination:
            return self.rng.choice(self._others)
        if self.n_nodes == 2:
            raise ValueError(
                "cannot exclude the destination in a 2-node network"
            )
        while True:
            choice = self.rng.choice(self._others)
            if choice != dst:
                return choice

    def sample_intermediates(self, k: int) -> List[int]:
        """``k`` distinct intermediates, uniformly at random.

        Used by the congestion-control request phase, which sends at
        most one request per intermediate per epoch (§4.3); ``k`` is
        capped at the number of candidate nodes.
        """
        if k < 0:
            raise ValueError(f"k cannot be negative, got {k}")
        k = min(k, len(self._others))
        return self.rng.sample(self._others, k)

    def hops_for(self, intermediate: int, dst: int) -> int:
        """Number of optical hops a cell takes via ``intermediate``."""
        self._check_dst(dst)
        return 1 if intermediate == dst else 2

    @property
    def candidates(self) -> Sequence[int]:
        """All legal intermediates for this source."""
        return tuple(self._others)

    def _check_dst(self, dst: int) -> None:
        if not 0 <= dst < self.n_nodes:
            raise ValueError(f"dst {dst} out of range [0, {self.n_nodes})")
        if dst == self.node:
            raise ValueError("destination equals the source node")
