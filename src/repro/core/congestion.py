"""Request/grant congestion control (paper §4.3, Fig 15).

Queuing in Sirius happens only at the nodes: an intermediate node ``I``
queues a cell for destination ``D`` whenever two or more sources detour
cells for ``D`` through ``I`` in the same epoch (``I`` can drain only
one cell per destination per epoch).  The protocol bounds this queue at
``Q`` cells:

1. **Request** — at the start of each epoch, a source scans its LOCAL
   buffer and, for each queued cell, sends a request to a uniformly
   random intermediate (at most one request per intermediate per
   epoch).  Requests are piggybacked on the cells of the cyclic
   schedule, costing no extra bandwidth.
2. **Grant** — each node considers the requests received in the
   previous epoch; per destination ``D`` it picks one at random and
   grants it iff ``queued(D) + outstanding_grants(D) < Q``.  Requests
   whose destination is the granting node itself are always granted
   (the "intermediate" is the destination; the cell is consumed on
   arrival and never occupies a forward queue).
3. **Send** — when the grant reaches the source, the source moves one
   cell for ``D`` from LOCAL into the virtual queue for ``I`` and
   transmits it on its next slot to ``I``.

``Q = 2`` is the feasible minimum (a node may receive a new cell for
``D`` before its slot to ``D`` comes around); the paper selects
``Q = 4`` as the best FCT/goodput compromise (Fig 10).

This module holds the protocol *parameters* and the grant-side decision
logic; the per-epoch state machine is driven by
:class:`repro.core.network.SiriusNetwork` with per-node state in
:class:`repro.core.node.SiriusNode`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: The paper's chosen per-destination queue bound (Fig 10 analysis).
DEFAULT_QUEUE_THRESHOLD = 4
#: Epochs between sending a request and learning its outcome: the request
#: rides epoch e's cells, is decided during epoch e+1, and the grant rides
#: epoch e+1's cells back — known to the source at the start of epoch e+2.
REQUEST_ROUND_TRIP_EPOCHS = 2


@dataclass(frozen=True)
class CongestionConfig:
    """Parameters of the request/grant protocol.

    Parameters
    ----------
    queue_threshold:
        ``Q``: maximum cells queued (plus outstanding grants) per
        destination at an intermediate node.  Minimum feasible value 2.
    ideal:
        When True the protocol is disabled entirely and replaced by the
        paper's SIRIUS (IDEAL) baseline: cells are pushed immediately to
        a uniformly random intermediate with unbounded per-destination
        queues (per-flow-queue back-pressure idealization).  Provides
        the performance bound of Fig 9.
    exclude_destination_intermediate:
        Ablation switch: forbid single-hop routing (see
        :class:`repro.core.routing.ValiantRouter`).
    selection:
        How request targets and grant winners are picked.

        * ``"drrm"`` (default) — desynchronized round-robin pointers on
          both sides, the DRRM discipline the paper builds on [13]:
          each source pairs its backlogged destinations with
          intermediates through a rotating offset, and each grant
          pointer cycles over sources.  At saturation the pointers
          self-organize into a collision-free pattern, approaching
          100 % matching efficiency — the behaviour the paper's
          throughput results (Fig 9b, Fig 12) exhibit.
        * ``"random"`` — the uniform random choices of the §4.3 prose;
          a single random-matching iteration saturates near 63 %
          (PIM-style), provided as an ablation
          (``benchmarks/test_ablation_selection.py``).
    max_grants_per_destination:
        Cap on grants one intermediate issues per destination per
        epoch.  ``None`` (default) bounds grants only by the ``Q`` test
        — bursts refill a drained queue, which is what lets the
        protocol sustain ~100 % hot-spot throughput (the DRRM property
        §4.3 cites).  Setting ``1`` enforces the literal
        one-grant-per-epoch reading, which caps the grant rate at
        exactly the drain rate and loses throughput to queue-idle
        epochs (provided as an ablation).
    """

    queue_threshold: int = DEFAULT_QUEUE_THRESHOLD
    ideal: bool = False
    exclude_destination_intermediate: bool = False
    selection: str = "drrm"
    max_grants_per_destination: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.ideal and self.queue_threshold < 2:
            raise ValueError(
                "queue threshold below 2 can deadlock the schedule "
                f"(paper §4.3); got {self.queue_threshold}"
            )
        if self.selection not in ("drrm", "random"):
            raise ValueError(
                f"selection must be 'drrm' or 'random', got {self.selection!r}"
            )
        if (self.max_grants_per_destination is not None
                and self.max_grants_per_destination < 1):
            raise ValueError(
                "max_grants_per_destination must be None or >= 1, got "
                f"{self.max_grants_per_destination}"
            )

    @property
    def effective_grant_cap(self) -> int:
        """Grants one intermediate may issue per destination per epoch.

        The ``Q`` admission test is the real bound when
        ``max_grants_per_destination`` is unset (the default); an
        explicit cap is an ablation.  The network hoists this out of
        its epoch loop — it is configuration, not per-epoch state.
        """
        return self.max_grants_per_destination or self.queue_threshold


def may_grant(queued: int, outstanding: int, threshold: int) -> bool:
    """Grant-side admission test (§4.3).

    A grant may be issued for destination ``D`` iff the cells already
    queued for ``D`` plus grants already outstanding for ``D`` stay
    below the threshold ``Q``.
    """
    if queued < 0 or outstanding < 0:
        raise ValueError("queue and grant counts cannot be negative")
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    return queued + outstanding < threshold


def grant_admission_count(n_sources: int, queued: int, outstanding: int,
                          threshold: int, cap: int) -> int:
    """Closed form of the grant phase's break-on-deny loop (§4.3).

    The per-destination loop grants requests one by one, incrementing
    the outstanding count after each, until the :func:`may_grant` test
    fails or ``cap`` grants have been issued — so the number granted is
    exactly ``min(requests, cap, Q - queued - outstanding)`` (floored
    at zero).  The vectorized backend uses this to admit a whole
    request batch in one step; :meth:`SiriusNode.decide_grants` keeps
    the sequential loop (its per-request observability callbacks need
    the individual decisions) and the parity suite pins the two equal.
    """
    if n_sources < 0 or cap < 0:
        raise ValueError("request and cap counts cannot be negative")
    if queued < 0 or outstanding < 0:
        raise ValueError("queue and grant counts cannot be negative")
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    return min(n_sources, cap, max(0, threshold - queued - outstanding))


def record_grant_decision(registry, tracer, intermediate: int,
                          src: int, dst: int, *, granted: bool,
                          direct: bool = False,
                          reason: Optional[str] = None) -> None:
    """Publish one grant decision into the observability planes.

    The protocol's visible behaviour — how often the ``Q`` admission
    test or the direct-grant window refuses a request — lives here in
    the congestion layer, next to :func:`may_grant` whose verdict it
    reports.  Counters: ``grants_issued_total{src,dst}`` (the paper's
    per-pair grant rate) and ``grants_denied_total{reason}``; matching
    ``grant.issued`` / ``grant.denied`` trace events carry the same
    fields.  Call sites gate on the planes' ``enabled`` flags, so the
    un-observed cost is zero.
    """
    if granted:
        if registry.enabled:
            registry.counter(
                "grants_issued_total", "grants issued per (src, dst) pair",
            ).inc(src=src, dst=dst)
        if tracer.enabled:
            tracer.emit("grant.issued", node=intermediate,
                        src=src, dst=dst, direct=direct)
    else:
        if registry.enabled:
            registry.counter(
                "grants_denied_total", "requests refused, by reason",
            ).inc(reason=reason or "unknown")
        if tracer.enabled:
            tracer.emit("grant.denied", node=intermediate,
                        src=src, dst=dst, reason=reason or "unknown")


def max_queue_delay_epochs(threshold: int) -> int:
    """Upper bound on epochs a cell waits at an intermediate.

    A cell entering a forward queue behind at most ``Q - 1`` cells (the
    grant test admitted it below the threshold) waits at most ``Q - 1``
    epochs for its turn, plus the epoch in flight — the "bounded
    latency" property the protocol trades the initial round-trip for.
    """
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    return threshold
