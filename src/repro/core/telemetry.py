"""Per-epoch time-series collection for Sirius simulations.

The §7 figures report end-of-run aggregates; operating a real Sirius
needs the time dimension — queue growth under bursts, drain behaviour
after overload, the footprint of a failure.  A :class:`Telemetry`
object passed to :meth:`repro.core.network.SiriusNetwork.run` samples
the network once per epoch:

* aggregate LOCAL / virtual-queue / forward-queue occupancy (cells),
* cells in flight through the passive core,
* cumulative delivered payload,

at a configurable sampling period so long runs stay cheap.

Since the :mod:`repro.obs` subsystem landed, ``Telemetry`` is a thin
compatibility view over a :class:`repro.obs.metrics.MetricsRegistry`:
each series is a tracked gauge, so a run sampled through ``Telemetry``
is exportable through the same trace machinery as everything else
(pass your own ``registry=`` to share it with an
:class:`repro.obs.Observation`).  The public surface — the series
attributes, ``peak``/``summary``/``throughput_cells`` — is unchanged.

:func:`ascii_sparkline` is re-exported from :mod:`repro.obs.report`,
its canonical home.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import ascii_sparkline  # noqa: F401  (compat re-export)

__all__ = ["Telemetry", "ascii_sparkline"]


class Telemetry:
    """Epoch-sampled counters of one simulation run.

    Parameters
    ----------
    sample_every:
        Sampling period in epochs (1 = every epoch).
    registry:
        Metrics registry backing the series; a private one by default.

    Mid-run attachment: the first :meth:`sample` call (stored or not)
    rebases the delivered-bits baseline, so
    :meth:`throughput_cells`'s first delta covers only the first
    sampled interval rather than the whole run so far.
    """

    #: Gauge names backing each series, in sample() order.
    _SERIES_GAUGES = {
        "local": "telemetry_local_cells",
        "vq": "telemetry_vq_cells",
        "fwd": "telemetry_fwd_cells",
        "in_flight": "telemetry_in_flight_cells",
        "delivered": "telemetry_delivered_bits",
    }

    def __init__(self, sample_every: int = 1,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if sample_every < 1:
            raise ValueError(
                f"sampling period must be >= 1, got {sample_every}"
            )
        self.sample_every = sample_every
        self.registry = registry if registry is not None else MetricsRegistry()
        self._gauges = {
            series: self.registry.gauge(name, track=True)
            for series, name in self._SERIES_GAUGES.items()
        }
        #: Cumulative delivered bits at the first observed epoch — the
        #: reference point for the first throughput delta.  None until
        #: the first sample() call.
        self.baseline_delivered_bits: Optional[float] = None

    # -- collection (called by the simulator) -----------------------------------
    def sample(self, epoch: int, nodes: Sequence, in_flight: int,
               delivered_bits: float) -> None:
        """Record one epoch's aggregate state (if due for sampling)."""
        if self.baseline_delivered_bits is None:
            # First observation: if sampling starts mid-run (epoch > 0)
            # the cumulative count so far predates the series and must
            # not be charged to the first sampled interval.
            self.baseline_delivered_bits = (
                delivered_bits if epoch > 0 else 0.0
            )
        if epoch % self.sample_every:
            return
        self._gauges["local"].set(
            sum(n.local_cells for n in nodes), at=epoch
        )
        self._gauges["vq"].set(sum(n.vq_cells for n in nodes), at=epoch)
        self._gauges["fwd"].set(sum(n.fwd_cells for n in nodes), at=epoch)
        self._gauges["in_flight"].set(in_flight, at=epoch)
        self._gauges["delivered"].set(delivered_bits, at=epoch)

    # -- series views (compatibility surface) ----------------------------------
    @property
    def epochs(self) -> List[int]:
        return [int(at) for at, _value in self._gauges["local"].series()]

    @property
    def local_cells(self) -> List[int]:
        return [value for _at, value in self._gauges["local"].series()]

    @property
    def vq_cells(self) -> List[int]:
        return [value for _at, value in self._gauges["vq"].series()]

    @property
    def fwd_cells(self) -> List[int]:
        return [value for _at, value in self._gauges["fwd"].series()]

    @property
    def in_flight_cells(self) -> List[int]:
        return [value for _at, value in self._gauges["in_flight"].series()]

    @property
    def delivered_bits(self) -> List[float]:
        return [value for _at, value in self._gauges["delivered"].series()]

    # -- analysis ------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return len(self._gauges["local"].series())

    def peak(self, series: str) -> int:
        """Peak of a named series (``local`` / ``vq`` / ``fwd`` /
        ``in_flight``)."""
        return max(self._series(series), default=0)

    def time_of_peak(self, series: str) -> Optional[int]:
        """Epoch index at which a series peaks."""
        values = self._series(series)
        if not values:
            return None
        peak = max(values)
        return self.epochs[values.index(peak)]

    def throughput_cells(self, payload_bits: int) -> List[float]:
        """Delivered cells per sampled interval (discrete derivative).

        The first delta is relative to the delivered count at the first
        *observed* epoch (see the class docstring), so attaching
        telemetry mid-run does not report the whole run's cumulative
        delivery as one interval's throughput.
        """
        if payload_bits <= 0:
            raise ValueError("payload must be positive")
        delivered = self.delivered_bits
        baseline = self.baseline_delivered_bits or 0.0
        deltas = [delivered[0] - baseline] if delivered else []
        for previous, current in zip(delivered, delivered[1:]):
            deltas.append(current - previous)
        return [d / payload_bits for d in deltas]

    def backlog_series(self) -> List[int]:
        """Total cells anywhere in the system, per sample."""
        return [
            local + vq + fwd + flight
            for local, vq, fwd, flight in zip(
                self.local_cells, self.vq_cells, self.fwd_cells,
                self.in_flight_cells,
            )
        ]

    def summary(self) -> Dict[str, float]:
        """Headline statistics of the run's time series."""
        backlog = self.backlog_series()
        return {
            "samples": self.n_samples,
            "peak_local": self.peak("local"),
            "peak_vq": self.peak("vq"),
            "peak_fwd": self.peak("fwd"),
            "peak_backlog": max(backlog, default=0),
            "final_backlog": backlog[-1] if backlog else 0,
        }

    def _series(self, name: str) -> List[int]:
        series = {
            "local": self.local_cells,
            "vq": self.vq_cells,
            "fwd": self.fwd_cells,
            "in_flight": self.in_flight_cells,
        }
        if name not in series:
            raise ValueError(
                f"unknown series {name!r}; choose from {sorted(series)}"
            )
        return series[name]
