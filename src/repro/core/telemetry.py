"""Per-epoch time-series collection for Sirius simulations.

The §7 figures report end-of-run aggregates; operating a real Sirius
needs the time dimension — queue growth under bursts, drain behaviour
after overload, the footprint of a failure.  A :class:`Telemetry`
object passed to :meth:`repro.core.network.SiriusNetwork.run` samples
the network once per epoch:

* aggregate LOCAL / virtual-queue / forward-queue occupancy (cells),
* cells in flight through the passive core,
* cumulative delivered payload,

at a configurable sampling period so long runs stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class Telemetry:
    """Epoch-sampled counters of one simulation run.

    Parameters
    ----------
    sample_every:
        Sampling period in epochs (1 = every epoch).
    """

    sample_every: int = 1
    epochs: List[int] = field(default_factory=list)
    local_cells: List[int] = field(default_factory=list)
    vq_cells: List[int] = field(default_factory=list)
    fwd_cells: List[int] = field(default_factory=list)
    in_flight_cells: List[int] = field(default_factory=list)
    delivered_bits: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError(
                f"sampling period must be >= 1, got {self.sample_every}"
            )

    # -- collection (called by the simulator) -----------------------------------
    def sample(self, epoch: int, nodes: Sequence, in_flight: int,
               delivered_bits: float) -> None:
        """Record one epoch's aggregate state (if due for sampling)."""
        if epoch % self.sample_every:
            return
        self.epochs.append(epoch)
        self.local_cells.append(sum(n.local_cells for n in nodes))
        self.vq_cells.append(sum(n.vq_cells for n in nodes))
        self.fwd_cells.append(sum(n.fwd_cells for n in nodes))
        self.in_flight_cells.append(in_flight)
        self.delivered_bits.append(delivered_bits)

    # -- analysis ------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return len(self.epochs)

    def peak(self, series: str) -> int:
        """Peak of a named series (``local`` / ``vq`` / ``fwd`` /
        ``in_flight``)."""
        return max(self._series(series), default=0)

    def time_of_peak(self, series: str) -> Optional[int]:
        """Epoch index at which a series peaks."""
        values = self._series(series)
        if not values:
            return None
        peak = max(values)
        return self.epochs[values.index(peak)]

    def throughput_cells(self, payload_bits: int) -> List[float]:
        """Delivered cells per sampled interval (discrete derivative)."""
        if payload_bits <= 0:
            raise ValueError("payload must be positive")
        deltas = [self.delivered_bits[0]] if self.delivered_bits else []
        for previous, current in zip(self.delivered_bits,
                                     self.delivered_bits[1:]):
            deltas.append(current - previous)
        return [d / payload_bits for d in deltas]

    def backlog_series(self) -> List[int]:
        """Total cells anywhere in the system, per sample."""
        return [
            local + vq + fwd + flight
            for local, vq, fwd, flight in zip(
                self.local_cells, self.vq_cells, self.fwd_cells,
                self.in_flight_cells,
            )
        ]

    def summary(self) -> Dict[str, float]:
        """Headline statistics of the run's time series."""
        backlog = self.backlog_series()
        return {
            "samples": self.n_samples,
            "peak_local": self.peak("local"),
            "peak_vq": self.peak("vq"),
            "peak_fwd": self.peak("fwd"),
            "peak_backlog": max(backlog, default=0),
            "final_backlog": backlog[-1] if backlog else 0,
        }

    def _series(self, name: str) -> List[int]:
        series = {
            "local": self.local_cells,
            "vq": self.vq_cells,
            "fwd": self.fwd_cells,
            "in_flight": self.in_flight_cells,
        }
        if name not in series:
            raise ValueError(
                f"unknown series {name!r}; choose from {sorted(series)}"
            )
        return series[name]


def ascii_sparkline(values: Sequence[float], width: int = 60) -> str:
    """Compact ASCII rendering of a series (for benchmark logs)."""
    if not values:
        raise ValueError("cannot plot an empty series")
    if width < 1:
        raise ValueError("width must be positive")
    glyphs = " .:-=+*#%@"
    if len(values) > width:
        # Downsample by taking the max of each bucket (peaks matter).
        bucket = len(values) / width
        sampled = [
            max(values[int(k * bucket):max(int((k + 1) * bucket),
                                           int(k * bucket) + 1)])
            for k in range(width)
        ]
    else:
        sampled = list(values)
    top = max(sampled)
    if top == 0:
        return " " * len(sampled)
    scale = len(glyphs) - 1
    return "".join(glyphs[int(round(v / top * scale))] for v in sampled)
