"""Backend selection for the cell simulator's epoch loop.

:class:`repro.core.network.SiriusNetwork` keeps three interchangeable
execution strategies for the same protocol state machine:

* ``reference`` — the straightforward all-nodes loop every other
  backend is validated against;
* ``fast`` — sparse active-set iteration with slab cell admission
  (see :mod:`repro.core.fastpath`), the long-standing default;
* ``vectorized`` — :mod:`repro.core.vectorized`: per-node depth slabs
  and activity masks in numpy, closed-form grant admission and
  idle-epoch skipping, built for paper-scale (512–4096 node) runs.

All three are bit-identical on seeded runs — the three-way parity
suite (``tests/core/test_fast_path_equivalence.py``) pins the exact
``SimulationResult`` across them for every congestion and failure
configuration the simulator supports.

Resolution order for the effective backend:

1. an explicit ``backend=`` constructor argument;
2. an explicit legacy ``fast_path=`` argument (``True`` → ``fast``,
   ``False`` → ``reference``);
3. the ``REPRO_BACKEND`` environment variable;
4. the legacy ``REPRO_FAST_PATH`` environment variable (off values
   select ``reference``, anything else ``fast``);
5. the ``fast`` backend.
"""

from __future__ import annotations

import os
from typing import Optional, Protocol, Sequence

from repro.core.fastpath import FAST_PATH_ENV, _OFF_VALUES

__all__ = ["BACKENDS", "BACKEND_ENV", "EpochEngine", "FLUID_BACKENDS",
           "resolve_backend", "resolve_fluid_backend"]


class EpochEngine(Protocol):
    """The contract every epoch-loop strategy implements.

    :class:`repro.core.network.SiriusNetwork` (the ``reference`` and
    ``fast`` loops) and :class:`repro.core.vectorized.VectorizedEngine`
    both satisfy this surface; the three-way parity suite pins their
    results bit-identical.  Annotations stay loose because this module
    sits below :mod:`repro.core.network` in the import order — ``flows``
    is a sorted sequence of :class:`repro.core.cell.Flow` and the return
    value a :class:`repro.core.network.SimulationResult`.
    """

    def run(self, flows: Sequence, *,
            max_epochs: Optional[int] = None,
            drain_epochs: int = 200_000,
            check_invariants: bool = False,
            failure_plan=None,
            detection_epochs: int = 3,
            telemetry=None,
            obs=None):
        """Simulate ``flows`` to completion (or an epoch cap)."""
        ...

#: The selectable epoch-loop strategies, in reference-first order.
BACKENDS = ("reference", "fast", "vectorized")

#: The fluid simulator's event-loop strategies (see
#: :mod:`repro.sim.fluid`): the from-scratch ``reference`` rebuild and
#: the persistent-state ``incremental`` engine.
FLUID_BACKENDS = ("reference", "incremental")

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV = "REPRO_BACKEND"


def resolve_backend(backend: Optional[str] = None,
                    fast_path: Optional[bool] = None) -> str:
    """Resolve the effective backend name for one simulator instance.

    ``backend`` (a constructor argument) wins, then the legacy
    ``fast_path`` boolean, then ``REPRO_BACKEND``, then the legacy
    ``REPRO_FAST_PATH`` variable, then the ``fast`` default.  Raises
    ``ValueError`` for names outside :data:`BACKENDS`.
    """
    if backend is not None:
        name = backend.strip().lower()
        if name not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        return name
    if fast_path is not None:
        return "fast" if fast_path else "reference"
    env = os.environ.get(BACKEND_ENV)
    if env is not None and env.strip():
        name = env.strip().lower()
        if name not in BACKENDS:
            raise ValueError(
                f"{BACKEND_ENV}={env!r} is not a backend; "
                f"expected one of {BACKENDS}"
            )
        return name
    legacy = os.environ.get(FAST_PATH_ENV)
    if legacy is not None:
        return ("reference" if legacy.strip().lower() in _OFF_VALUES
                else "fast")
    return "fast"


def resolve_fluid_backend(backend: Optional[str] = None,
                          fast_path: Optional[bool] = None) -> str:
    """Resolve the fluid simulator's event-loop strategy.

    Same precedence ladder as :func:`resolve_backend`, mapped onto the
    fluid simulator's two strategies: an explicit ``backend=`` wins,
    then the legacy ``fast_path`` boolean (``True`` → ``incremental``,
    ``False`` → ``reference``), then ``REPRO_BACKEND`` (``reference``
    selects the reference loop; any other known backend name —
    ``incremental``, or the cell simulator's ``fast``/``vectorized``,
    so one environment variable steers both simulators — selects the
    incremental engine), then ``REPRO_FAST_PATH``, then the
    ``incremental`` default.
    """
    if backend is not None:
        name = backend.strip().lower()
        if name not in FLUID_BACKENDS:
            raise ValueError(
                f"unknown fluid backend {backend!r}; "
                f"expected one of {FLUID_BACKENDS}"
            )
        return name
    if fast_path is not None:
        return "incremental" if fast_path else "reference"
    env = os.environ.get(BACKEND_ENV)
    if env is not None and env.strip():
        name = env.strip().lower()
        if name not in FLUID_BACKENDS and name not in BACKENDS:
            raise ValueError(
                f"{BACKEND_ENV}={env!r} is not a backend; expected one "
                f"of {FLUID_BACKENDS} or {BACKENDS}"
            )
        return "reference" if name == "reference" else "incremental"
    legacy = os.environ.get(FAST_PATH_ENV)
    if legacy is not None:
        return ("reference" if legacy.strip().lower() in _OFF_VALUES
                else "incremental")
    return "incremental"
