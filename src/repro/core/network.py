"""Epoch-synchronous cell-level simulator of a Sirius network (paper §7).

The cyclic schedule connects every node pair exactly
``links_per_block`` times per epoch, so the simulator advances
epoch-by-epoch rather than slot-by-slot: within an epoch each node may
hand at most ``capacity(e)`` cells to every other node.  Slot-level
timing (cell size, guardband) sets the epoch's wall-clock duration, so
guardband sweeps (Fig 11) lengthen epochs exactly as in the paper.

Per-epoch phase order (see :mod:`repro.core.congestion` for the protocol
round-trip this implements):

1. **Deliver** cells transmitted in the previous epoch — to the
   application (final destination) or into forward queues (intermediate).
2. **Resolve** the request round that completes this epoch: apply
   arrived grants (LOCAL → virtual queue) and expire denials.
3. **Admit** new flow arrivals into LOCAL.
4. **Request** — every node emits this epoch's requests.
5. **Grant** — every node decides on the requests received last epoch.
6. **Transmit** — every node fills its slots: forward-queue cells
   first, then granted virtual-queue cells.

Fractional uplink provisioning (the paper's 1.5× of Fig 9/12) is
modelled as per-epoch capacity alternation: with multiplier ``m`` the
per-pair capacity of epoch ``e`` is ``floor((e+1)m) − floor(em)``
(e.g. 1, 2, 1, 2… for m = 1.5), while the physical topology carries
``ceil(m)`` uplink replicas.

The epoch loop is pluggable (see :mod:`repro.core.backend`): the
``reference`` backend is the straightforward all-nodes loop below; the
default ``fast`` backend iterates only the nodes with live state —
active sets track who has control-plane work, pending grants, queued
cells or server-side backlog — and admits cells in slabs, so an epoch
costs time proportional to activity rather than to ``n_nodes``; the
``vectorized`` backend (:mod:`repro.core.vectorized`) replaces the
active sets with numpy masks and depth slabs, collapses grant
admission to a closed form and skips fully-idle epochs outright, for
paper-scale (512–4096 node) runs.  All backends produce bit-identical
seeded results because a skipped node performs no work and consumes no
randomness (every per-node phase operation early-returns before its
first RNG draw when the node is idle).
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.backend import EpochEngine, resolve_backend
from repro.core.cell import Cell, Flow, cell_range
from repro.core.congestion import CongestionConfig
from repro.core.failures import FailurePlan
from repro.core.node import SiriusNode
from repro.core.telemetry import Telemetry
from repro.core.schedule import CyclicSchedule, SlotTiming
from repro.obs.observation import NULL_OBS, Observation
from repro.topology.sirius import SiriusTopology
from repro.units import KILOBYTE


@dataclass
class SimulationResult:
    """Outcome of one :meth:`SiriusNetwork.run`.

    All byte/bit quantities are application payload (goodput), matching
    the paper's server-goodput metric.
    """

    flows: List[Flow]
    epochs: int
    duration_s: float
    delivered_bits: float
    offered_bits: float
    #: Node bandwidth used for goodput normalization: the ESN-equivalent
    #: (multiplier-1) uplink bandwidth, as in Fig 9b.
    reference_node_bandwidth_bps: float
    n_nodes: int
    cell_bytes: float
    peak_fwd_cells: int
    peak_local_cells: int
    peak_reorder_cells: int
    config: CongestionConfig
    #: Flows terminated by node failures (source or destination died).
    failed_flows: int = 0
    #: Cells lost to failed nodes and retransmitted by their sources.
    retransmitted_cells: int = 0

    # -- derived metrics -----------------------------------------------------
    @property
    def normalized_goodput(self) -> float:
        """Delivered bits / (duration × nodes × reference bandwidth)."""
        capacity = self.duration_s * self.n_nodes * (
            self.reference_node_bandwidth_bps
        )
        return self.delivered_bits / capacity if capacity else 0.0

    @property
    def completed_flows(self) -> List[Flow]:
        return [f for f in self.flows if f.is_complete]

    @property
    def delivered_cells(self) -> int:
        """Cells delivered across all flows (the bench throughput unit)."""
        return sum(f.delivered_cells for f in self.flows)

    def fcts(self, max_size_bits: Optional[float] = None,
             min_size_bits: Optional[float] = None) -> List[float]:
        """Completion times of completed flows, optionally size-filtered."""
        out = []
        for flow in self.flows:
            if flow.completion_time is None:
                continue
            if max_size_bits is not None and flow.size_bits >= max_size_bits:
                continue
            if min_size_bits is not None and flow.size_bits < min_size_bits:
                continue
            out.append(flow.fct)
        return out

    def fct_percentile(self, percentile: float,
                       max_size_bits: Optional[float] = 100 * KILOBYTE
                       ) -> Optional[float]:
        """FCT percentile of "short" flows (default < 100 KB, as Fig 9a)."""
        fcts = sorted(self.fcts(max_size_bits=max_size_bits))
        if not fcts:
            return None
        if not 0 < percentile <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        index = min(len(fcts) - 1,
                    int(math.ceil(percentile / 100 * len(fcts))) - 1)
        return fcts[index]

    @property
    def completion_fraction(self) -> float:
        """Fraction of offered flows that completed within the run."""
        if not self.flows:
            return 1.0
        return len(self.completed_flows) / len(self.flows)

    @property
    def peak_fwd_bytes(self) -> float:
        """Peak aggregate forward-queue occupancy at any node (Fig 10c)."""
        return self.peak_fwd_cells * self.cell_bytes

    @property
    def peak_reorder_bytes(self) -> float:
        """Peak per-flow reorder buffer at any destination (Fig 10d)."""
        return self.peak_reorder_cells * self.cell_bytes


class SiriusNetwork(EpochEngine):
    """A simulated Sirius deployment: topology + schedule + protocol.

    Parameters
    ----------
    n_nodes:
        Nodes (racks) attached to the optical core.
    grating_ports:
        AWGR port count; the epoch is this many timeslots.
    uplink_multiplier:
        Uplink over-provisioning relative to the reachability minimum
        (1.0, 1.5 or 2.0 in the paper's experiments).
    timing:
        Slot timing (cell size / guardband); defaults to the paper's
        100 ns slot with a 10 ns guardband.
    config:
        Congestion-control configuration (``Q``, ideal mode).
    track_reorder:
        Maintain destination reorder buffers and their peak statistic
        (costs some simulation speed; needed for Fig 10d).
    local_capacity_cells:
        Optional bound on each node's LOCAL buffer (cells).  When set,
        arrivals beyond the bound wait in a per-node server-side
        backlog and trickle in as LOCAL drains — the §4.3 one-hop
        (credit-style) flow control between servers and their rack
        switch.  ``None`` (default) models an unbounded LOCAL, as a
        server-based deployment's host memory effectively is.
    seed:
        Seed for all protocol randomness (intermediate choice, grant
        tie-breaks).
    fast_path:
        Legacy boolean strategy toggle: ``True`` for the active-set
        fast path, ``False`` for the all-nodes reference loop.
        Superseded by ``backend=`` (which wins when both are given)
        but kept for callers that predate the backend interface.
    backend:
        Select the epoch loop's execution strategy by name:
        ``"reference"``, ``"fast"`` or ``"vectorized"``.  ``None``
        (default) defers to ``fast_path``, then the ``REPRO_BACKEND``
        and legacy ``REPRO_FAST_PATH`` environment variables, falling
        back to ``"fast"`` (see
        :func:`repro.core.backend.resolve_backend`).  All backends are
        bit-identical on seeded runs.
    """

    def __init__(self, n_nodes: int, grating_ports: int, *,
                 uplink_multiplier: float = 1.5,
                 timing: Optional[SlotTiming] = None,
                 config: Optional[CongestionConfig] = None,
                 track_reorder: bool = False,
                 local_capacity_cells: Optional[int] = None,
                 seed: int = 1,
                 fast_path: Optional[bool] = None,
                 backend: Optional[str] = None) -> None:
        if uplink_multiplier < 1.0:
            raise ValueError(
                f"uplink multiplier must be >= 1, got {uplink_multiplier}"
            )
        self.multiplier = uplink_multiplier
        self.topology = SiriusTopology(
            n_nodes, grating_ports,
            uplink_multiplier=math.ceil(uplink_multiplier),
        )
        self.schedule = CyclicSchedule(self.topology, timing)
        self.schedule.verify_contention_free()
        self.timing = self.schedule.timing
        self.config = config or CongestionConfig()
        self.track_reorder = track_reorder
        if local_capacity_cells is not None and local_capacity_cells < 1:
            raise ValueError(
                "local_capacity_cells must be None or >= 1, got "
                f"{local_capacity_cells}"
            )
        self.local_capacity_cells = local_capacity_cells
        self.backend = resolve_backend(backend, fast_path)
        #: Backward-compatible view of the strategy choice: both
        #: non-reference backends avoid the all-nodes scans.
        self.fast_path = self.backend != "reference"
        self.rng = random.Random(seed)
        self.nodes: List[SiriusNode] = [
            SiriusNode(n, n_nodes, self.config, self.rng)
            for n in range(n_nodes)
        ]

    # -- capacity ------------------------------------------------------------
    def epoch_capacity(self, epoch: int) -> int:
        """Per-pair cell capacity of ``epoch`` under fractional multipliers."""
        if epoch < 0:
            raise ValueError(f"epoch cannot be negative, got {epoch}")
        m = self.multiplier
        return int(math.floor((epoch + 1) * m) - math.floor(epoch * m))

    def _capacity_table(self) -> Optional[List[int]]:
        """Per-epoch capacity pattern, when the multiplier is periodic.

        The floor-difference sequence of a rational multiplier ``p/q``
        repeats with period ``q``; for every multiplier the paper uses
        (1.0, 1.5, 2.0) the period is 1 or 2.  The fast path replaces
        the two-``floor`` computation per epoch with a table lookup —
        but only after verifying the table reproduces the exact formula
        over several extra periods, so float-representation surprises
        fall back to the formula rather than diverge from it.
        """
        m = self.multiplier
        for period in range(1, 65):
            if not float(period * m).is_integer():
                continue
            table = [self.epoch_capacity(e) for e in range(period)]
            if all(self.epoch_capacity(e) == table[e % period]
                   for e in range(period, 4 * period)):
                return table
            return None
        return None

    @property
    def reference_node_bandwidth_bps(self) -> float:
        """ESN-equivalent node bandwidth (multiplier-1 uplinks)."""
        return self.topology.n_blocks * self.topology.link_rate_bps

    # -- main loop ------------------------------------------------------------
    def run(self, flows: Sequence[Flow], *,
            max_epochs: Optional[int] = None,
            drain_epochs: int = 200_000,
            check_invariants: bool = False,
            failure_plan: Optional[FailurePlan] = None,
            detection_epochs: int = 3,
            telemetry: Optional[Telemetry] = None,
            obs: Optional[Observation] = None) -> SimulationResult:
        """Simulate until every flow completes (or an epoch cap is hit).

        ``flows`` must be sorted by arrival time.  Returns the
        :class:`SimulationResult` with per-flow FCTs and queue peaks.

        ``failure_plan`` scripts node failures and recoveries (§4.5):
        a failed node freezes; cells in flight to it are lost; after
        ``detection_epochs`` (the detector's miss threshold) the
        failure is announced datacenter-wide — survivors purge cells
        addressed to it, release grant reservations held for it, stop
        detouring through it, and sources retransmit the transit cells
        that were stranded at it.  Flows whose source or destination
        died (with cells still there) are terminated and counted in
        ``failed_flows``.

        ``obs`` attaches a :class:`repro.obs.Observation`: its metrics
        registry receives run counters and queue-occupancy gauges, its
        tracer structured events (cell movements, grants, failures,
        epoch boundaries) and its profiler a wall-clock breakdown of
        the phase loop.  The default is a shared no-op bundle whose
        per-site cost is one attribute load and branch.
        """
        if self.backend == "vectorized":
            # Deferred import: the engine imports SimulationResult from
            # this module, so a top-level import would be circular.
            from repro.core.vectorized import VectorizedEngine

            return VectorizedEngine(self).run(
                flows, max_epochs=max_epochs, drain_epochs=drain_epochs,
                check_invariants=check_invariants,
                failure_plan=failure_plan,
                detection_epochs=detection_epochs,
                telemetry=telemetry, obs=obs,
            )
        if obs is None:
            obs = NULL_OBS
        tracer = obs.tracer
        registry = obs.registry
        profiler = obs.profiler
        tracing = tracer.enabled
        metering = registry.enabled
        profiling = profiler.enabled
        for node in self.nodes:
            node.observe_with(obs)
        if failure_plan is not None:
            failure_plan.observe_with(obs)
        if metering:
            delivered_counter = registry.counter(
                "delivered_bits_total", "application payload delivered"
            )
            transmitted_counter = registry.counter(
                "cells_transmitted_total", "cells placed on schedule slots"
            )
            retransmit_counter = registry.counter(
                "retransmitted_cells_total",
                "cells resent after loss at a failed node",
            )
            failed_flow_counter = registry.counter(
                "failed_flows_total", "flows terminated by node failures"
            )
            dropped_counter = registry.counter(
                "cells_dropped_total", "cells purged or lost to failures"
            )

        t_mark = profiler.start_run()
        epoch_dur = self.schedule.epoch_duration_s
        payload_bits = self.timing.payload_bits
        # Loop-invariant configuration, hoisted out of the epoch loop.
        ideal = self.config.ideal
        track_reorder = self.track_reorder
        fast = self.fast_path
        is_failed = (failure_plan.is_failed if failure_plan is not None
                     else None)
        epoch_capacity = self.epoch_capacity
        cap_table = self._capacity_table() if fast else None
        cap_period = len(cap_table) if cap_table else 1
        grant_cap = self.config.effective_grant_cap
        flows = list(flows)
        for i in range(1, len(flows)):
            if flows[i].arrival_time < flows[i - 1].arrival_time:
                raise ValueError("flows must be sorted by arrival time")
        flow_by_id: Dict[int, Flow] = {}
        last_cell_bits: Dict[int, int] = {}
        offered_bits = 0.0
        for flow in flows:
            flow.segment(payload_bits)
            flow_by_id[flow.flow_id] = flow
            last_cell_bits[flow.flow_id] = (
                flow.size_bits - (flow.n_cells - 1) * payload_bits
            )
            offered_bits += flow.size_bits

        if max_epochs is None:
            last_arrival = flows[-1].arrival_time if flows else 0.0
            max_epochs = int(last_arrival / epoch_dur) + drain_epochs

        nodes = self.nodes
        n_flows = len(flows)
        pending_flows = n_flows
        delivered_bits = 0.0
        peak_reorder = 0
        failed_flows = 0
        retransmits = 0
        dead_flows: set = set()
        announcements: Deque[Tuple[int, int, bool]] = deque()

        # Fast-path active sets: which nodes have work in which phase.
        # Maintained incrementally at every state transition (admit,
        # grant receipt, transit receipt, queue drain) and rebuilt from
        # a full scan after the rare failure announcements; iterated in
        # sorted order so the shared RNG sees the active nodes in the
        # same order the reference all-nodes loop visits them.
        # ``popped`` tracks whose request-history deque rotated this
        # epoch, so nodes activated after the resolve phase can replay
        # the rotation they missed (SiriusNode.catch_up_history).
        control_active: Set[int] = set()
        grant_active: Set[int] = set()
        transmit_active: Set[int] = set()
        backlog_active: Set[int] = set()
        popped: Set[int] = set()

        def rebuild_active_sets() -> None:
            control_active.clear()
            grant_active.clear()
            transmit_active.clear()
            for node in nodes:
                if not node.control_idle:
                    control_active.add(node.node)
                if node.request_inbox:
                    grant_active.add(node.node)
                if node.fwd or node.vq:
                    transmit_active.add(node.node)

        def kill_flow(flow_id: int) -> None:
            nonlocal pending_flows, failed_flows
            if flow_id in dead_flows:
                return
            flow = flow_by_id[flow_id]
            if flow.is_complete:
                return
            dead_flows.add(flow_id)
            pending_flows -= 1
            failed_flows += 1
            if metering:
                failed_flow_counter.inc()

        def retransmit(cell: Cell) -> None:
            """Endpoint retransmission of a cell lost at a failed node."""
            nonlocal retransmits
            if cell.flow_id in dead_flows:
                return
            if is_failed is not None and is_failed(cell.src):
                kill_flow(cell.flow_id)
                return
            nodes[cell.src].enqueue_local(cell)
            if fast:
                if ideal:
                    transmit_active.add(cell.src)
                else:
                    control_active.add(cell.src)
            retransmits += 1
            if metering:
                retransmit_counter.inc()

        def announce_failure(f_node: int) -> None:
            """Datacenter-wide failure announcement (§4.5)."""
            if tracing:
                tracer.emit("failure.announce", node=f_node)
            for node in nodes:
                if node.node == f_node:
                    continue
                node.excluded.add(f_node)
                node.release_grants_for(f_node)
                node.purge_destination(f_node)
            transit, own = nodes[f_node].drain_for_failure()
            for cell in own:
                kill_flow(cell.flow_id)
            for flow in flows:
                if flow.dst == f_node:
                    kill_flow(flow.flow_id)
            for cell in transit:
                retransmit(cell)

        def announce_recovery(f_node: int) -> None:
            if tracing:
                tracer.emit("failure.recover", node=f_node)
            for node in nodes:
                node.excluded.discard(f_node)

        def deliver(batch: List[Tuple[int, Cell, int]],
                    arrival_time: float) -> None:
            nonlocal pending_flows, delivered_bits, peak_reorder
            batch_bits = 0.0
            for recv, cell, sender in batch:
                if is_failed is not None and is_failed(recv):
                    # Lost at the failed node: transit cells are
                    # retransmitted by their source; final-destination
                    # cells die with the flow.
                    if tracing:
                        tracer.emit("cell.drop", node=recv, count=1,
                                    flow=cell.flow_id,
                                    reason="lost-in-flight")
                    if metering:
                        dropped_counter.inc(reason="lost-in-flight")
                    if cell.dst == recv:
                        kill_flow(cell.flow_id)
                    else:
                        retransmit(cell)
                    continue
                if cell.flow_id in dead_flows:
                    continue  # residue of a terminated flow
                node = nodes[recv]
                if cell.dst != recv:
                    node.receive_transit(cell)
                    if fast:
                        transmit_active.add(recv)
                    continue
                if sender == cell.src and not ideal:
                    # Single-hop (direct-granted) delivery: release one
                    # slot of the source's direct-grant window.
                    node.note_direct_arrival(sender)
                flow = flow_by_id[cell.flow_id]
                if track_reorder:
                    node.reorder.accept(cell.flow_id, cell.seq)
                if cell.seq == flow.n_cells - 1:
                    cell_bits = last_cell_bits[cell.flow_id]
                else:
                    cell_bits = payload_bits
                delivered_bits += cell_bits
                batch_bits += cell_bits
                if flow.record_delivery(arrival_time):
                    pending_flows -= 1
                    if tracing:
                        tracer.emit("flow.completion", node=recv,
                                    flow=cell.flow_id)
                    if track_reorder:
                        peak = node.reorder.peak_flow_cells
                        if peak > peak_reorder:
                            peak_reorder = peak
                        node.reorder.finish_flow(cell.flow_id)
            if metering and batch_bits:
                delivered_counter.inc(batch_bits)

        next_flow = 0
        in_flight: List[Tuple[int, Cell, int]] = []
        server_backlog: List[Deque[Tuple[Flow, int]]] = [
            deque() for _ in nodes
        ]
        local_capacity = self.local_capacity_cells
        epoch = 0
        if profiling:
            t_mark = profiler.lap("setup", t_mark)
        while epoch < max_epochs:
            if tracing:
                tracer.at(epoch, epoch * epoch_dur)
                tracer.emit("epoch", in_flight=len(in_flight))
            if profiling:
                profiler.set_epoch(epoch)

            # Phase 0: failure events fire; announcements propagate
            # after the detection delay.
            if failure_plan is not None:
                for event in failure_plan.advance_to(epoch):
                    announcements.append(
                        (epoch + detection_epochs, event.node, event.fails)
                    )
                announced = False
                while announcements and announcements[0][0] <= epoch:
                    _eff, f_node, fails = announcements.popleft()
                    if fails:
                        announce_failure(f_node)
                    else:
                        announce_recovery(f_node)
                    announced = True
                if announced and fast:
                    # Purges, drains and retransmissions touch queues
                    # across the whole network; a full rescan is cheap
                    # at announcement frequency and keeps the
                    # incremental bookkeeping simple.
                    rebuild_active_sets()
            if profiling:
                t_mark = profiler.lap("failures", t_mark)

            # Phase 1: deliver last epoch's transmissions.
            if in_flight:
                deliver(in_flight, epoch * epoch_dur)
                in_flight = []
            if profiling:
                t_mark = profiler.lap("deliver", t_mark)

            # Phase 2: resolve the completed request round.
            if not ideal:
                if fast:
                    popped.clear()
                    for idx in sorted(control_active):
                        if is_failed is not None and is_failed(idx):
                            continue
                        node = nodes[idx]
                        if node.control_idle:
                            control_active.discard(idx)
                            continue
                        node.apply_grants_and_expiries()
                        popped.add(idx)
                        if node.vq_cells:
                            transmit_active.add(idx)
                else:
                    for node in nodes:
                        if is_failed is not None and is_failed(node.node):
                            continue
                        node.apply_grants_and_expiries()
            if profiling:
                t_mark = profiler.lap("resolve", t_mark)

            # Phase 3: admit arrivals whose time falls inside this epoch.
            horizon = (epoch + 1) * epoch_dur
            while next_flow < n_flows and (
                flows[next_flow].arrival_time < horizon
            ):
                flow = flows[next_flow]
                next_flow += 1
                if tracing:
                    tracer.emit("flow.arrival", node=flow.src,
                                flow=flow.flow_id, dst=flow.dst,
                                cells=flow.n_cells)
                if is_failed is not None and (
                    is_failed(flow.src) or is_failed(flow.dst)
                ):
                    kill_flow(flow.flow_id)
                    continue
                if local_capacity is None:
                    src = flow.src
                    nodes[src].enqueue_local_cells(
                        cell_range(flow, 0, flow.n_cells)
                    )
                    if fast:
                        if ideal:
                            transmit_active.add(src)
                        else:
                            if src not in popped:
                                # Deliberate fast-path asymmetry: a node
                                # joining the sparse active set replays the
                                # history rotations it slept through; the
                                # reference path rotates every node every
                                # epoch, so it has nothing to catch up.
                                # lint: ignore[S801]
                                nodes[src].catch_up_history()
                                popped.add(src)
                            control_active.add(src)
                else:
                    server_backlog[flow.src].append((flow, 0))
                    if fast:
                        backlog_active.add(flow.src)
            if local_capacity is not None:
                # §4.3 one-hop flow control: servers fill LOCAL only to
                # its advertised capacity; the rest waits host-side.
                limit = local_capacity
                for idx in (sorted(backlog_active) if fast
                            else range(len(nodes))):
                    node = nodes[idx]
                    backlog = server_backlog[idx]
                    while backlog and node.local_cells < limit:
                        flow, start = backlog[0]
                        if flow.flow_id in dead_flows:
                            backlog.popleft()
                            continue
                        room = limit - node.local_cells
                        end = min(flow.n_cells, start + room)
                        node.enqueue_local_cells(cell_range(flow, start, end))
                        if fast:
                            if ideal:
                                transmit_active.add(idx)
                            else:
                                if idx not in popped:
                                    # Deliberate fast-path asymmetry: see
                                    # the admission-time catch-up above.
                                    # lint: ignore[S801]
                                    node.catch_up_history()
                                    popped.add(idx)
                                control_active.add(idx)
                        if end == flow.n_cells:
                            backlog.popleft()
                        else:
                            backlog[0] = (flow, end)
                            break
                    if fast and not backlog:
                        backlog_active.discard(idx)
            if profiling:
                t_mark = profiler.lap("admit", t_mark)

            # Phases 4-5: grant round, then request round.  Grants are
            # decided on the requests received in the *previous* epoch
            # (§4.3), so the grant phase must run before this epoch's
            # requests reach the inboxes.
            capacity = (cap_table[epoch % cap_period] if cap_table
                        else epoch_capacity(epoch))
            if not ideal:
                if fast:
                    for idx in sorted(grant_active):
                        if is_failed is not None and is_failed(idx):
                            # A silently-failed node keeps its stale
                            # inbox until the announcement drains it.
                            continue
                        grant_active.discard(idx)
                        for src, dst in nodes[idx].decide_grants(grant_cap):
                            if is_failed is not None and is_failed(src):
                                continue
                            nodes[src].grant_inbox.append((idx, dst))
                            if src not in popped:
                                # Deliberate fast-path asymmetry: see the
                                # admission-time catch-up above.
                                # lint: ignore[S801]
                                nodes[src].catch_up_history()
                                popped.add(src)
                            control_active.add(src)
                    for idx in sorted(control_active):
                        if is_failed is not None and is_failed(idx):
                            continue
                        node = nodes[idx]
                        for intermediate, dst in node.generate_requests():
                            nodes[intermediate].request_inbox.append(
                                (idx, dst)
                            )
                            grant_active.add(intermediate)
                        if node.control_idle:
                            control_active.discard(idx)
                else:
                    for node in nodes:
                        if is_failed is not None and is_failed(node.node):
                            continue
                        for src, dst in node.decide_grants(grant_cap):
                            if is_failed is not None and is_failed(src):
                                continue
                            nodes[src].grant_inbox.append((node.node, dst))
                    for node in nodes:
                        if is_failed is not None and is_failed(node.node):
                            continue
                        for intermediate, dst in node.generate_requests():
                            nodes[intermediate].request_inbox.append(
                                (node.node, dst)
                            )
            if profiling:
                t_mark = profiler.lap("control", t_mark)

            # Phase 6: transmit on every busy pair slot.
            if fast:
                for idx in sorted(transmit_active):
                    if is_failed is not None and is_failed(idx):
                        continue
                    node = nodes[idx]
                    for dst in node.busy_destinations():
                        for cell in node.dequeue_for(dst, capacity):
                            in_flight.append((dst, cell, idx))
                            if tracing:
                                tracer.emit("cell.dequeue", node=idx,
                                            to=dst, flow=cell.flow_id,
                                            dst=cell.dst)
                    if not node.fwd and not node.vq:
                        transmit_active.discard(idx)
            else:
                for node in nodes:
                    if is_failed is not None and is_failed(node.node):
                        continue
                    for dst in node.busy_destinations():
                        for cell in node.dequeue_for(dst, capacity):
                            in_flight.append((dst, cell, node.node))
                            if tracing:
                                tracer.emit("cell.dequeue", node=node.node,
                                            to=dst, flow=cell.flow_id,
                                            dst=cell.dst)
            if metering and in_flight:
                transmitted_counter.inc(len(in_flight))
            if profiling:
                t_mark = profiler.lap("transmit", t_mark)

            if check_invariants:
                for node in nodes:
                    node.check_invariants()

            if telemetry is not None:
                telemetry.sample(epoch, nodes, len(in_flight),
                                 delivered_bits)
            if metering and epoch % obs.sample_every == 0:
                obs.sample_network(epoch, nodes, len(in_flight),
                                   delivered_bits)
            if profiling:
                t_mark = profiler.lap("observe", t_mark)

            epoch += 1
            if (pending_flows == 0 and not in_flight
                    and next_flow >= n_flows
                    and (not backlog_active if fast
                         else not any(server_backlog))):
                break

        # Deliver anything sent in the final epoch (epoch-cap exit).
        if tracing:
            tracer.at(epoch, epoch * epoch_dur)
        if in_flight:
            deliver(in_flight, epoch * epoch_dur)

        duration = max(epoch, 1) * epoch_dur
        if profiling:
            profiler.lap("finalize", t_mark)
            profiler.end_run()
        return SimulationResult(
            flows=flows,
            epochs=epoch,
            duration_s=duration,
            delivered_bits=delivered_bits,
            offered_bits=offered_bits,
            reference_node_bandwidth_bps=self.reference_node_bandwidth_bps,
            n_nodes=self.topology.n_nodes,
            cell_bytes=self.timing.cell_bytes,
            peak_fwd_cells=max(n.peak_fwd_cells for n in nodes),
            peak_local_cells=max(n.peak_local_cells for n in nodes),
            peak_reorder_cells=peak_reorder,
            config=self.config,
            failed_flows=failed_flows,
            retransmitted_cells=retransmits,
        )
