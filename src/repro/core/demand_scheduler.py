"""On-demand (demand-aware) scheduling — the §4.2 alternative.

Sirius rejects explicit scheduling: "sending the datacenter demand
matrix ... to a scheduler that calculates and assigns communication
timeslots ... is not efficient and practical for Sirius' fast switching
at scale".  To quantify that claim, this module implements the
alternative:

* a **matching scheduler** that decomposes a demand matrix into
  contention-free slot permutations (greedy Birkhoff-von-Neumann
  style: each slot is a maximal matching over the largest remaining
  demands);
* a **control-plane model** of what on-demand scheduling costs at
  nanosecond timescales: demand collection, matching computation and
  schedule distribution, giving the minimum feasible scheduling period
  and the staleness of any schedule it produces.

The ablation benchmark compares slot efficiency (where demand-aware
wins on skewed matrices) against control-plane latency (where it loses
by orders of magnitude at Sirius' slot durations).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.units import GBPS, NANOSECOND, fibre_delay


def greedy_matching(demand: Sequence[Sequence[float]]) -> Dict[int, int]:
    """One contention-free slot: a greedy maximal matching.

    Picks the largest remaining demand entries, locking each source and
    destination once — the classic greedy round of a Birkhoff-von-
    Neumann-style decomposition.
    """
    n = len(demand)
    entries = [
        (demand[i][j], i, j)
        for i in range(n) for j in range(n)
        if i != j and demand[i][j] > 0
    ]
    entries.sort(key=lambda e: (-e[0], e[1], e[2]))
    used_src, used_dst = set(), set()
    matching: Dict[int, int] = {}
    for _value, src, dst in entries:
        if src in used_src or dst in used_dst:
            continue
        matching[src] = dst
        used_src.add(src)
        used_dst.add(dst)
    return matching


def decompose_demand(demand: Sequence[Sequence[float]],
                     cell_quantum: float = 1.0,
                     max_slots: int = 100_000) -> List[Dict[int, int]]:
    """Decompose a demand matrix into per-slot matchings.

    Each slot serves ``cell_quantum`` of demand on every matched pair.
    Returns the slot list; its length is the schedule's makespan.
    """
    if cell_quantum <= 0:
        raise ValueError("cell quantum must be positive")
    n = len(demand)
    remaining = [list(map(float, row)) for row in demand]
    if any(len(row) != n for row in remaining):
        raise ValueError("demand matrix must be square")
    if any(remaining[i][i] > 0 for i in range(n)):
        raise ValueError("self-demand is not schedulable")
    slots: List[Dict[int, int]] = []
    while len(slots) < max_slots:
        matching = greedy_matching(remaining)
        if not matching:
            return slots
        for src, dst in matching.items():
            remaining[src][dst] = max(0.0, remaining[src][dst] - cell_quantum)
        slots.append(matching)
    raise RuntimeError("demand decomposition exceeded the slot budget")


def cyclic_slots_for_demand(demand: Sequence[Sequence[float]],
                            cell_quantum: float = 1.0) -> int:
    """Slots the *static cyclic* schedule needs for the same demand.

    The cyclic schedule gives each ordered pair 1/(N-1) of the slots
    (ignoring the self-slot), so the makespan is set by the largest
    pair demand: ``ceil(max_demand / quantum) × (N - 1)``.  With
    load-balanced routing the effective per-pair demand is the row
    maximum of the *uniformized* matrix instead — both are reported by
    the benchmark.
    """
    if cell_quantum <= 0:
        raise ValueError("cell quantum must be positive")
    n = len(demand)
    peak = max(
        demand[i][j] for i in range(n) for j in range(n) if i != j
    )
    if peak <= 0:
        return 0
    return math.ceil(peak / cell_quantum) * (n - 1)


def vlb_slots_for_demand(demand: Sequence[Sequence[float]],
                         cell_quantum: float = 1.0) -> int:
    """Cyclic-schedule slots after Valiant load balancing.

    Detouring converts the matrix into a near-uniform one: every node
    handles ``(row_sum + col_sum)`` of traffic spread evenly across its
    N−1 slots per epoch, each cell crossing two slots.  Makespan is set
    by the busiest node.
    """
    if cell_quantum <= 0:
        raise ValueError("cell quantum must be positive")
    n = len(demand)
    worst = 0.0
    for node in range(n):
        sent = sum(demand[node][j] for j in range(n) if j != node)
        received = sum(demand[i][node] for i in range(n) if i != node)
        worst = max(worst, sent + received)
    if worst <= 0:
        return 0
    # Per epoch of (n-1) slots a node moves (n-1) cells of combined
    # first+second-hop work.
    epochs = math.ceil(worst / cell_quantum / (n - 1))
    return epochs * (n - 1)


@dataclass(frozen=True)
class ControlPlaneModel:
    """Latency of one on-demand scheduling round at datacenter scale.

    Components (§4.2's "measuring demands, calculating assignments and
    maintaining a robust control plane"):

    * demand collection: one propagation across the datacenter span
      plus serialization of N demand vectors at the scheduler;
    * matching computation: ``matching_time_per_node_ns × N`` per slot
      scheduled (even specialised hardware needs ~ns per port);
    * schedule distribution: another datacenter crossing.
    """

    datacenter_span_m: float = 500.0
    demand_vector_bits: int = 1024
    control_link_bps: float = 100 * GBPS
    matching_time_per_node_ns: float = 2.0

    def collection_latency_s(self, n_nodes: int) -> float:
        propagation = fibre_delay(self.datacenter_span_m)
        serialization = n_nodes * self.demand_vector_bits / (
            self.control_link_bps
        )
        return propagation + serialization

    def compute_latency_s(self, n_nodes: int, n_slots: int = 1) -> float:
        return (
            n_slots * n_nodes * self.matching_time_per_node_ns * NANOSECOND
        )

    def distribution_latency_s(self, n_nodes: int) -> float:
        return self.collection_latency_s(n_nodes)

    def round_latency_s(self, n_nodes: int, n_slots: int = 1) -> float:
        """End-to-end latency of one demand→schedule→distribute round."""
        if n_nodes < 2:
            raise ValueError("need at least 2 nodes")
        return (
            self.collection_latency_s(n_nodes)
            + self.compute_latency_s(n_nodes, n_slots)
            + self.distribution_latency_s(n_nodes)
        )

    def staleness_slots(self, n_nodes: int, slot_duration_s: float,
                        n_slots: int = 1) -> float:
        """Slots that elapse while a schedule is being produced.

        Any on-demand schedule is this many slots stale on arrival —
        with 100 ns slots and thousands of nodes, thousands of slots.
        The static cyclic schedule's staleness is zero.
        """
        if slot_duration_s <= 0:
            raise ValueError("slot duration must be positive")
        return self.round_latency_s(n_nodes, n_slots) / slot_duration_s


def verify_matchings_contention_free(
        slots: Sequence[Dict[int, int]]) -> None:
    """Every slot must be a (partial) permutation: no port reuse."""
    for index, matching in enumerate(slots):
        destinations = list(matching.values())
        assert len(set(destinations)) == len(destinations), (
            f"slot {index} sends two cells to one destination"
        )
        assert all(src != dst for src, dst in matching.items()), (
            f"slot {index} schedules a self-transmission"
        )
