"""The simulator fast-path toggle.

The cell-level and fluid simulators each keep two execution strategies
for their main loop:

* the **fast path** (default) — sparse active-set iteration, slab cell
  construction and cached per-epoch lookups, making one epoch cost
  proportional to *active* state rather than topology size;
* the **reference path** — the straightforward all-pairs loop the fast
  path is validated against.

Both paths are maintained bit-identical: seeded runs produce the same
``SimulationResult`` field-for-field (``tests/core/
test_fast_path_equivalence.py`` proves it across congestion configs and
failure scenarios), and ``sirius-repro bench`` records the speed gap
between them so regressions in either direction are visible.

Resolution order for which path a network uses:

1. an explicit ``fast_path=`` constructor argument;
2. the ``REPRO_FAST_PATH`` environment variable (``0``/``false``/
   ``off`` select the reference path);
3. the fast path.

This boolean is now the legacy spelling of a named-backend choice:
:mod:`repro.core.backend` generalizes it for the cell simulator
(``reference``/``fast``/``vectorized``, via ``resolve_backend``) and
for the fluid simulator (``reference``/``incremental``, via
``resolve_fluid_backend``), giving explicit ``backend=`` arguments and
``REPRO_BACKEND`` precedence over the toggles defined here.  Both
resolvers still honor ``fast_path=``/``REPRO_FAST_PATH`` as the
two-way fallback.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["FAST_PATH_ENV", "resolve_fast_path"]

#: Environment variable consulted when no explicit ``fast_path=`` is given.
FAST_PATH_ENV = "REPRO_FAST_PATH"

_OFF_VALUES = frozenset({"0", "false", "off", "no", "reference"})


def resolve_fast_path(explicit: Optional[bool] = None) -> bool:
    """Resolve the effective fast-path setting for one simulator.

    ``explicit`` (a constructor argument) wins; otherwise the
    ``REPRO_FAST_PATH`` environment variable decides, defaulting to the
    fast path.
    """
    if explicit is not None:
        return bool(explicit)
    value = os.environ.get(FAST_PATH_ENV)
    if value is None:
        return True
    return value.strip().lower() not in _OFF_VALUES
