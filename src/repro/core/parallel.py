"""Topology-level parallelism: parallel Sirius planes (paper §4.5).

When a single network's bandwidth stops scaling ("in such a post-
Moore's-law world, datacenter operators may even have to resort to
increasing the levels of hierarchy"), the paper argues the efficient
alternative is *parallel networks* — and that "Sirius' design is
particularly amenable to such scaling through topology-level
parallelism": each plane is an independent single layer of gratings, so
adding a plane adds bandwidth without adding hierarchy, scheduler state
or reconfiguration coupling.

:class:`ParallelSiriusPlanes` runs ``n_planes`` independent Sirius
networks and stripes flows across them.  Striping policies:

* ``"hash"`` — flow id determines the plane (stateless, order-
  preserving per flow — no cross-plane reordering);
* ``"round_robin"`` — flows alternate planes;
* ``"least_loaded"`` — each flow goes to the plane with the least
  outstanding bytes (greedy load balancing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.cell import Flow
from repro.core.network import SimulationResult, SiriusNetwork

_POLICIES = ("hash", "round_robin", "least_loaded")


@dataclass
class ParallelResult:
    """Merged outcome of a striped multi-plane run."""

    plane_results: List[SimulationResult]
    assignments: Dict[int, int]

    @property
    def n_planes(self) -> int:
        return len(self.plane_results)

    @property
    def all_flows(self) -> List[Flow]:
        return [f for r in self.plane_results for f in r.flows]

    @property
    def completed_flows(self) -> List[Flow]:
        return [f for f in self.all_flows if f.is_complete]

    @property
    def delivered_bits(self) -> float:
        return sum(r.delivered_bits for r in self.plane_results)

    @property
    def duration_s(self) -> float:
        return max((r.duration_s for r in self.plane_results), default=0.0)

    @property
    def normalized_goodput(self) -> float:
        """Goodput against the *aggregate* multi-plane capacity."""
        if not self.plane_results:
            return 0.0
        reference = self.plane_results[0]
        capacity = (
            self.duration_s * reference.n_nodes * self.n_planes
            * reference.reference_node_bandwidth_bps
        )
        return self.delivered_bits / capacity if capacity else 0.0

    def plane_share(self, plane: int) -> float:
        """Fraction of flows assigned to ``plane``."""
        if not self.assignments:
            return 0.0
        count = sum(1 for p in self.assignments.values() if p == plane)
        return count / len(self.assignments)


class ParallelSiriusPlanes:
    """``n_planes`` independent Sirius networks with flow striping."""

    def __init__(self, n_planes: int, n_nodes: int, grating_ports: int,
                 *, striping: str = "hash", seed: int = 1,
                 **network_kwargs) -> None:
        if n_planes < 1:
            raise ValueError(f"need at least one plane, got {n_planes}")
        if striping not in _POLICIES:
            raise ValueError(
                f"unknown striping {striping!r}; choose from {_POLICIES}"
            )
        self.striping = striping
        self.planes = [
            SiriusNetwork(n_nodes, grating_ports, seed=seed + k,
                          **network_kwargs)
            for k in range(n_planes)
        ]
        self.n_nodes = n_nodes

    @property
    def n_planes(self) -> int:
        return len(self.planes)

    @property
    def aggregate_bandwidth_bps(self) -> float:
        """Total node bandwidth across planes — the scaling knob."""
        return sum(
            plane.reference_node_bandwidth_bps for plane in self.planes
        )

    # -- striping ------------------------------------------------------------
    def assign(self, flows: Sequence[Flow]) -> Dict[int, int]:
        """Flow id → plane index under the configured policy."""
        if self.striping == "hash":
            return {f.flow_id: f.flow_id % self.n_planes for f in flows}
        if self.striping == "round_robin":
            return {
                f.flow_id: k % self.n_planes
                for k, f in enumerate(flows)
            }
        # least_loaded: greedy on outstanding bytes.
        loads = [0.0] * self.n_planes
        assignment: Dict[int, int] = {}
        for flow in flows:
            plane = min(range(self.n_planes), key=lambda p: loads[p])
            assignment[flow.flow_id] = plane
            loads[plane] += flow.size_bits
        return assignment

    # -- execution ------------------------------------------------------------
    def run(self, flows: Sequence[Flow], **run_kwargs) -> ParallelResult:
        """Stripe and run; planes are independent (no shared queues)."""
        assignments = self.assign(flows)
        per_plane: List[List[Flow]] = [[] for _ in self.planes]
        for flow in flows:
            per_plane[assignments[flow.flow_id]].append(flow)
        results = []
        for plane, plane_flows in zip(self.planes, per_plane):
            plane_flows.sort(key=lambda f: f.arrival_time)
            results.append(plane.run(plane_flows, **run_kwargs))
        return ParallelResult(plane_results=results,
                              assignments=assignments)
