"""The static cyclic schedule and slot timing (paper §4.2, Fig 5b).

Sirius is *scheduler-less*: instead of collecting demands and computing
assignments, every transceiver cycles through all its grating's
wavelengths on a fixed timeslot-by-timeslot pattern, so each node is
connected to every other node once per *epoch* (``G`` timeslots for
``G``-port gratings).  The schedule is contention-free by construction:
within a timeslot all inputs of a grating use the same wavelength
channel, and the AWGR's cyclic routing is a permutation for any fixed
channel — no output port ever receives two signals at once.

Slot timing (§4.5, §7): each timeslot is a cell transmission followed by
a *guardband* during which the lasers retune, CDR re-locks and
synchronization slack is absorbed.  The paper's default is a 100 ns slot
= 90 ns of data (562 B at 50 Gb/s) + 10 ns guardband; Fig 11 sweeps the
guardband while keeping it at 10 % of the slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.topology.sirius import SiriusTopology, Uplink
from repro.units import GBPS, NANOSECOND


@dataclass(frozen=True)
class SlotTiming:
    """Timing of one timeslot: data transmission + reconfiguration guardband.

    Parameters
    ----------
    guardband_s:
        End-to-end reconfiguration window (laser tuning + CDR lock +
        sync error).  Paper default 10 ns (conservative; the prototype
        achieves 3.84 ns).
    guard_fraction:
        Guardband share of the total slot.  The paper fixes this at 10 %
        when sweeping the guardband (Fig 11), so the slot duration is
        ``guardband / guard_fraction``.
    link_rate_bps:
        Optical channel rate (50 Gb/s).
    header_bytes:
        Per-cell framing overhead (addressing, sequence number, CRC and
        the piggybacked request/grant fields).  The burst preamble is
        part of the guardband, not the cell, so this stays small.
    """

    guardband_s: float = 10 * NANOSECOND
    guard_fraction: float = 0.1
    link_rate_bps: float = 50 * GBPS
    header_bytes: int = 18

    def __post_init__(self) -> None:
        if self.guardband_s <= 0:
            raise ValueError(f"guardband must be positive, got {self.guardband_s}")
        if not 0 < self.guard_fraction < 1:
            raise ValueError(
                f"guard fraction must be in (0, 1), got {self.guard_fraction}"
            )
        if self.link_rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if self.header_bytes < 0:
            raise ValueError("header size cannot be negative")
        if self.payload_bits <= 0:
            raise ValueError(
                "slot too short: header consumes the entire cell "
                f"(cell {self.cell_bits} bits, header {self.header_bytes * 8})"
            )

    @property
    def slot_duration_s(self) -> float:
        """Total slot duration (data + guardband)."""
        return self.guardband_s / self.guard_fraction

    @property
    def transmission_time_s(self) -> float:
        """Data-carrying portion of the slot."""
        return self.slot_duration_s - self.guardband_s

    @property
    def cell_bits(self) -> int:
        """Total cell size on the wire (bits)."""
        return int(self.transmission_time_s * self.link_rate_bps)

    @property
    def cell_bytes(self) -> float:
        return self.cell_bits / 8.0

    @property
    def payload_bits(self) -> int:
        """Application payload per cell (cell minus framing)."""
        return self.cell_bits - self.header_bytes * 8

    @property
    def efficiency(self) -> float:
        """Fraction of the slot carrying application payload."""
        return self.payload_bits / (self.slot_duration_s * self.link_rate_bps)


class CyclicSchedule:
    """The static round-robin schedule over a :class:`SiriusTopology`.

    At timeslot ``t`` (mod G) every uplink transmits on wavelength
    channel ``t``, reaching grating output port ``(input_port + t) mod
    G``.  Over one epoch of ``G`` slots each uplink visits all ``G``
    nodes of its destination block exactly once, so a node with
    ``links_per_block`` uplinks per block reaches *every* node in the
    network ``links_per_block`` times per epoch.
    """

    def __init__(self, topology: SiriusTopology,
                 timing: SlotTiming = None) -> None:
        if timing is None:
            timing = SlotTiming(link_rate_bps=topology.link_rate_bps)
        self.topology = topology
        self.timing = timing
        self.slots_per_epoch = topology.grating_ports
        #: Wall-clock duration of one epoch, cached at construction (the
        #: schedule is static, so the value never changes; the paper's
        #: §4.2 example — 16 nodes per grating, 100 ns slots — gives a
        #: 1.6 us epoch).  The simulator's epoch loop reads this every
        #: epoch, which is why it is a plain attribute, not a property
        #: recomputing two divisions per access.
        self.epoch_duration_s: float = (
            self.slots_per_epoch * timing.slot_duration_s
        )

    def epoch_of(self, time_s: float) -> int:
        """Epoch index containing absolute time ``time_s``."""
        if time_s < 0:
            raise ValueError(f"time cannot be negative, got {time_s}")
        return int(time_s / self.epoch_duration_s)

    # -- per-slot connectivity -------------------------------------------------
    def destination(self, uplink: Uplink, slot: int) -> int:
        """Node reached by ``uplink`` during timeslot ``slot``."""
        if slot < 0:
            raise ValueError(f"slot cannot be negative, got {slot}")
        g = self.topology.grating_ports
        channel = slot % g
        output_port = self.topology.gratings[uplink.grating].output_port(
            uplink.input_port, channel
        )
        return uplink.reachable_block * g + output_port

    def wavelength(self, slot: int) -> int:
        """Wavelength channel all uplinks use during ``slot``."""
        if slot < 0:
            raise ValueError(f"slot cannot be negative, got {slot}")
        return slot % self.topology.grating_ports

    def connections(self, slot: int) -> List[Tuple[int, int, Uplink]]:
        """All ``(src, dst, uplink)`` connections active in ``slot``."""
        return [
            (uplink.node, self.destination(uplink, slot), uplink)
            for uplink in self.topology.iter_uplinks()
        ]

    def slot_for(self, uplink: Uplink, dst_node: int) -> int:
        """Timeslot (within the epoch) at which ``uplink`` reaches ``dst``."""
        return self.topology.wavelength_for(uplink, dst_node)

    def pair_slots(self, src: int, dst: int) -> List[Tuple[Uplink, int]]:
        """Every (uplink, slot) by which ``src`` reaches ``dst`` per epoch.

        Length equals ``links_per_block`` — the per-pair per-epoch cell
        capacity.
        """
        return [
            (uplink, self.slot_for(uplink, dst))
            for uplink, _wavelength in self.topology.paths_to(src, dst)
        ]

    # -- whole-schedule views ---------------------------------------------------
    def table(self) -> List[Dict[str, object]]:
        """Fig 5b-style schedule table.

        One row per (node, uplink): the wavelength letter and
        destination for each timeslot of the epoch.
        """
        rows = []
        for uplink in self.topology.iter_uplinks():
            entry: Dict[str, object] = {
                "node": uplink.node,
                "uplink": uplink.index,
            }
            for slot in range(self.slots_per_epoch):
                entry[f"slot{slot}"] = {
                    "wavelength": self.wavelength(slot),
                    "dst": self.destination(uplink, slot),
                }
            rows.append(entry)
        return rows

    def iter_epoch(self) -> Iterator[Tuple[int, List[Tuple[int, int, Uplink]]]]:
        """Iterate ``(slot, connections)`` over one epoch."""
        for slot in range(self.slots_per_epoch):
            yield slot, self.connections(slot)

    # -- invariants ----------------------------------------------------------
    def verify_contention_free(self) -> None:
        """Assert no destination uplink port receives two cells in a slot.

        Receive contention is per (grating, output port): each node has
        one downlink per grating that outputs to it.  Within any slot
        all inputs of a grating transmit on the same wavelength channel,
        and the AWGR's cyclic routing ``output = (input + channel) mod
        G`` is a permutation of the input ports for every fixed channel
        — so two uplinks of one grating collide in *some* slot iff they
        share an input port, in which case they collide in *every*
        slot.  Checking input-port distinctness per grating is
        therefore equivalent to the slot-by-slot output scan, at
        O(uplinks) instead of O(slots x uplinks) — the difference
        between milliseconds and tens of seconds at 4096 nodes.
        """
        seen: set = set()
        for uplink in self.topology.iter_uplinks():
            key = (uplink.grating, uplink.input_port)
            assert key not in seen, (
                f"grating {uplink.grating} input {uplink.input_port} feeds "
                "two uplinks: every slot's shared-channel permutation would "
                "deliver both to the same output port"
            )
            seen.add(key)

    def verify_full_coverage(self) -> None:
        """Assert every node reaches every node exactly
        ``links_per_block`` times per epoch."""
        expected = self.topology.links_per_block
        for src in range(self.topology.n_nodes):
            counts: Dict[int, int] = {}
            for uplink in self.topology.uplinks(src):
                for slot in range(self.slots_per_epoch):
                    dst = self.destination(uplink, slot)
                    counts[dst] = counts.get(dst, 0) + 1
            for dst in range(self.topology.n_nodes):
                assert counts.get(dst, 0) == expected, (
                    f"{src}->{dst} connected {counts.get(dst, 0)} times per "
                    f"epoch, expected {expected}"
                )
