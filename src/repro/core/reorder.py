"""Destination-side reorder buffer (paper §4.2 "Cell reordering", Fig 10d).

Cells of one flow take different intermediates and can arrive out of
order.  The destination holds early cells in a per-flow reorder buffer
and releases them to the application in sequence.  Because congestion
control bounds in-network queuing, the required buffer stays small —
the paper measures a peak of 163 KB per flow at Q=4.

The buffer tracks, per flow, the next expected sequence number and the
set of out-of-order arrivals; its peak occupancy (in cells) is the
statistic Fig 10d reports.
"""

from __future__ import annotations

from typing import Dict, List, Set


class ReorderBuffer:
    """In-order release of out-of-order cell arrivals for one flow."""

    def __init__(self, flow_id: int) -> None:
        self.flow_id = flow_id
        self.next_expected = 0
        self._early: Set[int] = set()
        self.peak_cells = 0

    def accept(self, seq: int) -> List[int]:
        """Accept cell ``seq``; return the sequence numbers released in order.

        Duplicate or already-released sequence numbers are rejected with
        ``ValueError`` — the Sirius core is lossless and never
        duplicates (§4.3), so a duplicate indicates a simulator bug.
        """
        if seq < self.next_expected or seq in self._early:
            raise ValueError(
                f"flow {self.flow_id}: duplicate or stale cell seq {seq} "
                f"(next expected {self.next_expected})"
            )
        if seq != self.next_expected:
            self._early.add(seq)
            self.peak_cells = max(self.peak_cells, len(self._early))
            return []
        released = [seq]
        self.next_expected += 1
        while self.next_expected in self._early:
            self._early.remove(self.next_expected)
            released.append(self.next_expected)
            self.next_expected += 1
        return released

    @property
    def buffered_cells(self) -> int:
        """Cells currently held out of order."""
        return len(self._early)

    def peak_bytes(self, cell_bytes: float) -> float:
        """Peak buffer occupancy in bytes for a given cell size."""
        if cell_bytes <= 0:
            raise ValueError(f"cell size must be positive, got {cell_bytes}")
        return self.peak_cells * cell_bytes


class ReorderTracker:
    """Per-destination collection of reorder buffers with global peaks."""

    def __init__(self) -> None:
        self._buffers: Dict[int, ReorderBuffer] = {}
        self.peak_flow_cells = 0

    def accept(self, flow_id: int, seq: int) -> List[int]:
        """Route ``(flow, seq)`` to the flow's buffer; track the peak."""
        buffer = self._buffers.get(flow_id)
        if buffer is None:
            buffer = ReorderBuffer(flow_id)
            self._buffers[flow_id] = buffer
        released = buffer.accept(seq)
        if buffer.peak_cells > self.peak_flow_cells:
            self.peak_flow_cells = buffer.peak_cells
        return released

    def finish_flow(self, flow_id: int) -> None:
        """Drop a completed flow's buffer (it must be empty)."""
        buffer = self._buffers.pop(flow_id, None)
        if buffer is not None and buffer.buffered_cells:
            raise RuntimeError(
                f"flow {flow_id} finished with {buffer.buffered_cells} cells "
                "stranded in the reorder buffer"
            )

    @property
    def active_flows(self) -> int:
        return len(self._buffers)
