"""The ``vectorized`` epoch-loop backend (paper-scale runs, §7).

:class:`VectorizedEngine` executes the same protocol state machine as
:meth:`repro.core.network.SiriusNetwork.run` — identical phase order,
identical per-node operations, the same single seeded RNG stream — but
keeps the *scheduling* of that work in numpy slabs instead of Python
sets, and exploits two properties the per-node backends cannot:

* **Activity masks and depth slabs.**  Which node has control-plane
  work, a pending grant decision, queued cells or server-side backlog
  is one boolean vector per phase; the per-epoch "who is active" scan
  is ``np.flatnonzero`` (ascending, matching the reference visit
  order) instead of sorting a Python set, and a node-failure mask
  filters rows without per-node predicate calls.  When metrics are
  recorded, per-node queue depths are mirrored into integer slabs so
  the observation hook aggregates with array sums rather than touching
  every node object (:meth:`repro.obs.Observation.sample_network_slabs`).
* **Batched grant admission.**  The grant phase's break-on-deny loop
  collapses to the closed form
  :func:`repro.core.congestion.grant_admission_count`; per-destination
  DRRM pointer ordering of large request batches is a numpy argsort.
  (When a tracer or registry is live the engine defers to
  :meth:`SiriusNode.decide_grants` so per-decision observability is
  preserved.)
* **Idle-epoch skipping.**  When every mask is empty, nothing is in
  flight and no announcement is pending, *no* state can change until
  the next flow arrival or scripted failure event — every per-node
  phase operation is a no-op that consumes no randomness, and the DRRM
  offsets and request histories of idle nodes do not advance.  The
  engine jumps the epoch counter straight to the next event, which is
  what makes sparse workloads (the bench micro scenario, long drain
  tails, failure-wait windows) orders of magnitude cheaper.  Skipping
  is disabled while a telemetry sampler or live observation bundle is
  attached, since those record per-epoch series.

Cells themselves stay in the per-node queue structures of
:class:`repro.core.node.SiriusNode`: the simulation's observable output
is per-cell (flow completion times, queue peaks, reorder distances), so
cell identity must be preserved and per-cell queue moves remain Python.
The slabs hold everything *about* the nodes that the epoch loop reads
on its hot path.

Seeded-run equivalence with the ``reference`` and ``fast`` backends is
enforced by the three-way parity suite in
``tests/core/test_fast_path_equivalence.py``.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backend import EpochEngine
from repro.core.cell import Cell, Flow, cell_range
from repro.core.congestion import grant_admission_count
from repro.core.failures import FailurePlan
from repro.core.telemetry import Telemetry
from repro.obs.observation import NULL_OBS, Observation

__all__ = ["VectorizedEngine"]

#: Request batches at or above this size take the numpy argsort path in
#: the grant phase; smaller ones stay on the (cheaper) list sort.
GRANT_SORT_THRESHOLD = 64


class VectorizedEngine(EpochEngine):
    """Run one :class:`SiriusNetwork` simulation on numpy slabs.

    The engine is constructed per run from the owning network and
    borrows its topology, schedule, config, RNG and nodes — it is an
    execution strategy, not a second simulator.
    """

    def __init__(self, network) -> None:
        self.net = network

    # -- grant phase ---------------------------------------------------------
    def _decide_grants(self, node, grants_per_destination: int,
                       direct_window: int = 3) -> List[Tuple[int, int]]:
        """Batched equivalent of :meth:`SiriusNode.decide_grants`.

        Per destination the sequential admit-until-deny loop grants the
        first ``grant_admission_count(...)`` sources of the DRRM
        pointer order (or of the shuffled order in ``random`` mode) —
        so the batch form admits the same sources, updates the same
        bookkeeping, and consumes the same RNG draws.
        """
        inbox = node.request_inbox
        if not inbox:
            return []
        excluded = node.excluded
        config = node.config
        by_dst = {}
        for src, dst in inbox:
            if src in excluded or dst in excluded:
                continue
            by_dst.setdefault(dst, []).append(src)
        inbox.clear()
        grants: List[Tuple[int, int]] = []
        threshold = config.queue_threshold
        drrm = config.selection == "drrm"
        n_nodes = node.n_nodes
        for dst, sources in by_dst.items():
            if dst == node.node:
                window = node._direct_outstanding
                for src in sources:
                    in_flight = window.get(src, 0)
                    if in_flight < direct_window:
                        window[src] = in_flight + 1
                        grants.append((src, dst))
                continue
            if drrm:
                pointer = node._grant_pointers.get(dst, 0)
                if len(sources) >= GRANT_SORT_THRESHOLD:
                    arr = np.asarray(sources)
                    order = np.argsort((arr - pointer) % n_nodes)
                    sources = arr[order].tolist()
                else:
                    sources.sort(key=lambda s: (s - pointer) % n_nodes)
            else:
                node.rng.shuffle(sources)
            granted = grant_admission_count(
                len(sources), len(node.fwd.get(dst, ())),
                node.outstanding.get(dst, 0), threshold,
                grants_per_destination,
            )
            if not granted:
                continue
            winners = sources[:granted]
            node.outstanding[dst] = node.outstanding.get(dst, 0) + granted
            by_src = node._outstanding_by_src
            for src in winners:
                pair = (src, dst)
                by_src[pair] = by_src.get(pair, 0) + 1
                grants.append((src, dst))
            if drrm:
                node._grant_pointers[dst] = (winners[-1] + 1) % n_nodes
        return grants

    # -- request phase -------------------------------------------------------
    def _generate_requests(self, node) -> List[Tuple[int, int]]:
        """Slice-based equivalent of :meth:`SiriusNode.generate_requests`.

        Identical request list, bookkeeping and RNG consumption; the
        DRRM intermediate rotation is two list slices instead of a
        per-request modulo, and the common single-backlogged-destination
        case skips the round-robin sequencing loop entirely (every
        request of the epoch targets that destination).
        """
        config = node.config
        if config.ideal:
            return []
        requested = node.requested
        excluded = node.excluded
        backlog = [
            (dst, len(queue) - requested.get(dst, 0))
            for dst, queue in node.local_by_dst.items()
            if len(queue) > requested.get(dst, 0) and dst not in excluded
        ]
        history = node._sent_request_history
        if not backlog:
            history.append(Counter())
            return []
        others = node._others
        drrm = config.selection == "drrm"
        forbid_direct = config.exclude_destination_intermediate
        single = len(backlog) == 1 and drrm and not forbid_direct
        if single:
            total = min(backlog[0][1], len(others))
        else:
            pending = dict(backlog)
            total = min(sum(pending.values()), len(others))
            if drrm:
                order = sorted(pending)
            else:
                order = list(pending)
                node.rng.shuffle(order)
            dst_sequence: List[int] = []
            idx = 0
            while len(dst_sequence) < total:
                dst = order[idx % len(order)]
                if pending[dst] > 0:
                    dst_sequence.append(dst)
                    pending[dst] -= 1
                    idx += 1
                else:
                    order.remove(dst)
        candidates = (
            [o for o in others if o not in excluded]
            if excluded else others
        )
        total = min(total, len(candidates))
        if drrm:
            offset = node._request_offset
            node._request_offset += 1
            if total:
                start = offset % len(candidates)
                stop = start + total
                if stop <= len(candidates):
                    intermediates = candidates[start:stop]
                else:
                    intermediates = (candidates[start:]
                                     + candidates[:stop - len(candidates)])
            else:
                intermediates = []
        else:
            intermediates = node.rng.sample(candidates, total)
        if single:
            dst = backlog[0][0]
            if not total:
                history.append(Counter())
                return []
            requested[dst] = requested.get(dst, 0) + total
            history.append(Counter({dst: total}))
            return [(intermediate, dst) for intermediate in intermediates]
        requests: List[Tuple[int, int]] = []
        batch: Counter = Counter()
        for intermediate, dst in zip(intermediates, dst_sequence):
            if forbid_direct and intermediate == dst:
                continue
            requests.append((intermediate, dst))
            batch[dst] += 1
            requested[dst] = requested.get(dst, 0) + 1
        history.append(batch)
        return requests

    # -- main loop -----------------------------------------------------------
    def run(self, flows: Sequence[Flow], *,
            max_epochs: Optional[int] = None,
            drain_epochs: int = 200_000,
            check_invariants: bool = False,
            failure_plan: Optional[FailurePlan] = None,
            detection_epochs: int = 3,
            telemetry: Optional[Telemetry] = None,
            obs: Optional[Observation] = None):
        """Simulate; same contract as :meth:`SiriusNetwork.run`."""
        from repro.core.network import SimulationResult

        net = self.net
        if obs is None:
            obs = NULL_OBS
        tracer = obs.tracer
        registry = obs.registry
        profiler = obs.profiler
        tracing = tracer.enabled
        metering = registry.enabled
        profiling = profiler.enabled
        observing = tracing or metering
        for node in net.nodes:
            node.observe_with(obs)
        if failure_plan is not None:
            failure_plan.observe_with(obs)
        if metering:
            delivered_counter = registry.counter(
                "delivered_bits_total", "application payload delivered"
            )
            transmitted_counter = registry.counter(
                "cells_transmitted_total", "cells placed on schedule slots"
            )
            retransmit_counter = registry.counter(
                "retransmitted_cells_total",
                "cells resent after loss at a failed node",
            )
            failed_flow_counter = registry.counter(
                "failed_flows_total", "flows terminated by node failures"
            )
            dropped_counter = registry.counter(
                "cells_dropped_total", "cells purged or lost to failures"
            )

        t_mark = profiler.start_run()
        epoch_dur = net.schedule.epoch_duration_s
        payload_bits = net.timing.payload_bits
        ideal = net.config.ideal
        track_reorder = net.track_reorder
        failed_set = failure_plan.failed if failure_plan is not None else None
        epoch_capacity = net.epoch_capacity
        cap_table = net._capacity_table()
        cap_period = len(cap_table) if cap_table else 1
        grant_cap = net.config.effective_grant_cap
        queue_threshold = net.config.queue_threshold
        drrm_selection = net.config.selection == "drrm"
        flows = list(flows)
        for i in range(1, len(flows)):
            if flows[i].arrival_time < flows[i - 1].arrival_time:
                raise ValueError("flows must be sorted by arrival time")
        flow_by_id = {}
        last_cell_bits = {}
        offered_bits = 0.0
        for flow in flows:
            flow.segment(payload_bits)
            flow_by_id[flow.flow_id] = flow
            last_cell_bits[flow.flow_id] = (
                flow.size_bits - (flow.n_cells - 1) * payload_bits
            )
            offered_bits += flow.size_bits

        if max_epochs is None:
            last_arrival = flows[-1].arrival_time if flows else 0.0
            max_epochs = int(last_arrival / epoch_dur) + drain_epochs

        nodes = net.nodes
        n_nodes = net.topology.n_nodes
        n_flows = len(flows)
        pending_flows = n_flows
        delivered_bits = 0.0
        peak_reorder = 0
        failed_flows = 0
        retransmits = 0
        dead_flows: set = set()
        announcements: Deque[Tuple[int, int, bool]] = deque()

        # The per-phase activity state, as one boolean slab per phase
        # (the vector analogue of the fast path's active sets) plus the
        # failure mask.  np.flatnonzero yields rows in ascending order
        # — exactly the sorted-set visit order the reference RNG
        # stream requires.
        control_m = np.zeros(n_nodes, dtype=bool)
        grant_m = np.zeros(n_nodes, dtype=bool)
        transmit_m = np.zeros(n_nodes, dtype=bool)
        backlog_m = np.zeros(n_nodes, dtype=bool)
        failed_m = np.zeros(n_nodes, dtype=bool)
        popped: set = set()

        # Depth slabs: per-node queue depths, mirrored only while a
        # metrics registry is live — they exist so the sampling hook
        # can aggregate occupancy with three array sums instead of a
        # full pass over node objects.
        if metering:
            local_depth = np.zeros(n_nodes, dtype=np.int64)
            vq_depth = np.zeros(n_nodes, dtype=np.int64)
            fwd_depth = np.zeros(n_nodes, dtype=np.int64)

        def sync_depths(idx: int) -> None:
            node = nodes[idx]
            local_depth[idx] = node.local_cells
            vq_depth[idx] = node.vq_cells
            fwd_depth[idx] = node.fwd_cells

        def alive_rows(mask) -> List[int]:
            rows = np.flatnonzero(mask)
            if failure_plan is not None and failed_m.any():
                rows = rows[~failed_m[rows]]
            return rows.tolist()

        def rebuild_masks() -> None:
            control_m[:] = False
            grant_m[:] = False
            transmit_m[:] = False
            for node in nodes:
                if not node.control_idle:
                    control_m[node.node] = True
                if node.request_inbox:
                    grant_m[node.node] = True
                if node.fwd or node.vq:
                    transmit_m[node.node] = True
                if metering:
                    sync_depths(node.node)

        def kill_flow(flow_id: int) -> None:
            nonlocal pending_flows, failed_flows
            if flow_id in dead_flows:
                return
            flow = flow_by_id[flow_id]
            if flow.is_complete:
                return
            dead_flows.add(flow_id)
            pending_flows -= 1
            failed_flows += 1
            if metering:
                failed_flow_counter.inc()

        def retransmit(cell: Cell) -> None:
            nonlocal retransmits
            if cell.flow_id in dead_flows:
                return
            if failed_set is not None and cell.src in failed_set:
                kill_flow(cell.flow_id)
                return
            nodes[cell.src].enqueue_local(cell)
            if ideal:
                transmit_m[cell.src] = True
            else:
                control_m[cell.src] = True
            if metering:
                sync_depths(cell.src)
            retransmits += 1
            if metering:
                retransmit_counter.inc()

        def announce_failure(f_node: int) -> None:
            if tracing:
                tracer.emit("failure.announce", node=f_node)
            for node in nodes:
                if node.node == f_node:
                    continue
                node.excluded.add(f_node)
                node.release_grants_for(f_node)
                node.purge_destination(f_node)
            transit, own = nodes[f_node].drain_for_failure()
            for cell in own:
                kill_flow(cell.flow_id)
            for flow in flows:
                if flow.dst == f_node:
                    kill_flow(flow.flow_id)
            for cell in transit:
                retransmit(cell)

        def announce_recovery(f_node: int) -> None:
            if tracing:
                tracer.emit("failure.recover", node=f_node)
            for node in nodes:
                node.excluded.discard(f_node)

        def deliver(batch: List[Tuple[int, Cell, int]],
                    arrival_time: float) -> None:
            nonlocal pending_flows, delivered_bits, peak_reorder
            batch_bits = 0.0
            for recv, cell, sender in batch:
                if failed_set is not None and recv in failed_set:
                    if tracing:
                        tracer.emit("cell.drop", node=recv, count=1,
                                    flow=cell.flow_id,
                                    reason="lost-in-flight")
                    if metering:
                        dropped_counter.inc(reason="lost-in-flight")
                    if cell.dst == recv:
                        kill_flow(cell.flow_id)
                    else:
                        retransmit(cell)
                    continue
                if cell.flow_id in dead_flows:
                    continue
                node = nodes[recv]
                if cell.dst != recv:
                    # Inline of SiriusNode.receive_transit: enqueue on
                    # the forward queue and release the outstanding
                    # grant the cell consumed.
                    dst = cell.dst
                    queue = node.fwd.get(dst)
                    if queue is None:
                        queue = node._queue_factory()
                        node.fwd[dst] = queue
                    queue.append(cell)
                    node.fwd_cells += 1
                    if node.fwd_cells > node.peak_fwd_cells:
                        node.peak_fwd_cells = node.fwd_cells
                    if tracing:
                        tracer.emit("cell.enqueue", node=recv,
                                    queue="fwd", flow=cell.flow_id,
                                    dst=dst)
                    if not ideal:
                        outstanding = node.outstanding.get(dst, 0)
                        if outstanding <= 0:
                            raise RuntimeError(
                                f"node {recv}: transit cell for {dst} "
                                "arrived without an outstanding grant"
                            )
                        if outstanding == 1:
                            del node.outstanding[dst]
                        else:
                            node.outstanding[dst] = outstanding - 1
                        pair = (cell.src, dst)
                        by_src = node._outstanding_by_src.get(pair, 0)
                        if by_src == 1:
                            del node._outstanding_by_src[pair]
                        elif by_src > 1:
                            node._outstanding_by_src[pair] = by_src - 1
                    transmit_m[recv] = True
                    if metering:
                        sync_depths(recv)
                    continue
                if sender == cell.src and not ideal:
                    node.note_direct_arrival(sender)
                flow = flow_by_id[cell.flow_id]
                if track_reorder:
                    node.reorder.accept(cell.flow_id, cell.seq)
                if cell.seq == flow.n_cells - 1:
                    cell_bits = last_cell_bits[cell.flow_id]
                else:
                    cell_bits = payload_bits
                delivered_bits += cell_bits
                batch_bits += cell_bits
                if flow.record_delivery(arrival_time):
                    pending_flows -= 1
                    if tracing:
                        tracer.emit("flow.completion", node=recv,
                                    flow=cell.flow_id)
                    if track_reorder:
                        peak = node.reorder.peak_flow_cells
                        if peak > peak_reorder:
                            peak_reorder = peak
                        node.reorder.finish_flow(cell.flow_id)
            if metering and batch_bits:
                delivered_counter.inc(batch_bits)

        next_flow = 0
        in_flight: List[Tuple[int, Cell, int]] = []
        server_backlog: List[Deque[Tuple[Flow, int]]] = [
            deque() for _ in nodes
        ]
        local_capacity = net.local_capacity_cells
        # Idle-epoch skipping records per-epoch nothing, so it is only
        # legal when nothing records per-epoch series either.
        can_skip = telemetry is None and not obs.enabled
        epoch = 0
        if profiling:
            t_mark = profiler.lap("setup", t_mark)
        while epoch < max_epochs:
            if tracing:
                tracer.at(epoch, epoch * epoch_dur)
                tracer.emit("epoch", in_flight=len(in_flight))
            if profiling:
                profiler.set_epoch(epoch)

            # Phase 0: failure events fire; announcements propagate
            # after the detection delay.
            if failure_plan is not None:
                for event in failure_plan.advance_to(epoch):
                    failed_m[event.node] = event.fails
                    announcements.append(
                        (epoch + detection_epochs, event.node, event.fails)
                    )
                announced = False
                while announcements and announcements[0][0] <= epoch:
                    _eff, f_node, fails = announcements.popleft()
                    if fails:
                        announce_failure(f_node)
                    else:
                        announce_recovery(f_node)
                    announced = True
                if announced:
                    rebuild_masks()
            if profiling:
                t_mark = profiler.lap("failures", t_mark)

            # Phase 1: deliver last epoch's transmissions.
            if in_flight:
                deliver(in_flight, epoch * epoch_dur)
                in_flight = []
            if profiling:
                t_mark = profiler.lap("deliver", t_mark)

            # Phase 2: resolve the completed request round.
            if not ideal:
                popped.clear()
                for idx in alive_rows(control_m):
                    node = nodes[idx]
                    if node.control_idle:
                        control_m[idx] = False
                        continue
                    node.apply_grants_and_expiries()
                    popped.add(idx)
                    if metering:
                        sync_depths(idx)
                    if node.vq_cells:
                        transmit_m[idx] = True
            if profiling:
                t_mark = profiler.lap("resolve", t_mark)

            # Phase 3: admit arrivals whose time falls inside this epoch.
            horizon = (epoch + 1) * epoch_dur
            while next_flow < n_flows and (
                flows[next_flow].arrival_time < horizon
            ):
                flow = flows[next_flow]
                next_flow += 1
                if tracing:
                    tracer.emit("flow.arrival", node=flow.src,
                                flow=flow.flow_id, dst=flow.dst,
                                cells=flow.n_cells)
                if failed_set is not None and (
                    flow.src in failed_set or flow.dst in failed_set
                ):
                    kill_flow(flow.flow_id)
                    continue
                if local_capacity is None:
                    src = flow.src
                    nodes[src].enqueue_local_cells(
                        cell_range(flow, 0, flow.n_cells)
                    )
                    if metering:
                        sync_depths(src)
                    if ideal:
                        transmit_m[src] = True
                    else:
                        if src not in popped:
                            # A node re-activating after the resolve
                            # phase replays the history rotation it
                            # slept through (same asymmetry as the
                            # fast path's admission-time catch-up).
                            nodes[src].catch_up_history()
                            popped.add(src)
                        control_m[src] = True
                else:
                    server_backlog[flow.src].append((flow, 0))
                    backlog_m[flow.src] = True
            if local_capacity is not None:
                limit = local_capacity
                for idx in np.flatnonzero(backlog_m).tolist():
                    node = nodes[idx]
                    backlog = server_backlog[idx]
                    while backlog and node.local_cells < limit:
                        flow, start = backlog[0]
                        if flow.flow_id in dead_flows:
                            backlog.popleft()
                            continue
                        room = limit - node.local_cells
                        end = min(flow.n_cells, start + room)
                        node.enqueue_local_cells(cell_range(flow, start, end))
                        if metering:
                            sync_depths(idx)
                        if ideal:
                            transmit_m[idx] = True
                        else:
                            if idx not in popped:
                                node.catch_up_history()
                                popped.add(idx)
                            control_m[idx] = True
                        if end == flow.n_cells:
                            backlog.popleft()
                        else:
                            backlog[0] = (flow, end)
                            break
                    if not backlog:
                        backlog_m[idx] = False
            if profiling:
                t_mark = profiler.lap("admit", t_mark)

            # Phases 4-5: grant round, then request round (grants act
            # on the requests received in the *previous* epoch, §4.3).
            capacity = (cap_table[epoch % cap_period] if cap_table
                        else epoch_capacity(epoch))
            if not ideal:
                for idx in alive_rows(grant_m):
                    grant_m[idx] = False
                    node = nodes[idx]
                    if observing:
                        grants = node.decide_grants(grant_cap)
                    elif len(node.request_inbox) == 1:
                        # Dominant case on sparse workloads: one request
                        # pending.  A one-element source list needs no
                        # ordering (and a one-element shuffle draws
                        # nothing), so this inline skips the method
                        # call, grouping dict and sort of the batch
                        # path while leaving protocol state and RNG
                        # exactly as it would.
                        src, dst = node.request_inbox[0]
                        node.request_inbox.clear()
                        grants = ()
                        if src in node.excluded or dst in node.excluded:
                            pass
                        elif dst == idx:
                            window = node._direct_outstanding
                            direct = window.get(src, 0)
                            if direct < 3:
                                window[src] = direct + 1
                                grants = ((src, dst),)
                        else:
                            outstanding = node.outstanding.get(dst, 0)
                            if (grant_cap >= 1
                                    and len(node.fwd.get(dst, ()))
                                    + outstanding < queue_threshold):
                                node.outstanding[dst] = outstanding + 1
                                pair = (src, dst)
                                node._outstanding_by_src[pair] = (
                                    node._outstanding_by_src.get(pair, 0)
                                    + 1
                                )
                                if drrm_selection:
                                    node._grant_pointers[dst] = (
                                        (src + 1) % n_nodes
                                    )
                                grants = (pair,)
                    else:
                        grants = self._decide_grants(node, grant_cap)
                    for src, dst in grants:
                        if failed_set is not None and src in failed_set:
                            continue
                        nodes[src].grant_inbox.append((idx, dst))
                        if src not in popped:
                            nodes[src].catch_up_history()
                            popped.add(src)
                        control_m[src] = True
                for idx in alive_rows(control_m):
                    node = nodes[idx]
                    for intermediate, dst in self._generate_requests(node):
                        nodes[intermediate].request_inbox.append((idx, dst))
                        grant_m[intermediate] = True
                    if node.control_idle:
                        control_m[idx] = False
            if profiling:
                t_mark = profiler.lap("control", t_mark)

            # Phase 6: transmit on every busy pair slot.  The busy-
            # destination scan is inlined (same key-set union, so the
            # same visiting order as SiriusNode.busy_destinations —
            # a transmit-mask bit guarantees a non-empty queue), and so
            # is the protocol-mode branch of SiriusNode.dequeue_for:
            # forward cells first, then granted virtual-queue cells, up
            # to the slot capacity.  Ideal mode keeps the method call
            # (fair-queue alternation), as do traced runs (per-cell
            # ``cell.dequeue`` events).
            for idx in alive_rows(transmit_m):
                node = nodes[idx]
                fwd = node.fwd
                vq = node.vq
                if ideal or tracing:
                    for dst in list(fwd.keys() | vq.keys()):
                        for cell in node.dequeue_for(dst, capacity):
                            in_flight.append((dst, cell, idx))
                            if tracing:
                                tracer.emit("cell.dequeue", node=idx,
                                            to=dst, flow=cell.flow_id,
                                            dst=cell.dst)
                elif capacity > 0:
                    for dst in list(fwd.keys() | vq.keys()):
                        taken = 0
                        fwd_queue = fwd.get(dst)
                        if fwd_queue:
                            while fwd_queue and taken < capacity:
                                in_flight.append(
                                    (dst, fwd_queue.popleft(), idx)
                                )
                                taken += 1
                            if not fwd_queue:
                                del fwd[dst]
                            node.fwd_cells -= taken
                        vq_queue = vq.get(dst)
                        if vq_queue and taken < capacity:
                            vq_taken = 0
                            while vq_queue and taken + vq_taken < capacity:
                                in_flight.append(
                                    (dst, vq_queue.popleft(), idx)
                                )
                                vq_taken += 1
                            if not vq_queue:
                                del vq[dst]
                            node.vq_cells -= vq_taken
                if metering:
                    sync_depths(idx)
                if not node.fwd and not node.vq:
                    transmit_m[idx] = False
            if metering and in_flight:
                transmitted_counter.inc(len(in_flight))
            if profiling:
                t_mark = profiler.lap("transmit", t_mark)

            if check_invariants:
                for node in nodes:
                    node.check_invariants()

            if telemetry is not None:
                telemetry.sample(epoch, nodes, len(in_flight),
                                 delivered_bits)
            if metering and epoch % obs.sample_every == 0:
                obs.sample_network_slabs(epoch, local_depth, vq_depth,
                                         fwd_depth, len(in_flight),
                                         delivered_bits)
            if profiling:
                t_mark = profiler.lap("observe", t_mark)

            epoch += 1
            if (pending_flows == 0 and not in_flight
                    and next_flow >= n_flows and not backlog_m.any()):
                break

            # Idle-epoch skip: with every mask empty, nothing in flight
            # and no pending announcement, each epoch until the next
            # external event is a proven no-op for every node — no
            # queue moves, no history rotation, no RNG draw — so the
            # epoch counter can jump there directly.
            if (can_skip and not in_flight and not announcements
                    and not (control_m.any() or grant_m.any()
                             or transmit_m.any() or backlog_m.any())):
                targets = []
                if next_flow < n_flows:
                    targets.append(
                        int(flows[next_flow].arrival_time / epoch_dur)
                    )
                if failure_plan is not None:
                    next_event = failure_plan.next_event_epoch()
                    if next_event is not None:
                        targets.append(next_event)
                target = min(targets) if targets else max_epochs
                if target > epoch:
                    epoch = min(target, max_epochs)

        if tracing:
            tracer.at(epoch, epoch * epoch_dur)
        if in_flight:
            deliver(in_flight, epoch * epoch_dur)

        duration = max(epoch, 1) * epoch_dur
        if profiling:
            profiler.lap("finalize", t_mark)
            profiler.end_run()
        return SimulationResult(
            flows=flows,
            epochs=epoch,
            duration_s=duration,
            delivered_bits=delivered_bits,
            offered_bits=offered_bits,
            reference_node_bandwidth_bps=net.reference_node_bandwidth_bps,
            n_nodes=n_nodes,
            cell_bytes=net.timing.cell_bytes,
            peak_fwd_cells=max(n.peak_fwd_cells for n in nodes),
            peak_local_cells=max(n.peak_local_cells for n in nodes),
            peak_reorder_cells=peak_reorder,
            config=net.config,
            failed_flows=failed_flows,
            retransmitted_cells=retransmits,
        )
