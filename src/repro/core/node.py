"""Per-node state for the Sirius cell simulator (paper §4.2–4.3).

A node (rack switch or server NIC) owns four kinds of queues:

* ``LOCAL`` — cells generated locally (or received from the rack's
  servers), awaiting a grant.  Partitioned by final destination.
* virtual queues ``vq[I]`` — granted cells awaiting their slot to
  intermediate ``I``.
* forward queues ``fwd[D]`` — cells received as intermediate, awaiting
  the node's slot to final destination ``D``.  Bounded by the grant
  protocol at ``Q`` cells each.
* the reorder buffers of locally-terminating flows.

The epoch-by-epoch protocol state machine (request → grant → send) is
driven by :class:`repro.core.network.SiriusNetwork`; this class provides
the state plus the per-phase operations, so the protocol logic is
testable in isolation.

One deliberate deviation from the paper's Fig 15 pseudocode: the paper
scans LOCAL in strict FIFO order when generating requests, whereas this
implementation round-robins across destinations with backlogged cells.
The orderings only differ when the LOCAL backlog exceeds the number of
intermediates (N−1 requests per epoch), where round-robin is at least as
fair across destinations; throughput and queue bounds are unaffected.
"""

from __future__ import annotations

import random
from collections import Counter, deque
from typing import Deque, Dict, List, Tuple

from repro.core.cell import Cell
from repro.core.congestion import (
    REQUEST_ROUND_TRIP_EPOCHS,
    CongestionConfig,
    may_grant,
    record_grant_decision,
)
from repro.core.reorder import ReorderTracker
from repro.obs.events import NULL_TRACER
from repro.obs.metrics import NULL_REGISTRY


class FairQueue:
    """A queue of cells served round-robin across flows.

    Implements the per-flow-queue idealization of the paper's
    SIRIUS (IDEAL) and ESN (Ideal) baselines (§7): short flows are never
    stuck behind an elephant's burst in the same queue.  Supports the
    same ``append`` / ``popleft`` / ``len`` surface as
    :class:`collections.deque` so the transmit path is agnostic.
    """

    __slots__ = ("_flows", "_order", "_cursor", "_size")

    def __init__(self) -> None:
        self._flows: Dict[int, Deque[Cell]] = {}
        self._order: List[int] = []
        self._cursor = 0
        self._size = 0

    def append(self, cell: Cell) -> None:
        queue = self._flows.get(cell.flow_id)
        if queue is None:
            queue = deque()
            self._flows[cell.flow_id] = queue
            self._order.append(cell.flow_id)
        queue.append(cell)
        self._size += 1

    def popleft(self) -> Cell:
        if not self._size:
            raise IndexError("pop from an empty FairQueue")
        while True:
            self._cursor %= len(self._order)
            flow_id = self._order[self._cursor]
            queue = self._flows[flow_id]
            if queue:
                cell = queue.popleft()
                self._size -= 1
                if not queue:
                    del self._flows[flow_id]
                    self._order.pop(self._cursor)
                else:
                    self._cursor += 1
                return cell
            del self._flows[flow_id]
            self._order.pop(self._cursor)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def purge(self, predicate) -> List[Cell]:
        """Remove and return every queued cell matching ``predicate``.

        Partitions each flow's queue in a single pass — the predicate
        runs exactly once per queued cell.
        """
        removed: List[Cell] = []
        for flow_id in list(self._flows):
            queue = self._flows[flow_id]
            kept: Deque[Cell] = deque()
            before = len(removed)
            for cell in queue:
                if predicate(cell):
                    removed.append(cell)
                else:
                    kept.append(cell)
            if len(removed) == before:
                continue
            if kept:
                self._flows[flow_id] = kept
            else:
                del self._flows[flow_id]
                self._order.remove(flow_id)
        self._size -= len(removed)
        self._cursor = 0
        return removed


class SiriusNode:
    """State and per-phase operations of one Sirius node."""

    def __init__(self, node: int, n_nodes: int, config: CongestionConfig,
                 rng: random.Random) -> None:
        self.node = node
        self.n_nodes = n_nodes
        self.config = config
        self.rng = rng
        # Candidate-intermediate list, built on first use: at
        # paper-scale (4096 nodes) the eager per-node list is ~N**2
        # ints of construction cost and memory, paid even by nodes
        # that never source a single cell.
        self._others_cache: List[int] = None

        # LOCAL buffer, partitioned by destination, plus request bookkeeping.
        self.local_by_dst: Dict[int, Deque[Cell]] = {}
        self.local_cells = 0
        self.requested: Dict[int, int] = {}
        # Request batches awaiting resolution, oldest first.  A batch
        # appended during epoch e is popped (resolved) by the apply phase
        # of epoch e + REQUEST_ROUND_TRIP_EPOCHS, so the deque is primed
        # with that many empty placeholders.
        self._sent_request_history: Deque[Counter] = deque(
            Counter() for _ in range(REQUEST_ROUND_TRIP_EPOCHS)
        )

        # Granted first-hop cells per intermediate.
        self.vq: Dict[int, Deque[Cell]] = {}
        self.vq_cells = 0

        # Second-hop queues per final destination, and grant accounting.
        self.fwd: Dict[int, Deque[Cell]] = {}
        self.fwd_cells = 0
        self.outstanding: Dict[int, int] = {}
        self.peak_fwd_cells = 0
        self.peak_local_cells = 0

        # Control-plane inboxes (filled by the network, drained per epoch).
        self.request_inbox: List[Tuple[int, int]] = []
        self.grant_inbox: List[Tuple[int, int]] = []

        # DRRM state: rotating request offset (desynchronized across
        # nodes by seeding with the node id) and per-destination grant
        # pointers over sources.
        self._request_offset = node
        self._grant_pointers: Dict[int, int] = {}

        # Ideal mode: per-flow fair queues (instead of FIFOs) and a
        # round-robin spreading pointer (instead of request/grant).
        self._queue_factory = FairQueue if config.ideal else deque
        self._spread_pointer = node
        self._slot_parity: Dict[int, int] = {}

        # Failure handling (§4.5): peers announced failed are excluded
        # from intermediate selection; per-source grant attribution lets
        # reservations held for a dead source be released.
        self.excluded: set = set()
        self._outstanding_by_src: Dict[Tuple[int, int], int] = {}

        # Direct (single-hop) grant window: as the *destination*, this
        # node bounds in-flight direct grants per source so the
        # source's shared slot (forward traffic has priority) cannot
        # accumulate an unbounded virtual-queue backlog.
        self._direct_outstanding: Dict[int, int] = {}

        self.reorder = ReorderTracker()

        # Observability (repro.obs): no-op by default; the network's
        # run() swaps these for live instruments via observe_with().
        # Hot paths gate on `.enabled`, so the disabled cost is one
        # attribute load and branch per operation.
        self._tracer = NULL_TRACER
        self._registry = NULL_REGISTRY

    def observe_with(self, obs) -> None:
        """Attach an :class:`repro.obs.Observation`'s planes."""
        self._tracer = obs.tracer
        self._registry = obs.registry

    @property
    def _others(self) -> List[int]:
        """Every other node id, ascending (lazily built and cached)."""
        others = self._others_cache
        if others is None:
            others = self._others_cache = [
                n for n in range(self.n_nodes) if n != self.node
            ]
        return others

    # ------------------------------------------------------------------
    # Phase: local arrivals
    # ------------------------------------------------------------------
    def enqueue_local(self, cell: Cell) -> None:
        """Add a locally-generated cell to LOCAL (or push it straight to a
        virtual queue in the ideal, protocol-less variant)."""
        if self.config.ideal:
            intermediate = self._pick_intermediate(cell.dst)
            queue = self.vq.get(intermediate)
            if queue is None:
                queue = self._queue_factory()
                self.vq[intermediate] = queue
            queue.append(cell)
            self.vq_cells += 1
            if self._tracer.enabled:
                self._tracer.emit("cell.enqueue", node=self.node,
                                  queue="vq", flow=cell.flow_id,
                                  dst=cell.dst, intermediate=intermediate)
            return
        self.local_by_dst.setdefault(cell.dst, deque()).append(cell)
        self.local_cells += 1
        if self.local_cells > self.peak_local_cells:
            self.peak_local_cells = self.local_cells
        if self._tracer.enabled:
            self._tracer.emit("cell.enqueue", node=self.node, queue="local",
                              flow=cell.flow_id, dst=cell.dst)

    def enqueue_local_cells(self, cells: List[Cell]) -> None:
        """Admit a slab of locally-generated cells of one flow.

        All cells of a flow share the same destination, so protocol
        mode extends the destination's LOCAL deque in one C-level call
        — the order is exactly that of per-cell :meth:`enqueue_local`.
        Ideal mode must advance the spreading pointer per cell, so it
        falls back to the per-cell path.
        """
        if not cells:
            return
        if self.config.ideal:
            for cell in cells:
                self.enqueue_local(cell)
            return
        self.local_by_dst.setdefault(cells[0].dst, deque()).extend(cells)
        self.local_cells += len(cells)
        if self.local_cells > self.peak_local_cells:
            self.peak_local_cells = self.local_cells
        if self._tracer.enabled:
            for cell in cells:
                self._tracer.emit("cell.enqueue", node=self.node,
                                  queue="local", flow=cell.flow_id,
                                  dst=cell.dst)

    def _pick_intermediate(self, dst: int) -> int:
        """Ideal-mode spreading: strict round-robin over the other nodes
        ("routed uniformly on a packet-by-packet basis", §4.2)."""
        for _ in range(self.n_nodes):
            self._spread_pointer = (self._spread_pointer + 1) % self.n_nodes
            choice = self._spread_pointer
            if choice == self.node or choice in self.excluded:
                continue
            if self.config.exclude_destination_intermediate and choice == dst:
                continue
            return choice
        raise RuntimeError("no legal intermediate available")

    # ------------------------------------------------------------------
    # Fast-path bookkeeping
    # ------------------------------------------------------------------
    @property
    def control_idle(self) -> bool:
        """True when this epoch's control phases would all be no-ops.

        An idle node has no LOCAL backlog (nothing to request: with
        ``requested[dst] <= len(local_by_dst[dst])`` by invariant, an
        empty LOCAL implies nothing outstanding either), no arrived
        grants to apply, and an all-empty request history (every
        pending batch resolves to an empty :class:`Counter`).  For such
        a node ``apply_grants_and_expiries`` + ``generate_requests``
        reduce to popping one empty batch and appending another — and,
        crucially, consume **no** RNG draws, so the network's fast path
        may skip it without perturbing the shared seeded stream
        (:meth:`catch_up_history` replays the pop/append pair lazily).
        """
        return (not self.local_cells and not self.grant_inbox
                and not self.requested
                and not any(self._sent_request_history))

    def catch_up_history(self) -> None:
        """Replay the history rotation skipped while control-idle.

        The reference path pops one request batch and appends one per
        epoch; a skipped idle epoch leaves both sides empty, so popping
        a single empty placeholder per missed epoch restores the exact
        deque the reference path would hold.  The network calls this
        when an idle node re-activates mid-epoch (cells admitted after
        the resolve phase already ran).
        """
        if self._sent_request_history:
            self._sent_request_history.popleft()

    # ------------------------------------------------------------------
    # Phase: resolve the previous round's requests (grants + expiries)
    # ------------------------------------------------------------------
    def apply_grants_and_expiries(self) -> None:
        """Apply arrived grants, then expire the unanswered requests of
        the same (oldest) batch so their cells become requestable again."""
        if self.config.ideal:
            return
        resolved = self._sent_request_history.popleft() if (
            self._sent_request_history
        ) else Counter()
        for _intermediate, dst in self.grant_inbox:
            if dst in self.excluded or _intermediate in self.excluded:
                # Grant referencing a failed node: the reservation was
                # (or will be) released by the failure announcement.
                continue
            queue = self.local_by_dst.get(dst)
            if not queue:
                raise RuntimeError(
                    f"node {self.node}: grant for destination {dst} but no "
                    "cell awaits — request accounting is corrupt"
                )
            cell = queue.popleft()
            if not queue:
                del self.local_by_dst[dst]
            self.local_cells -= 1
            intermediate = _intermediate
            self.vq.setdefault(intermediate, deque()).append(cell)
            self.vq_cells += 1
            self.requested[dst] -= 1
            resolved[dst] -= 1
            if self._tracer.enabled:
                self._tracer.emit("cell.enqueue", node=self.node,
                                  queue="vq", flow=cell.flow_id, dst=dst,
                                  intermediate=intermediate)
        self.grant_inbox.clear()
        # Whatever remains of the oldest batch was denied: release it.
        for dst, count in resolved.items():
            if dst in self.excluded:
                continue  # purged with the failed destination
            if count > 0:
                remaining = self.requested.get(dst, 0) - count
                if remaining < 0:
                    raise RuntimeError(
                        f"node {self.node}: request accounting underflow "
                        f"for destination {dst}"
                    )
                if remaining:
                    self.requested[dst] = remaining
                else:
                    self.requested.pop(dst, None)
        # Drop zeroed entries created by grant consumption.
        for dst in [d for d, c in self.requested.items() if c == 0]:
            del self.requested[dst]

    # ------------------------------------------------------------------
    # Phase: generate this epoch's requests
    # ------------------------------------------------------------------
    def generate_requests(self) -> List[Tuple[int, int]]:
        """Produce ``(intermediate, dst)`` requests for unrequested cells.

        At most one request per intermediate per epoch; destinations
        with backlog are served round-robin.  Returns the request list;
        the network routes each to its intermediate's inbox.
        """
        if self.config.ideal:
            return []
        backlog = [
            (dst, len(queue) - self.requested.get(dst, 0))
            for dst, queue in self.local_by_dst.items()
            if len(queue) > self.requested.get(dst, 0)
            and dst not in self.excluded
        ]
        if not backlog:
            self._sent_request_history.append(Counter())
            return []
        pending = dict(backlog)
        total = min(sum(pending.values()), len(self._others))

        # Destination sequence: round-robin across backlogged
        # destinations so no destination starves.
        if self.config.selection == "drrm":
            order = sorted(pending)
        else:
            order = list(pending)
            self.rng.shuffle(order)
        dst_sequence: List[int] = []
        idx = 0
        while len(dst_sequence) < total:
            dst = order[idx % len(order)]
            if pending[dst] > 0:
                dst_sequence.append(dst)
                pending[dst] -= 1
                idx += 1
            else:
                order.remove(dst)

        # Intermediate pairing: DRRM rotates a deterministic offset so
        # different sources map the same intermediate to different
        # destinations (desynchronization); random mode samples.
        candidates = (
            [o for o in self._others if o not in self.excluded]
            if self.excluded else self._others
        )
        total = min(total, len(candidates))
        if self.config.selection == "drrm":
            m = len(candidates)
            offset = self._request_offset
            self._request_offset += 1
            intermediates = [
                candidates[(i + offset) % m] for i in range(total)
            ]
        else:
            intermediates = self.rng.sample(candidates, total)

        requests: List[Tuple[int, int]] = []
        batch: Counter = Counter()
        forbid_direct = self.config.exclude_destination_intermediate
        for intermediate, dst in zip(intermediates, dst_sequence):
            if forbid_direct and intermediate == dst:
                # Ablation: single-hop routing forbidden — skip this
                # pairing; the cell stays eligible for the next epoch.
                continue
            requests.append((intermediate, dst))
            batch[dst] += 1
            self.requested[dst] = self.requested.get(dst, 0) + 1
        self._sent_request_history.append(batch)
        return requests

    # ------------------------------------------------------------------
    # Phase: decide grants for requests received last epoch
    # ------------------------------------------------------------------
    def decide_grants(self, grants_per_destination: int,
                      direct_window: int = 3) -> List[Tuple[int, int]]:
        """Pick per-destination winners among inbox requests (§4.3).

        Returns ``(source, dst)`` grants.  Requests whose destination is
        this node bypass the forward-queue test (delivery consumes no
        queue space) but are bounded at ``direct_window`` in-flight
        grants per source — the source's slot to this node drains one
        cell per epoch and is shared with forwarded traffic, so
        unbounded direct grants would only pile up in its virtual
        queue.  Other requests pass the ``queued + outstanding < Q``
        test, up to ``grants_per_destination`` per epoch.
        """
        if not self.request_inbox:
            return []
        if direct_window < 1:
            raise ValueError(f"direct window must be >= 1, got {direct_window}")
        by_dst: Dict[int, List[int]] = {}
        for src, dst in self.request_inbox:
            if src in self.excluded or dst in self.excluded:
                continue  # stale requests referencing a failed node
            by_dst.setdefault(dst, []).append(src)
        self.request_inbox.clear()
        grants: List[Tuple[int, int]] = []
        threshold = self.config.queue_threshold
        observing = self._tracer.enabled or self._registry.enabled
        for dst, sources in by_dst.items():
            if dst == self.node:
                for src in sources:
                    in_flight = self._direct_outstanding.get(src, 0)
                    if in_flight < direct_window:
                        self._direct_outstanding[src] = in_flight + 1
                        grants.append((src, dst))
                        if observing:
                            record_grant_decision(
                                self._registry, self._tracer, self.node,
                                src, dst, granted=True, direct=True,
                            )
                    elif observing:
                        record_grant_decision(
                            self._registry, self._tracer, self.node,
                            src, dst, granted=False,
                            reason="direct-window-full",
                        )
                continue
            if self.config.selection == "drrm":
                # Round-robin over sources from the per-destination
                # pointer (iSLIP/DRRM-style desynchronization).
                pointer = self._grant_pointers.get(dst, 0)
                sources.sort(key=lambda s: (s - pointer) % self.n_nodes)
            else:
                self.rng.shuffle(sources)
            granted_here = 0
            for index, src in enumerate(sources):
                if granted_here >= grants_per_destination:
                    if observing:
                        for denied in sources[index:]:
                            record_grant_decision(
                                self._registry, self._tracer, self.node,
                                denied, dst, granted=False,
                                reason="grant-cap",
                            )
                    break
                queued = len(self.fwd.get(dst, ()))
                outstanding = self.outstanding.get(dst, 0)
                if may_grant(queued, outstanding, threshold):
                    self.outstanding[dst] = outstanding + 1
                    pair = (src, dst)
                    self._outstanding_by_src[pair] = (
                        self._outstanding_by_src.get(pair, 0) + 1
                    )
                    grants.append((src, dst))
                    granted_here += 1
                    if self.config.selection == "drrm":
                        self._grant_pointers[dst] = (src + 1) % self.n_nodes
                    if observing:
                        record_grant_decision(
                            self._registry, self._tracer, self.node,
                            src, dst, granted=True,
                        )
                else:
                    if observing:
                        for denied in sources[index:]:
                            record_grant_decision(
                                self._registry, self._tracer, self.node,
                                denied, dst, granted=False,
                                reason="queue-threshold",
                            )
                    break
        return grants

    # ------------------------------------------------------------------
    # Phase: transmit
    # ------------------------------------------------------------------
    def dequeue_for(self, dst: int, capacity: int) -> List[Cell]:
        """Cells to transmit on this epoch's slot(s) to ``dst``.

        Protocol mode: second-hop (forward-queue) cells take strict
        priority over first-hop (virtual-queue) cells, which is what
        keeps the in-network queue bound — the grant pacing guarantees
        forward queues stay at most Q, so starvation is bounded.

        Ideal mode: the slot alternates fairly between the two queues
        (per-flow back-pressure idealization — without pacing, strict
        priority would let one source's unpaced burst starve first-hop
        traffic on shared slots for arbitrarily long).
        """
        if capacity <= 0:
            return []
        out: List[Cell] = []
        fwd_queue = self.fwd.get(dst)
        vq_queue = self.vq.get(dst)
        fwd_taken = 0
        vq_taken = 0
        if self.config.ideal and fwd_queue and vq_queue:
            parity = self._slot_parity.get(dst, 0)
            while len(out) < capacity and (fwd_queue or vq_queue):
                take_fwd = bool(fwd_queue) and (parity == 0 or not vq_queue)
                if take_fwd:
                    out.append(fwd_queue.popleft())
                    fwd_taken += 1
                else:
                    out.append(vq_queue.popleft())
                    vq_taken += 1
                parity ^= 1
            self._slot_parity[dst] = parity
        else:
            while fwd_queue and len(out) < capacity:
                out.append(fwd_queue.popleft())
                fwd_taken += 1
            if vq_queue:
                while vq_queue and len(out) < capacity:
                    out.append(vq_queue.popleft())
                    vq_taken += 1
        if fwd_queue is not None and not fwd_queue:
            del self.fwd[dst]
        if vq_queue is not None and not vq_queue:
            del self.vq[dst]
        self.fwd_cells -= fwd_taken
        self.vq_cells -= vq_taken
        return out

    def busy_destinations(self) -> List[int]:
        """Destinations with anything to send this epoch."""
        if not self.fwd and not self.vq:
            return []
        return list(self.fwd.keys() | self.vq.keys())

    # ------------------------------------------------------------------
    # Phase: receive
    # ------------------------------------------------------------------
    def note_direct_arrival(self, src: int) -> None:
        """A granted single-hop cell from ``src`` arrived: release one
        slot of its direct-grant window."""
        in_flight = self._direct_outstanding.get(src, 0)
        if in_flight <= 1:
            self._direct_outstanding.pop(src, None)
        else:
            self._direct_outstanding[src] = in_flight - 1

    def receive_transit(self, cell: Cell) -> None:
        """Accept a first-hop cell for which this node is the intermediate."""
        queue = self.fwd.get(cell.dst)
        if queue is None:
            queue = self._queue_factory()
            self.fwd[cell.dst] = queue
        queue.append(cell)
        self.fwd_cells += 1
        if self.fwd_cells > self.peak_fwd_cells:
            self.peak_fwd_cells = self.fwd_cells
        if self._tracer.enabled:
            self._tracer.emit("cell.enqueue", node=self.node, queue="fwd",
                              flow=cell.flow_id, dst=cell.dst)
        if not self.config.ideal:
            outstanding = self.outstanding.get(cell.dst, 0)
            if outstanding <= 0:
                raise RuntimeError(
                    f"node {self.node}: transit cell for {cell.dst} arrived "
                    "without an outstanding grant"
                )
            if outstanding == 1:
                del self.outstanding[cell.dst]
            else:
                self.outstanding[cell.dst] = outstanding - 1
            pair = (cell.src, cell.dst)
            by_src = self._outstanding_by_src.get(pair, 0)
            if by_src == 1:
                del self._outstanding_by_src[pair]
            elif by_src > 1:
                self._outstanding_by_src[pair] = by_src - 1

    # ------------------------------------------------------------------
    # Failure handling (§4.5)
    # ------------------------------------------------------------------
    def release_grants_for(self, failed_src: int) -> int:
        """Release outstanding-grant reservations held for a dead source.

        Without this, reservations for cells a failed node will never
        send would pin forward-queue headroom forever.  Returns the
        number of reservations released.
        """
        released = 0
        for (src, dst) in list(self._outstanding_by_src):
            if src != failed_src:
                continue
            count = self._outstanding_by_src.pop((src, dst))
            released += count
            remaining = self.outstanding.get(dst, 0) - count
            if remaining > 0:
                self.outstanding[dst] = remaining
            else:
                self.outstanding.pop(dst, None)
        self._direct_outstanding.pop(failed_src, None)
        return released

    def purge_destination(self, dead: int) -> int:
        """Drop every cell addressed to a failed node (§4.5: failure
        announcements prevent blackholing).  Returns cells dropped."""
        dropped = 0
        queue = self.local_by_dst.pop(dead, None)
        if queue:
            dropped += len(queue)
            self.local_cells -= len(queue)
        self.requested.pop(dead, None)
        fwd = self.fwd.pop(dead, None)
        if fwd:
            dropped += len(fwd)
            self.fwd_cells -= len(fwd)
        self.outstanding.pop(dead, None)
        for pair in [p for p in self._outstanding_by_src if p[1] == dead]:
            del self._outstanding_by_src[pair]
        for intermediate in list(self.vq):
            queue = self.vq[intermediate]
            if isinstance(queue, FairQueue):
                removed = queue.purge(lambda c: c.dst == dead)
            else:
                removed = [c for c in queue if c.dst == dead]
                if removed:
                    kept = deque(c for c in queue if c.dst != dead)
                    if kept:
                        self.vq[intermediate] = kept
                    else:
                        del self.vq[intermediate]
            if removed:
                dropped += len(removed)
                self.vq_cells -= len(removed)
        if dropped:
            if self._tracer.enabled:
                self._tracer.emit("cell.drop", node=self.node,
                                  count=dropped, dst=dead,
                                  reason="destination-failed")
            if self._registry.enabled:
                self._registry.counter(
                    "cells_dropped_total",
                    "cells purged or lost to failures",
                ).inc(dropped, reason="destination-failed")
        return dropped

    def drain_for_failure(self) -> Tuple[List[Cell], List[Cell]]:
        """Empty this (failed) node's queues.

        Returns ``(transit_cells, own_cells)``: cells this node held as
        an intermediate (recoverable — their sources retransmit) and
        cells of its own flows (lost with the node).  All protocol
        state is reset so a later recovery starts clean.
        """
        transit: List[Cell] = []
        own: List[Cell] = []
        for queue in self.fwd.values():
            while queue:
                transit.append(queue.popleft())
        for queue in self.vq.values():
            while queue:
                own.append(queue.popleft())
        for queue in self.local_by_dst.values():
            own.extend(queue)
        self.fwd.clear()
        self.vq.clear()
        self.local_by_dst.clear()
        self.fwd_cells = self.vq_cells = self.local_cells = 0
        self.requested.clear()
        self.outstanding.clear()
        self._outstanding_by_src.clear()
        self._direct_outstanding.clear()
        self.request_inbox.clear()
        self.grant_inbox.clear()
        self._sent_request_history.clear()
        self._sent_request_history.extend(
            Counter() for _ in range(REQUEST_ROUND_TRIP_EPOCHS)
        )
        return transit, own

    # ------------------------------------------------------------------
    # Invariants (used by tests and debug runs)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert internal accounting consistency and the queue bound."""
        assert self.local_cells == sum(
            len(q) for q in self.local_by_dst.values()
        ), f"node {self.node}: LOCAL count drift"
        assert self.fwd_cells == sum(len(q) for q in self.fwd.values()), (
            f"node {self.node}: forward count drift"
        )
        assert self.vq_cells == sum(len(q) for q in self.vq.values()), (
            f"node {self.node}: virtual-queue count drift"
        )
        for dst, count in self.requested.items():
            assert 0 < count <= len(self.local_by_dst.get(dst, ())), (
                f"node {self.node}: requested[{dst}]={count} exceeds backlog"
            )
        if not self.config.ideal:
            limit = self.config.queue_threshold
            for dst, queue in self.fwd.items():
                total = len(queue) + self.outstanding.get(dst, 0)
                assert total <= limit, (
                    f"node {self.node}: fwd[{dst}] {len(queue)} + outstanding "
                    f"{self.outstanding.get(dst, 0)} exceeds Q={limit}"
                )
