"""Sirius' network stack: scheduling, routing, congestion control and the
epoch-synchronous cell-level simulator (paper §4, §7).

Module map:

* :mod:`repro.core.cell` — fixed-size cells and flows.
* :mod:`repro.core.schedule` — the static cyclic schedule (Fig 5b) and
  slot/epoch timing derived from cell size and guardband.
* :mod:`repro.core.routing` — Valiant load-balanced routing decisions.
* :mod:`repro.core.congestion` — the request/grant protocol (§4.3).
* :mod:`repro.core.reorder` — destination-side reorder buffers.
* :mod:`repro.core.node` — per-node state (LOCAL buffer, virtual
  queues, forward queues, protocol bookkeeping).
* :mod:`repro.core.network` — the epoch-synchronous simulator that ties
  it all together and produces the §7 metrics.
* :mod:`repro.core.backend` / :mod:`repro.core.vectorized` — the
  selectable epoch-loop strategies (``reference``/``fast``/
  ``vectorized``) and the numpy-slab engine behind the third.
"""

from repro.core.backend import BACKEND_ENV, BACKENDS, resolve_backend
from repro.core.cell import Cell, Flow
from repro.core.failures import (
    AdjustedSchedule,
    FailureDetector,
    FailureEvent,
    FailurePlan,
)
from repro.core.schedule import CyclicSchedule, SlotTiming
from repro.core.routing import ValiantRouter
from repro.core.congestion import CongestionConfig
from repro.core.reorder import ReorderBuffer
from repro.core.node import SiriusNode
from repro.core.network import SiriusNetwork, SimulationResult
from repro.core.parallel import ParallelSiriusPlanes
from repro.core.rack import CreditLink, RackConfig, RackDeployment, RackSwitch
from repro.core.telemetry import Telemetry

__all__ = [
    "AdjustedSchedule",
    "BACKENDS",
    "BACKEND_ENV",
    "resolve_backend",
    "Cell",
    "FailureDetector",
    "FailureEvent",
    "FailurePlan",
    "Flow",
    "CyclicSchedule",
    "SlotTiming",
    "ValiantRouter",
    "CongestionConfig",
    "ReorderBuffer",
    "SiriusNode",
    "SiriusNetwork",
    "ParallelSiriusPlanes",
    "CreditLink",
    "RackConfig",
    "RackDeployment",
    "RackSwitch",
    "Telemetry",
    "SimulationResult",
]
