"""Rack-based deployment: servers, ToRs and credit flow control (§4.1–4.3).

In a rack-based Sirius deployment, servers connect to electrical rack
switches whose uplinks carry the tunable transceivers.  Three pieces of
behaviour live below the optical network:

* **intra-rack traffic** is forwarded directly through the rack switch
  and never touches the optical core (§4.2);
* **inter-rack traffic** is stored in the rack switch's LOCAL buffer
  and paced by the request/grant protocol (§4.3);
* because LOCAL is finite, a **one-hop credit-based link-layer
  protocol** (InfiniBand-style, [47]) rate-limits each server into its
  rack switch — the only flow control needed once the grant protocol
  has removed congestion from the core.

:class:`CreditLink` implements the credit protocol;
:class:`RackSwitch` composes per-server links with the LOCAL buffer
occupancy; :class:`RackDeployment` runs *server-level* workloads by
splitting them into an intra-rack fluid part and an inter-rack Sirius
part.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.cell import Flow
from repro.core.network import SimulationResult, SiriusNetwork
from repro.sim.fluid import FluidNetwork, FluidResult
from repro.units import GBPS, US


class CreditLink:
    """Credit-based link-layer flow control over one server↔ToR hop.

    The receiver advertises ``credits`` buffer slots; the sender
    consumes one per cell and stalls at zero; the receiver returns a
    credit whenever it drains a cell.  Lossless by construction — the
    sender can never overrun the buffer.
    """

    def __init__(self, credits: int) -> None:
        if credits < 1:
            raise ValueError(f"need at least 1 credit, got {credits}")
        self.initial_credits = credits
        self.available = credits
        self.in_buffer = 0
        self.sent_total = 0
        self.stalled_attempts = 0

    def try_send(self) -> bool:
        """Consume a credit for one cell; False when the sender must stall."""
        if self.available == 0:
            self.stalled_attempts += 1
            return False
        self.available -= 1
        self.in_buffer += 1
        self.sent_total += 1
        return True

    def drain(self, n_cells: int = 1) -> int:
        """Receiver drains cells, returning credits.  Returns cells drained."""
        if n_cells < 0:
            raise ValueError("cannot drain a negative cell count")
        drained = min(n_cells, self.in_buffer)
        self.in_buffer -= drained
        self.available += drained
        return drained

    @property
    def is_lossless(self) -> bool:
        """Invariant: buffer occupancy never exceeds advertised credits."""
        return 0 <= self.in_buffer <= self.initial_credits

    def utilization(self) -> float:
        """Fraction of the advertised buffer currently occupied."""
        return self.in_buffer / self.initial_credits


@dataclass
class RackConfig:
    """Shape of one rack (§7's setup: 24 servers, 8×50G uplinks)."""

    servers_per_rack: int = 24
    server_link_bps: float = 25 * GBPS
    credits_per_server: int = 16

    def __post_init__(self) -> None:
        if self.servers_per_rack < 1:
            raise ValueError("need at least one server per rack")
        if self.server_link_bps <= 0:
            raise ValueError("server link rate must be positive")
        if self.credits_per_server < 1:
            raise ValueError("need at least one credit per server")


class RackSwitch:
    """A ToR: per-server credit links feeding a bounded LOCAL buffer.

    The slot-level dynamics (one epoch at a time): servers offer cells;
    each cell is admitted iff its server has credits *and* LOCAL has
    room; the optical side drains LOCAL at the grant rate.  Credits are
    returned as LOCAL admits cells onward.
    """

    def __init__(self, rack_id: int, config: RackConfig, *,
                 local_capacity_cells: int = 4096) -> None:
        if local_capacity_cells < config.servers_per_rack:
            raise ValueError("LOCAL must hold at least one cell per server")
        self.rack_id = rack_id
        self.config = config
        self.local_capacity = local_capacity_cells
        self.local_occupancy = 0
        self.links: List[CreditLink] = [
            CreditLink(config.credits_per_server)
            for _ in range(config.servers_per_rack)
        ]
        self.peak_local = 0
        self.admitted_total = 0

    def offer(self, server: int, n_cells: int) -> int:
        """Server ``server`` offers ``n_cells``; returns cells admitted.

        Admission needs both a link credit and LOCAL headroom; the
        credit is returned immediately once the cell sits in LOCAL
        (the ToR buffer *is* the credit-advertised buffer — the two
        stages are collapsed per §4.3's "simple one-hop flow control").
        """
        if not 0 <= server < len(self.links):
            raise ValueError(f"server {server} out of range")
        if n_cells < 0:
            raise ValueError("cannot offer a negative cell count")
        admitted = 0
        link = self.links[server]
        for _ in range(n_cells):
            if self.local_occupancy >= self.local_capacity:
                break
            if not link.try_send():
                break
            self.local_occupancy += 1
            admitted += 1
        self.admitted_total += admitted
        if self.local_occupancy > self.peak_local:
            self.peak_local = self.local_occupancy
        return admitted

    def uplink_drain(self, n_cells: int) -> int:
        """The optical side (grants) drains LOCAL; returns credits to the
        servers round-robin."""
        if n_cells < 0:
            raise ValueError("cannot drain a negative cell count")
        drained = min(n_cells, self.local_occupancy)
        self.local_occupancy -= drained
        remaining = drained
        while remaining > 0:
            progress = 0
            for link in self.links:
                if remaining == 0:
                    break
                if link.drain(1):
                    progress += 1
                    remaining -= 1
            if progress == 0:
                break
        return drained

    @property
    def backpressure_active(self) -> bool:
        """Whether any server is currently credit-stalled."""
        return any(link.available == 0 for link in self.links)


@dataclass
class DeploymentResult:
    """Merged outcome of a server-level rack deployment run."""

    inter_rack: SimulationResult
    intra_rack: Optional[FluidResult]
    n_servers: int
    n_racks: int

    @property
    def all_flows(self) -> List[Flow]:
        flows = list(self.inter_rack.flows)
        if self.intra_rack is not None:
            flows.extend(self.intra_rack.flows)
        return flows

    @property
    def completed_flows(self) -> List[Flow]:
        return [f for f in self.all_flows if f.is_complete]

    @property
    def intra_rack_fraction(self) -> float:
        total = len(self.all_flows)
        if total == 0:
            return 0.0
        intra = len(self.intra_rack.flows) if self.intra_rack else 0
        return intra / total


class RackDeployment:
    """Server-granularity workloads over a rack-based Sirius network.

    Server-level flows are split by locality: intra-rack flows are
    served by the rack's electrical switch (modelled as a non-blocking
    fluid network over the server links, as in any ToR); inter-rack
    flows are mapped onto rack-level flows and carried by the optical
    core's full protocol stack.  Per-flow FCTs remain attributed to the
    original server flows.
    """

    def __init__(self, n_racks: int, grating_ports: int, *,
                 rack_config: Optional[RackConfig] = None,
                 uplink_multiplier: float = 1.5,
                 seed: int = 1, **network_kwargs) -> None:
        self.rack_config = rack_config or RackConfig()
        self.network = SiriusNetwork(
            n_racks, grating_ports,
            uplink_multiplier=uplink_multiplier, seed=seed,
            **network_kwargs,
        )
        self.n_racks = n_racks
        self.n_servers = n_racks * self.rack_config.servers_per_rack

    # -- addressing -----------------------------------------------------------
    def rack_of(self, server: int) -> int:
        """Rack hosting ``server`` (servers are numbered rack-major)."""
        if not 0 <= server < self.n_servers:
            raise ValueError(f"server {server} out of range")
        return server // self.rack_config.servers_per_rack

    # -- execution -----------------------------------------------------------
    def run(self, server_flows: Sequence[Flow], **run_kwargs
            ) -> DeploymentResult:
        """Run a server-level flow list (sorted by arrival)."""
        intra: List[Flow] = []
        inter: List[Flow] = []
        for flow in server_flows:
            src_rack = self.rack_of(flow.src)
            dst_rack = self.rack_of(flow.dst)
            if src_rack == dst_rack:
                intra.append(flow)
            else:
                inter.append(Flow(
                    flow_id=flow.flow_id,
                    src=src_rack,
                    dst=dst_rack,
                    size_bits=flow.size_bits,
                    arrival_time=flow.arrival_time,
                ))
        inter.sort(key=lambda f: f.arrival_time)
        inter_result = self.network.run(inter, **run_kwargs)

        intra_result = None
        if intra:
            # Intra-rack: a non-blocking electrical ToR constrains flows
            # only at the server NICs.  Server ids are globally unique,
            # so one fluid network over all servers is equivalent to
            # per-rack fluid networks (no flow crosses racks here).
            fluid = FluidNetwork(
                self.n_servers, self.rack_config.server_link_bps,
                base_rtt_s=2 * US,
            )
            intra.sort(key=lambda f: f.arrival_time)
            intra_result = fluid.run(intra)

        return DeploymentResult(
            inter_rack=inter_result,
            intra_rack=intra_result,
            n_servers=self.n_servers,
            n_racks=self.n_racks,
        )

    def expected_intra_fraction(self) -> float:
        """Probability a uniform server pair lands in the same rack."""
        s = self.rack_config.servers_per_rack
        return (s - 1) / (self.n_servers - 1)


def simulate_credit_hop(offered_cells_per_slot: float, drain_cells_per_slot: float,
                        credits: int, n_slots: int = 10_000,
                        seed: int = 13) -> Dict[str, float]:
    """Slot-level simulation of one credit-controlled server↔ToR hop.

    Poisson cell offers against a deterministic drain; reports the
    loss-free delivery, stall fraction and peak buffer — demonstrating
    the §4.3 claim that a simple one-hop credit protocol suffices once
    the core is congestion-free.
    """
    if offered_cells_per_slot <= 0 or drain_cells_per_slot <= 0:
        raise ValueError("rates must be positive")
    rng = random.Random(seed)
    link = CreditLink(credits)
    drain_acc = 0.0
    offered = delivered = stalled = 0
    peak = 0
    for _slot in range(n_slots):
        arrivals = _poisson(rng, offered_cells_per_slot)
        for _ in range(arrivals):
            offered += 1
            if not link.try_send():
                stalled += 1
        drain_acc += drain_cells_per_slot
        whole = int(drain_acc)
        if whole:
            delivered += link.drain(whole)
            drain_acc -= whole
        peak = max(peak, link.in_buffer)
        assert link.is_lossless
    return {
        "offered": offered,
        "delivered": delivered,
        "stall_fraction": stalled / offered if offered else 0.0,
        "peak_buffer_cells": peak,
        "in_buffer": link.in_buffer,
    }


def _poisson(rng, mean: float) -> int:
    """Knuth's Poisson sampler (small means)."""
    threshold = math.exp(-mean)
    k, product = 0, 1.0
    while True:
        product *= rng.random()
        if product <= threshold:
            return k
        k += 1
