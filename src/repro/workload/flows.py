"""Heavy-tailed flow workload generator (paper §7, "Workload characteristics").

Flow sizes are Pareto-distributed with shape 1.05 and mean 100 KB
(configurable), creating the canonical datacenter mix: most flows are
small, most bytes sit in large flows.  Flows arrive by a Poisson process
with uniformly random source/destination pairs.

The paper's load definition:  ``L = F / (R · N · τ)``  with mean flow
size ``F``, per-node bandwidth ``R``, node count ``N`` and mean
inter-arrival ``τ`` — i.e. at ``L = 1`` the offered bit rate equals the
aggregate node bandwidth.

Sanity anchor from the paper (Fig 13 discussion): a Pareto(1.05) with
mean 512 B has a median of ~46 B, which this generator reproduces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.cell import Flow
from repro.units import BYTE, KILOBYTE

#: The paper's Pareto shape parameter.
DEFAULT_PARETO_SHAPE = 1.05
#: The paper's default mean flow size (100 KB).
DEFAULT_MEAN_FLOW_BITS = 100 * KILOBYTE


def pareto_scale_for_mean(mean: float, shape: float,
                          truncation: Optional[float] = None) -> float:
    """Scale ``x_m`` so a (possibly truncated) Pareto has mean ``mean``.

    Untruncated: ``x_m = mean · (shape − 1) / shape`` (requires
    shape > 1).  With an upper truncation ``T`` the mean is solved by
    bisection on the closed-form truncated-Pareto expectation.
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    if shape <= 1:
        raise ValueError(
            f"shape must exceed 1 for a finite untruncated mean, got {shape}"
        )
    if truncation is None:
        return mean * (shape - 1.0) / shape
    if truncation <= mean:
        raise ValueError(
            f"truncation {truncation} must exceed the target mean {mean}"
        )

    def truncated_mean(xm: float) -> float:
        z = 1.0 - (xm / truncation) ** shape
        numerator = shape * xm ** shape * (
            truncation ** (1.0 - shape) - xm ** (1.0 - shape)
        ) / (1.0 - shape)
        return numerator / z

    lo = mean * (shape - 1.0) / shape  # untruncated answer: lower bound
    hi = mean  # xm can never exceed the mean
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if truncated_mean(mid) < mean:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def load_to_rate(load: float, n_nodes: int, node_bandwidth_bps: float,
                 mean_flow_bits: float) -> float:
    """Poisson flow arrival rate (flows/second) for a target load.

    Inverts the paper's load definition ``L = F / (R · N · τ)``.
    """
    if load <= 0:
        raise ValueError(f"load must be positive, got {load}")
    if n_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {n_nodes}")
    if node_bandwidth_bps <= 0 or mean_flow_bits <= 0:
        raise ValueError("bandwidth and mean flow size must be positive")
    return load * n_nodes * node_bandwidth_bps / mean_flow_bits


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a synthetic flow workload.

    ``truncation_bits`` caps the Pareto tail (None reproduces the paper
    exactly; a cap keeps reduced-scale simulations bounded — the scale
    parameter is re-solved so the mean stays on target).
    """

    n_nodes: int
    load: float
    node_bandwidth_bps: float
    mean_flow_bits: float = DEFAULT_MEAN_FLOW_BITS
    pareto_shape: float = DEFAULT_PARETO_SHAPE
    truncation_bits: Optional[float] = None
    min_flow_bits: float = 1 * BYTE
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {self.n_nodes}")
        if self.load <= 0:
            raise ValueError(f"load must be positive, got {self.load}")
        if self.node_bandwidth_bps <= 0:
            raise ValueError(
                f"bandwidth must be positive, got {self.node_bandwidth_bps}"
            )
        if self.mean_flow_bits <= 0:
            raise ValueError(
                f"mean flow size must be positive, got {self.mean_flow_bits}"
            )
        if self.pareto_shape <= 1:
            raise ValueError(
                "shape must exceed 1 for a finite untruncated mean, got "
                f"{self.pareto_shape}"
            )
        if (self.truncation_bits is not None
                and self.truncation_bits <= self.mean_flow_bits):
            raise ValueError(
                f"truncation {self.truncation_bits} must exceed the mean "
                f"flow size {self.mean_flow_bits}"
            )
        if self.min_flow_bits <= 0:
            raise ValueError(
                f"minimum flow size must be positive, got {self.min_flow_bits}"
            )


class FlowWorkload:
    """Generates the paper's Poisson/Pareto/uniform flow mix."""

    def __init__(self, config: WorkloadConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.scale_bits = pareto_scale_for_mean(
            config.mean_flow_bits, config.pareto_shape, config.truncation_bits
        )
        self.arrival_rate = load_to_rate(
            config.load, config.n_nodes, config.node_bandwidth_bps,
            config.mean_flow_bits,
        )

    # -- samplers ------------------------------------------------------------
    def sample_size_bits(self) -> int:
        """One Pareto flow size, in whole bits (at least one byte).

        With a truncation bound the sample is drawn from the
        *conditional* distribution (X | X <= T) via inverse-CDF on the
        survival function, matching the calibration in
        :func:`pareto_scale_for_mean` exactly.
        """
        shape = self.config.pareto_shape
        u_floor = 0.0
        if self.config.truncation_bits is not None:
            u_floor = (self.scale_bits / self.config.truncation_bits) ** shape
        u = u_floor + self.rng.random() * (1.0 - u_floor)
        u = max(u, 1e-12)  # guard the u=0 corner of the open interval
        size = self.scale_bits / (u ** (1.0 / shape))
        return max(int(self.config.min_flow_bits), int(size))

    def sample_interarrival(self) -> float:
        """One exponential inter-arrival gap (seconds)."""
        return self.rng.expovariate(self.arrival_rate)

    def sample_endpoints(self) -> tuple:
        """A uniformly random (src, dst) node pair, src ≠ dst."""
        n = self.config.n_nodes
        src = self.rng.randrange(n)
        dst = self.rng.randrange(n - 1)
        if dst >= src:
            dst += 1
        return src, dst

    # -- generation ------------------------------------------------------------
    def generate(self, n_flows: int, start_time: float = 0.0) -> List[Flow]:
        """``n_flows`` flows sorted by arrival time."""
        if n_flows <= 0:
            raise ValueError(f"n_flows must be positive, got {n_flows}")
        flows: List[Flow] = []
        time = start_time
        for flow_id in range(n_flows):
            time += self.sample_interarrival()
            src, dst = self.sample_endpoints()
            flows.append(Flow(
                flow_id=flow_id,
                src=src,
                dst=dst,
                size_bits=self.sample_size_bits(),
                arrival_time=time,
            ))
        return flows

    def expected_duration(self, n_flows: int) -> float:
        """Expected arrival-window length for ``n_flows`` flows."""
        if n_flows <= 0:
            raise ValueError(f"n_flows must be positive, got {n_flows}")
        return n_flows / self.arrival_rate

    def empirical_mean_bits(self, n_samples: int = 100_000) -> float:
        """Monte-Carlo check of the size calibration (used by tests)."""
        rng_state = self.rng.getstate()
        mean = sum(self.sample_size_bits() for _ in range(n_samples)) / n_samples
        self.rng.setstate(rng_state)
        return mean
