"""Production packet-size trace model (paper §2.2).

The paper motivates nanosecond switching with packet statistics from a
production cloud service (two days, March 2019):

* over 34 % of packets are smaller than 128 B,
* 97.8 % of packets are 576 B or less,

and cites Facebook's in-memory cache where over 91 % of packets are
576 B or less.  Since the raw traces are proprietary, this module builds
the closest synthetic equivalent: a mixture of size bands whose
marginals are constrained to exactly those published percentages, with
log-uniform spread inside each band.  The §2.2 switching-overhead
arithmetic (a 576 B packet at 50 Gb/s lasts 92 ns, so sub-10 ns
reconfiguration keeps overhead below 10 %) is exposed as helpers.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.units import GBPS

#: The paper's published marginals: (upper bound in bytes, cumulative fraction).
PRODUCTION_MARGINALS: Tuple[Tuple[int, float], ...] = (
    (128, 0.34),
    (576, 0.978),
    (1500, 1.0),
)
#: Facebook in-memory cache marginal (91% of packets <= 576 B) [80].
CACHE_MARGINALS: Tuple[Tuple[int, float], ...] = (
    (128, 0.55),
    (576, 0.91),
    (1500, 1.0),
)
_MIN_PACKET_BYTES = 64


@dataclass
class PacketTraceModel:
    """Synthetic packet-size sampler constrained to published marginals.

    Parameters
    ----------
    marginals:
        ``(upper_bytes, cumulative_fraction)`` pairs, increasing in both
        coordinates, last fraction 1.0.
    seed:
        RNG seed.
    """

    marginals: Sequence[Tuple[int, float]] = PRODUCTION_MARGINALS
    seed: int = 11
    rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        previous_bound, previous_frac = 0, 0.0
        for bound, frac in self.marginals:
            if bound <= previous_bound or frac <= previous_frac:
                raise ValueError("marginals must be strictly increasing")
            previous_bound, previous_frac = bound, frac
        if abs(self.marginals[-1][1] - 1.0) > 1e-9:
            raise ValueError("last marginal fraction must be 1.0")
        if self.marginals[0][0] <= _MIN_PACKET_BYTES:
            raise ValueError(
                f"first band must exceed the {_MIN_PACKET_BYTES} B minimum"
            )
        self.rng = random.Random(self.seed)

    # -- sampling ------------------------------------------------------------
    def sample_bytes(self) -> int:
        """One packet size (bytes), log-uniform within its band."""
        u = self.rng.random()
        lower = _MIN_PACKET_BYTES
        cumulative = 0.0
        for bound, frac in self.marginals:
            if u < frac:
                span_u = (u - cumulative) / (frac - cumulative)
                log_low, log_high = math.log(lower), math.log(bound)
                return int(round(math.exp(
                    log_low + span_u * (log_high - log_low)
                )))
            lower, cumulative = bound, frac
        return self.marginals[-1][0]

    def sample_many(self, n: int) -> List[int]:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        return [self.sample_bytes() for _ in range(n)]

    # -- statistics ------------------------------------------------------------
    def fraction_below(self, threshold_bytes: int, n: int = 100_000) -> float:
        """Empirical fraction of packets strictly below ``threshold_bytes``."""
        sizes = self.sample_many(n)
        return sum(1 for s in sizes if s < threshold_bytes) / n

    def fraction_at_most(self, threshold_bytes: int, n: int = 100_000) -> float:
        """Empirical fraction of packets of at most ``threshold_bytes``."""
        sizes = self.sample_many(n)
        return sum(1 for s in sizes if s <= threshold_bytes) / n


def packet_duration_s(size_bytes: int, channel_rate_bps: float = 50 * GBPS
                      ) -> float:
    """Wire time of one packet on an optical channel.

    The paper's anchor: a 576 B packet on a 50 Gb/s channel lasts ~92 ns.

    >>> round(packet_duration_s(576) / 1e-9, 1)
    92.2
    """
    if size_bytes <= 0:
        raise ValueError(f"size must be positive, got {size_bytes}")
    if channel_rate_bps <= 0:
        raise ValueError("rate must be positive")
    return size_bytes * 8 / channel_rate_bps


def switching_overhead(reconfiguration_s: float, packet_bytes: int = 576,
                       channel_rate_bps: float = 50 * GBPS) -> float:
    """Switching overhead relative to the packet's wire time (§2.2).

    The paper's arithmetic: switching between destinations every 92 ns
    (one 576 B packet at 50 Gb/s) with overhead ``t_reconf / t_packet``
    below 10 % requires reconfiguration shorter than 9.2 ns.
    """
    if reconfiguration_s < 0:
        raise ValueError("reconfiguration time cannot be negative")
    packet_s = packet_duration_s(packet_bytes, channel_rate_bps)
    return reconfiguration_s / packet_s


def max_guardband_for_overhead(max_overhead: float = 0.1,
                               packet_bytes: int = 576,
                               channel_rate_bps: float = 50 * GBPS) -> float:
    """Largest reconfiguration window meeting an overhead budget.

    The paper's arithmetic: 10 % overhead on 92 ns packets allows a
    9.2 ns guardband — the origin of the < 10 ns target.

    >>> round(max_guardband_for_overhead() / 1e-9, 1)
    9.2
    """
    if not 0 < max_overhead < 1:
        raise ValueError(f"overhead must be in (0, 1), got {max_overhead}")
    packet_s = packet_duration_s(packet_bytes, channel_rate_bps)
    return packet_s * max_overhead
