"""Endpoint-selection patterns beyond uniform random (ablation workloads).

The paper's headline simulations use uniformly random endpoints (§7),
but two of its design arguments depend on skewed patterns:

* load-balanced routing guarantees worst-case throughput within 2× of
  non-blocking for *any* traffic pattern (§4.2, Chang et al.);
* the DRRM-style request/grant protocol "achieves 100 % throughput for
  hot-spot traffic" (§4.3).

This module provides those patterns as pluggable endpoint samplers for
:class:`repro.workload.flows.FlowWorkload`-style generation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.cell import Flow


@dataclass(frozen=True)
class TrafficPattern:
    """A named endpoint-pair sampler over ``n_nodes`` nodes.

    ``kind`` is one of:

    * ``"uniform"`` — uniformly random src ≠ dst (the paper's default).
    * ``"hotspot"`` — a fraction ``hotspot_fraction`` of flows target
      the single node ``hotspot_node``; the rest are uniform.
    * ``"permutation"`` — a fixed random permutation: node ``i`` always
      sends to ``perm[i]`` (the worst case for direct routing, served
      perfectly by VLB).
    * ``"incast"`` — every source sends to ``hotspot_node``.
    * ``"neighbour"`` — node ``i`` sends to ``(i+1) mod n`` (an
      adversarial pattern for any static direct topology).
    """

    kind: str
    n_nodes: int
    hotspot_node: int = 0
    hotspot_fraction: float = 0.5
    seed: int = 7

    _KINDS = ("uniform", "hotspot", "permutation", "incast", "neighbour")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown pattern {self.kind!r}; choose from {self._KINDS}"
            )
        if self.n_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {self.n_nodes}")
        if not 0 <= self.hotspot_node < self.n_nodes:
            raise ValueError("hotspot node out of range")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ValueError("hotspot fraction must be in [0, 1]")

    def sampler(self) -> "EndpointSampler":
        return EndpointSampler(self)


class EndpointSampler:
    """Stateful sampler for a :class:`TrafficPattern`."""

    def __init__(self, pattern: TrafficPattern) -> None:
        self.pattern = pattern
        self.rng = random.Random(pattern.seed)
        n = pattern.n_nodes
        if pattern.kind == "permutation":
            # A fixed-point-free permutation (derangement by rotation of
            # a random shuffle).
            order = list(range(n))
            self.rng.shuffle(order)
            self._perm = {order[i]: order[(i + 1) % n] for i in range(n)}
        else:
            self._perm = None

    def sample(self) -> Tuple[int, int]:
        """One (src, dst) pair, src ≠ dst."""
        p = self.pattern
        n = p.n_nodes
        kind = p.kind
        if kind == "permutation":
            src = self.rng.randrange(n)
            return src, self._perm[src]
        if kind == "incast":
            src = self._uniform_excluding(p.hotspot_node)
            return src, p.hotspot_node
        if kind == "neighbour":
            src = self.rng.randrange(n)
            return src, (src + 1) % n
        if kind == "hotspot" and self.rng.random() < p.hotspot_fraction:
            src = self._uniform_excluding(p.hotspot_node)
            return src, p.hotspot_node
        # uniform (also the non-hotspot share of "hotspot")
        src = self.rng.randrange(n)
        dst = self.rng.randrange(n - 1)
        if dst >= src:
            dst += 1
        return src, dst

    def _uniform_excluding(self, excluded: int) -> int:
        value = self.rng.randrange(self.pattern.n_nodes - 1)
        if value >= excluded:
            value += 1
        return value


def patterned_flows(pattern: TrafficPattern, sizes_bits: List[int],
                    arrival_rate: float, *,
                    seed: Optional[int] = None) -> List[Flow]:
    """Build a flow list from a pattern, explicit sizes and Poisson arrivals.

    Convenience for the ablation benchmarks: ``sizes_bits`` fixes the
    per-flow sizes (e.g. all equal for a pure-pattern stress test).
    """
    if arrival_rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {arrival_rate}")
    sampler = pattern.sampler()
    rng = random.Random(pattern.seed if seed is None else seed)
    flows: List[Flow] = []
    time = 0.0
    for flow_id, size in enumerate(sizes_bits):
        time += rng.expovariate(arrival_rate)
        src, dst = sampler.sample()
        flows.append(Flow(
            flow_id=flow_id, src=src, dst=dst,
            size_bits=size, arrival_time=time,
        ))
    return flows
