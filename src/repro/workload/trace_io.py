"""Flow-trace import/export (CSV).

Lets users replay their own datacenter traces through the simulators
and archive generated workloads for exact reruns.  The format is a
plain CSV with a header::

    flow_id,src,dst,size_bits,arrival_time

Arrival times are seconds; flows need not be pre-sorted (the reader
sorts).  Writing then reading a workload is lossless.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Sequence, Union

from repro.core.cell import Flow

_FIELDS = ("flow_id", "src", "dst", "size_bits", "arrival_time")


def write_flows(path: Union[str, Path], flows: Sequence[Flow]) -> int:
    """Write a flow list as CSV; returns the number of rows written."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_FIELDS)
        for flow in flows:
            writer.writerow([
                flow.flow_id, flow.src, flow.dst, flow.size_bits,
                repr(flow.arrival_time),
            ])
    return len(flows)


def read_flows(path: Union[str, Path]) -> List[Flow]:
    """Read a CSV flow trace, validating and sorting by arrival time."""
    path = Path(path)
    flows: List[Flow] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise ValueError(f"{path}: empty trace file")
        if tuple(h.strip() for h in header) != _FIELDS:
            raise ValueError(
                f"{path}: expected header {','.join(_FIELDS)}, got "
                f"{','.join(header)}"
            )
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(_FIELDS):
                raise ValueError(
                    f"{path}:{line_number}: expected {len(_FIELDS)} "
                    f"columns, got {len(row)}"
                )
            try:
                flows.append(Flow(
                    flow_id=int(row[0]),
                    src=int(row[1]),
                    dst=int(row[2]),
                    size_bits=int(row[3]),
                    arrival_time=float(row[4]),
                ))
            except ValueError as error:
                raise ValueError(
                    f"{path}:{line_number}: {error}"
                ) from error
    flows.sort(key=lambda f: f.arrival_time)
    ids = [f.flow_id for f in flows]
    if len(set(ids)) != len(ids):
        raise ValueError(f"{path}: duplicate flow ids in trace")
    return flows


def trace_summary(flows: Sequence[Flow]) -> dict:
    """Quick statistics of a trace (for sanity-checking imports)."""
    if not flows:
        return {"flows": 0}
    sizes = sorted(f.size_bits for f in flows)
    arrivals = [f.arrival_time for f in flows]
    nodes = {f.src for f in flows} | {f.dst for f in flows}
    return {
        "flows": len(flows),
        "nodes": len(nodes),
        "total_bits": sum(sizes),
        "mean_size_bits": sum(sizes) / len(sizes),
        "median_size_bits": sizes[len(sizes) // 2],
        "span_s": max(arrivals) - min(arrivals),
    }
