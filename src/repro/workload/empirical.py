"""Empirical datacenter flow-size distributions (paper §7, refs [1, 31]).

The paper's synthetic workload is "modeled after published datacenter
traces [1, 31]" — DCTCP's web-search cluster and VL2's data-mining
cluster.  Alongside the Pareto model of :mod:`repro.workload.flows`,
this module provides the two classic empirical CDFs themselves (as
commonly digitized in the datacenter-transport literature) with an
inverse-CDF sampler using log-linear interpolation between knots.

Both distributions share the paper's qualitative premise: most flows
are small, most bytes live in a heavy tail.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Sequence, Tuple

from repro.core.cell import Flow
from repro.units import BYTE

#: DCTCP web-search workload [1]: (flow size in bytes, CDF).
WEB_SEARCH_CDF: Tuple[Tuple[float, float], ...] = (
    (6_000, 0.15),
    (13_000, 0.30),
    (19_000, 0.45),
    (33_000, 0.60),
    (53_000, 0.70),
    (133_000, 0.80),
    (667_000, 0.90),
    (1_333_000, 0.95),
    (3_333_000, 0.98),
    (6_667_000, 0.99),
    (20_000_000, 1.00),
)

#: VL2 data-mining workload [31]: (flow size in bytes, CDF).
DATA_MINING_CDF: Tuple[Tuple[float, float], ...] = (
    (100, 0.50),
    (1_000, 0.60),
    (10_000, 0.70),
    (30_000, 0.80),
    (100_000, 0.90),
    (1_000_000, 0.95),
    (10_000_000, 0.98),
    (100_000_000, 1.00),
)

_MIN_FLOW_BYTES = 40.0


class EmpiricalSizeSampler:
    """Inverse-CDF sampler over a knotted size distribution.

    Between knots, sizes interpolate log-linearly (flow sizes span
    many decades, so linear interpolation would concentrate mass at
    the large end of each segment).
    """

    def __init__(self, cdf: Sequence[Tuple[float, float]],
                 seed: int = 19) -> None:
        if len(cdf) < 2:
            raise ValueError("CDF needs at least two knots")
        sizes = [s for s, _p in cdf]
        probs = [p for _s, p in cdf]
        if sizes != sorted(sizes) or probs != sorted(probs):
            raise ValueError("CDF knots must be non-decreasing")
        if any(s <= 0 for s in sizes):
            raise ValueError("flow sizes must be positive")
        if probs[0] <= 0 or probs[-1] > 1:
            raise ValueError("CDF values must be in (0, 1]")
        if abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError("last CDF value must be 1.0")
        self._sizes = [_MIN_FLOW_BYTES] + list(map(float, sizes))
        self._probs = [0.0] + list(map(float, probs))
        self.rng = random.Random(seed)

    def sample_bytes(self) -> int:
        """One flow size in bytes."""
        u = self.rng.random()
        index = bisect.bisect_left(self._probs, u)
        index = min(max(index, 1), len(self._probs) - 1)
        p_lo, p_hi = self._probs[index - 1], self._probs[index]
        s_lo, s_hi = self._sizes[index - 1], self._sizes[index]
        if p_hi == p_lo:
            return int(s_hi)
        fraction = (u - p_lo) / (p_hi - p_lo)
        log_size = math.log(s_lo) + fraction * (
            math.log(s_hi) - math.log(s_lo)
        )
        return max(int(_MIN_FLOW_BYTES), int(round(math.exp(log_size))))

    def mean_bytes(self, n_samples: int = 100_000) -> float:
        """Monte-Carlo mean (used for load calibration)."""
        state = self.rng.getstate()
        total = sum(self.sample_bytes() for _ in range(n_samples))
        self.rng.setstate(state)
        return total / n_samples

    def analytic_mean_bytes(self) -> float:
        """Closed-form mean under the log-linear interpolation."""
        total = 0.0
        for k in range(1, len(self._probs)):
            p_lo, p_hi = self._probs[k - 1], self._probs[k]
            s_lo, s_hi = self._sizes[k - 1], self._sizes[k]
            mass = p_hi - p_lo
            if mass <= 0:
                continue
            ratio = math.log(s_hi / s_lo)
            if abs(ratio) < 1e-12:
                segment_mean = s_lo
            else:
                # E[s] over u~U(0,1) of s_lo * (s_hi/s_lo)^u.
                segment_mean = (s_hi - s_lo) / ratio
            total += mass * segment_mean
        return total


def empirical_flows(kind: str, n_flows: int, n_nodes: int, load: float,
                    node_bandwidth_bps: float, *,
                    seed: int = 21) -> List[Flow]:
    """Generate Poisson-arrival flows from an empirical distribution.

    ``kind`` is ``"web_search"`` [1] or ``"data_mining"`` [31].  The
    arrival rate follows the paper's load definition with the
    distribution's analytic mean.
    """
    cdfs = {"web_search": WEB_SEARCH_CDF, "data_mining": DATA_MINING_CDF}
    if kind not in cdfs:
        raise ValueError(f"unknown workload {kind!r}; choose from "
                         f"{sorted(cdfs)}")
    if n_flows <= 0:
        raise ValueError("n_flows must be positive")
    if n_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if load <= 0 or node_bandwidth_bps <= 0:
        raise ValueError("load and bandwidth must be positive")
    sampler = EmpiricalSizeSampler(cdfs[kind], seed=seed)
    mean_bits = sampler.analytic_mean_bytes() * BYTE
    rate = load * n_nodes * node_bandwidth_bps / mean_bits
    rng = random.Random(seed + 1)
    flows: List[Flow] = []
    time = 0.0
    for fid in range(n_flows):
        time += rng.expovariate(rate)
        src = rng.randrange(n_nodes)
        dst = rng.randrange(n_nodes - 1)
        if dst >= src:
            dst += 1
        flows.append(Flow(
            fid, src, dst,
            size_bits=max(8, sampler.sample_bytes() * BYTE),
            arrival_time=time,
        ))
    return flows
