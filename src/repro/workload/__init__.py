"""Synthetic workloads modelled after the paper's evaluation (§2.2, §7).

* :mod:`repro.workload.flows` — heavy-tailed (Pareto) flow sizes with
  Poisson arrivals and uniform endpoints, the §7 workload.
* :mod:`repro.workload.traffic_matrix` — non-uniform endpoint patterns
  (hotspot, permutation, all-to-all) for the ablation studies.
* :mod:`repro.workload.packets` — the §2.2 production packet-size
  mixture (34 % of packets < 128 B; 97.8 % ≤ 576 B).
"""

from repro.workload.empirical import (
    EmpiricalSizeSampler,
    empirical_flows,
)
from repro.workload.flows import FlowWorkload, WorkloadConfig, load_to_rate
from repro.workload.trace_io import read_flows, write_flows
from repro.workload.traffic_matrix import TrafficPattern
from repro.workload.packets import PacketTraceModel

__all__ = [
    "EmpiricalSizeSampler",
    "empirical_flows",
    "read_flows",
    "write_flows",
    "FlowWorkload",
    "WorkloadConfig",
    "load_to_rate",
    "TrafficPattern",
    "PacketTraceModel",
]
