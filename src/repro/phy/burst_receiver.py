"""The complete burst-mode receive pipeline (paper §6, §A.1, [20, 21, 68]).

Every Sirius timeslot delivers a burst from a (potentially) different
sender.  The receiver must, within the guardband, (1) set its gain for
this sender's optical power, (2) align its sampling phase to the
sender's clock, and (3) equalize the channel — all from cached state,
refreshed on every (periodic) visit.  This module composes the pieces
built elsewhere into one :class:`BurstReceiver`:

* :class:`repro.phy.cdr.PhaseCachingCDR` — sampling-phase cache;
* :class:`repro.phy.cdr.AmplitudeCache` — per-sender gain;
* :class:`repro.phy.equalizer.TapCache` — per-sender equalizer taps;
* the PAM-4 slicer of :mod:`repro.phy.pam4`.

It operates on actual sample streams: each burst is a known training
preamble followed by payload symbols; the receiver reports lock
latency, training cost and payload BER.  The signal-level testbed mode
(:meth:`repro.testbed.rig.PrototypeRig` with ``signal_level=True``)
drives this pipeline with per-slot PAM-4 waveforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.phy.cdr import AmplitudeCache, PhaseCachingCDR
from repro.phy.equalizer import TapCache
from repro.phy.pam4 import (
    LEVELS,
    bits_to_symbols,
    measure_ber,
    symbols_to_bits,
)

#: Training preamble length (symbols) prepended to every burst.
DEFAULT_PREAMBLE_SYMBOLS = 64
#: Target optical-equivalent amplitude after gain normalization.
TARGET_AMPLITUDE = 1.0


def make_preamble(n_symbols: int = DEFAULT_PREAMBLE_SYMBOLS,
                  seed: int = 29) -> np.ndarray:
    """A fixed, spectrally busy PAM-4 training pattern."""
    if n_symbols < 8:
        raise ValueError("preamble must be at least 8 symbols")
    rng = np.random.default_rng(seed)
    return LEVELS[rng.integers(0, 4, size=n_symbols)]


@dataclass
class BurstReport:
    """Outcome of receiving one burst."""

    sender: int
    lock_latency_s: float
    training_symbols: int
    payload_ber: float
    gain_applied: float

    @property
    def cached_lock(self) -> bool:
        """Whether the CDR locked from cache (sub-nanosecond)."""
        return self.lock_latency_s < 1e-9


class BurstReceiver:
    """Receives per-sender PAM-4 bursts with fully cached acquisition."""

    def __init__(self, *, n_taps: int = 9,
                 preamble: Optional[np.ndarray] = None,
                 rng_seed: int = 47) -> None:
        self.cdr = PhaseCachingCDR(
            rng=__import__("random").Random(rng_seed)
        )
        self.gains = AmplitudeCache(nominal_gain=1.0)
        self.taps = TapCache(n_taps=n_taps)
        self.preamble = (
            make_preamble() if preamble is None else np.asarray(preamble)
        )
        self.bursts_received = 0
        self._ber_by_sender: Dict[int, float] = {}

    # -- burst reception -------------------------------------------------------
    def receive(self, sender: int, samples: np.ndarray,
                payload_bits: np.ndarray, now: float) -> BurstReport:
        """Receive one burst: preamble samples followed by payload.

        ``samples`` is the raw (channel-distorted, scaled) waveform of
        ``preamble + payload``; ``payload_bits`` are the ground-truth
        transmitted bits used for BER accounting.
        """
        samples = np.asarray(samples, dtype=float)
        n_pre = len(self.preamble)
        if len(samples) <= n_pre:
            raise ValueError("burst shorter than the training preamble")

        # 1. Clock recovery from the cached phase.
        lock_latency = self.cdr.lock(sender, now)

        # 2. Amplitude normalization from the cached (or measured) gain.
        gain = self.gains.gain_for(sender)
        normalized = samples * gain
        measured_amplitude = float(
            np.mean(np.abs(normalized[:n_pre]))
        ) / float(np.mean(np.abs(self.preamble)))
        if measured_amplitude > 0:
            self.gains.update(
                sender,
                received_power_mw=measured_amplitude * TARGET_AMPLITUDE,
                target_power_mw=TARGET_AMPLITUDE,
            )
            normalized = normalized / measured_amplitude

        # 3. Equalizer training on the preamble (warm from the cache).
        training = self.taps.train_burst(
            sender, normalized[:n_pre], self.preamble
        )

        # 4. Payload equalization, slicing, BER accounting.
        equalizer = self.taps.equalizer_for(sender)
        payload = equalizer.equalize(normalized)[n_pre:]
        decided_bits = symbols_to_bits(payload)
        ber = measure_ber(payload_bits, decided_bits)

        self.bursts_received += 1
        previous = self._ber_by_sender.get(sender, 0.0)
        self._ber_by_sender[sender] = max(previous, ber)
        return BurstReport(
            sender=sender,
            lock_latency_s=lock_latency,
            training_symbols=training,
            payload_ber=ber,
            gain_applied=gain,
        )

    # -- accounting ------------------------------------------------------------
    def worst_ber(self, sender: Optional[int] = None) -> float:
        if sender is not None:
            return self._ber_by_sender.get(sender, 0.0)
        return max(self._ber_by_sender.values(), default=0.0)

    def invalidate(self, sender: int) -> None:
        """Forget a sender entirely (e.g. after failure detection)."""
        self.cdr.invalidate(sender)
        self.taps.invalidate(sender)


class BurstTransmitter:
    """Sender-side counterpart: frames payload bits behind the preamble
    and pushes the burst through a per-path channel."""

    def __init__(self, channel, preamble: Optional[np.ndarray] = None,
                 amplitude: float = 1.0) -> None:
        if amplitude <= 0:
            raise ValueError("amplitude must be positive")
        self.channel = channel
        self.preamble = (
            make_preamble() if preamble is None else np.asarray(preamble)
        )
        self.amplitude = amplitude

    def transmit(self, payload_bits) -> np.ndarray:
        """Waveform of preamble + payload after the channel."""
        payload_symbols = bits_to_symbols(payload_bits)
        burst = np.concatenate([self.preamble, payload_symbols])
        return self.channel.transmit(burst) * self.amplitude
