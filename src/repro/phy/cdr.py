"""Burst-mode clock-and-data recovery with phase caching (§4.5, §A.1).

Whenever two nodes are connected for a timeslot, the receiver's CDR
must align its sampling phase to the incoming bit stream.  Conventional
transceivers re-acquire this from scratch, taking microseconds [11] — a
show-stopper for nanosecond slots.  Sirius' *phase caching* [20, 21]
exploits the cyclic schedule: every sender is seen again one epoch
later, so the receiver caches the last-known phase per sender and starts
from it, needing only a tiny correction for the drift accumulated over
one epoch.  *Amplitude caching* plays the same trick for the receiver
gain (different senders arrive at different optical powers).

The model tracks, per sender, a cached phase and the sender's clock
drift; the residual error when a burst arrives is the drift accumulated
since the cache was refreshed plus measurement noise.  Lock succeeds
within a sub-nanosecond window iff the residual is below a fraction of
the symbol time — reproducing both the fast path (cache fresh) and the
cold-start path (cache stale, full acquisition needed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.units import MICROSECOND, NANOSECOND, PICOSECOND, PPM

#: Symbol duration at 25 GBaud (PAM-4 at 50 Gb/s): 40 ps (§6).
SYMBOL_TIME_25GBAUD = 40 * PICOSECOND
#: CDR lock time without caching: microseconds (standard transceivers, §4.5).
COLD_ACQUISITION_TIME = 1.0 * MICROSECOND
#: Lock time with a valid cached phase: sub-nanosecond (§4.5, [20]).
CACHED_LOCK_TIME = 0.625 * NANOSECOND


@dataclass
class _CacheEntry:
    phase_s: float
    refreshed_at: float


class PhaseCachingCDR:
    """Receiver-side CDR with per-sender phase caching.

    Parameters
    ----------
    symbol_time_s:
        Line symbol duration; the lock criterion is a phase residual
        below ``lock_fraction`` of it.
    drift_ppm:
        Residual frequency difference between sender and receiver clocks
        *after* the synchronization protocol's discipline.  Sirius'
        ±5 ps-grade sync keeps this tiny, which is what makes caching
        effective.
    max_cache_age_s:
        Entries older than this are considered stale (sender not seen —
        e.g. after a failure) and force a cold acquisition.
    """

    def __init__(self, *, symbol_time_s: float = SYMBOL_TIME_25GBAUD,
                 drift_ppm: float = 0.01,
                 lock_fraction: float = 0.25,
                 max_cache_age_s: float = 100 * MICROSECOND,
                 noise_s: float = 0.5 * PICOSECOND,
                 rng: Optional[random.Random] = None) -> None:
        if symbol_time_s <= 0:
            raise ValueError("symbol time must be positive")
        if not 0 < lock_fraction < 1:
            raise ValueError("lock fraction must be in (0, 1)")
        self.symbol_time_s = symbol_time_s
        self.drift_ppm = drift_ppm
        self.lock_fraction = lock_fraction
        self.max_cache_age_s = max_cache_age_s
        self.noise_s = noise_s
        self.rng = rng or random.Random(41)
        self._cache: Dict[int, _CacheEntry] = {}
        self.cold_acquisitions = 0
        self.cached_locks = 0

    # -- burst handling ------------------------------------------------------
    def lock(self, sender: int, now: float) -> float:
        """Lock onto a burst from ``sender`` arriving at time ``now``.

        Returns the lock latency (seconds): :data:`CACHED_LOCK_TIME`
        when the cached phase is fresh enough, the full
        :data:`COLD_ACQUISITION_TIME` otherwise.  Either way the cache
        is refreshed with the newly measured phase.
        """
        entry = self._cache.get(sender)
        residual = None
        if entry is not None and now - entry.refreshed_at <= self.max_cache_age_s:
            age = now - entry.refreshed_at
            drift = self.drift_ppm * PPM * age
            residual = abs(drift) + abs(self.rng.gauss(0.0, self.noise_s))
        if residual is not None and (
            residual < self.lock_fraction * self.symbol_time_s
        ):
            latency = CACHED_LOCK_TIME
            self.cached_locks += 1
        else:
            latency = COLD_ACQUISITION_TIME
            self.cold_acquisitions += 1
        measured_phase = self.rng.gauss(0.0, self.noise_s)
        self._cache[sender] = _CacheEntry(measured_phase, now)
        return latency

    def residual_drift(self, age_s: float) -> float:
        """Phase drift accumulated over a cache age (seconds)."""
        if age_s < 0:
            raise ValueError("age cannot be negative")
        return self.drift_ppm * PPM * age_s

    def max_epoch_for_cached_lock(self) -> float:
        """Longest revisit interval that still permits cached locking.

        The design constraint the cyclic schedule satisfies: the epoch
        must be short enough that inter-visit drift stays below the lock
        window.
        """
        window = self.lock_fraction * self.symbol_time_s
        return window / (self.drift_ppm * PPM)

    def invalidate(self, sender: int) -> None:
        """Drop a sender's cache entry (e.g. on detected failure)."""
        self._cache.pop(sender, None)

    @property
    def cache_size(self) -> int:
        return len(self._cache)


class AmplitudeCache:
    """Per-sender receive-gain cache ("amplitude caching", §4.5).

    Different senders arrive at different optical powers (different
    path losses); conventional automatic gain control takes too long for
    a 100 ns slot, so the receiver caches the gain per sender, refreshed
    on every (periodic) visit.
    """

    def __init__(self, *, nominal_gain: float = 1.0) -> None:
        self._gains: Dict[int, float] = {}
        self.nominal_gain = nominal_gain

    def gain_for(self, sender: int) -> float:
        """Gain to apply for a burst from ``sender`` (nominal if unseen)."""
        return self._gains.get(sender, self.nominal_gain)

    def update(self, sender: int, received_power_mw: float,
               target_power_mw: float) -> float:
        """Refresh the cached gain from a measured burst power."""
        if received_power_mw <= 0 or target_power_mw <= 0:
            raise ValueError("powers must be positive")
        gain = target_power_mw / received_power_mw
        self._gains[sender] = gain
        return gain

    def known_senders(self) -> int:
        return len(self._gains)
