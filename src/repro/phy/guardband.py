"""End-to-end reconfiguration (guardband) budget (paper §4.5, §6, Fig 8c).

Timeslots are separated by a guardband during which no data flows and
the end-to-end path reconfigures.  Its components:

* laser tuning time (worst case over wavelength pairs),
* receiver CDR lock (cached-phase lock time),
* time-synchronization inaccuracy between the nodes,
* cell preamble/framing before payload can start.

The paper's two prototype generations instantiate this budget as:

* **Sirius v1** — off-the-shelf DSDBR + dampened driver, 92 ns worst
  tuning → 100 ns guardband;
* **Sirius v2** — custom disaggregated laser chip, 912 ps worst tuning,
  sub-ns CDR → **3.84 ns** guardband, under the 10 ns target and
  allowing slots as short as 38.4 ns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.cdr import CACHED_LOCK_TIME
from repro.units import NANOSECOND, PICOSECOND

#: End-to-end reconfiguration target from the workload analysis (§2.2).
RECONFIGURATION_TARGET_S = 10 * NANOSECOND


@dataclass(frozen=True)
class GuardbandBudget:
    """Itemized guardband composition.

    Defaults reproduce the Sirius v2 prototype's 3.84 ns budget:
    912 ps laser tuning, 625 ps CDR lock, ±5 ps sync error (×2 for the
    worst-case pair) and the remainder as preamble margin.
    """

    laser_tuning_s: float = 912 * PICOSECOND
    cdr_lock_s: float = CACHED_LOCK_TIME
    sync_error_s: float = 10 * PICOSECOND
    preamble_s: float = 2293 * PICOSECOND

    def __post_init__(self) -> None:
        for name in ("laser_tuning_s", "cdr_lock_s", "sync_error_s",
                     "preamble_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")

    @property
    def total_s(self) -> float:
        """Total end-to-end reconfiguration window.

        The laser tuning and the CDR lock are sequential in the worst
        case (data cannot be recovered until the new wavelength has
        settled *and* the receiver has locked), and the synchronization
        error widens the window on both sides.

        >>> round(GuardbandBudget().total_s / 1e-9, 2)
        3.84
        """
        return (self.laser_tuning_s + self.cdr_lock_s + self.sync_error_s
                + self.preamble_s)

    @property
    def meets_target(self) -> bool:
        """Whether the budget satisfies the < 10 ns target of §2.2."""
        return self.total_s < RECONFIGURATION_TARGET_S

    def min_slot_s(self, guard_fraction: float = 0.1) -> float:
        """Shortest slot keeping the guardband at ``guard_fraction``.

        The paper: a 3.84 ns guardband "allows for a slot as low as
        38 ns" (at 10 % overhead).
        """
        if not 0 < guard_fraction < 1:
            raise ValueError("guard fraction must be in (0, 1)")
        return self.total_s / guard_fraction

    @classmethod
    def sirius_v1(cls) -> "GuardbandBudget":
        """The first-generation prototype: 92 ns worst-case laser tuning
        plus preamble, rounded by the authors to a 100 ns guardband."""
        return cls(
            laser_tuning_s=92 * NANOSECOND,
            cdr_lock_s=CACHED_LOCK_TIME,
            sync_error_s=10 * PICOSECOND,
            preamble_s=7.365 * NANOSECOND,
        )

    def burst_waveform(self, slot_duration_s: float, n_slots: int = 3,
                       samples_per_slot: int = 200) -> dict:
        """Normalized optical intensity across consecutive slots (Fig 8c).

        Intensity is ~1 while a cell transmits and ~0 during the
        guardband, with exponential edges on the SOA gating timescale.
        """
        import math

        if slot_duration_s <= self.total_s:
            raise ValueError(
                f"slot ({slot_duration_s}) must exceed the guardband "
                f"({self.total_s})"
            )
        if n_slots < 1 or samples_per_slot < 10:
            raise ValueError("need at least 1 slot and 10 samples per slot")
        edge_tau = max(self.laser_tuning_s / 6.0, 1e-12)
        total = n_slots * slot_duration_s
        n = n_slots * samples_per_slot
        times, intensity = [], []
        for k in range(n):
            t = total * k / (n - 1)
            in_slot = t % slot_duration_s
            data_end = slot_duration_s - self.total_s
            if in_slot < data_end:
                # Rising edge at slot start, flat top afterwards.
                level = 1.0 - math.exp(-in_slot / edge_tau)
            else:
                # Falling edge into the guardband.
                level = math.exp(-(in_slot - data_end) / edge_tau)
            times.append(t)
            intensity.append(level)
        return {
            "times_s": times,
            "intensity": intensity,
            "guardband_s": self.total_s,
        }
