"""Physical-layer mechanisms for nanosecond end-to-end reconfiguration.

* :mod:`repro.phy.cdr` — burst-mode clock-and-data recovery with the
  paper's *phase caching* (and amplitude caching) techniques (§4.5,
  §A.1, [20, 21]).
* :mod:`repro.phy.guardband` — the end-to-end reconfiguration budget:
  laser tuning + CDR lock + synchronization error, and the resulting
  guardband/slot arithmetic (§4.5, Fig 8c).
* :mod:`repro.phy.pam4` — PAM-4 modulation, Gray mapping and the
  AWGN/ISI burst channel of the 50 Gb/s prototype links (§6).
* :mod:`repro.phy.equalizer` — LMS feed-forward equalization with
  per-sender tap caching ("fast equalization", §6, [68]).
"""

from repro.phy.burst_receiver import BurstReceiver, BurstTransmitter
from repro.phy.cdr import PhaseCachingCDR, AmplitudeCache
from repro.phy.equalizer import LMSEqualizer, TapCache
from repro.phy.guardband import GuardbandBudget
from repro.phy.pam4 import PAM4Channel

__all__ = [
    "BurstReceiver",
    "BurstTransmitter",
    "PhaseCachingCDR",
    "AmplitudeCache",
    "GuardbandBudget",
    "LMSEqualizer",
    "TapCache",
    "PAM4Channel",
]
