"""PAM-4 modulation over a noisy, dispersive burst channel (paper §6).

The Sirius v2 prototype runs 50 Gb/s per channel using four-level pulse
amplitude modulation (PAM-4) at 25 GBaud — "as used in state-of-the-art
400 Gb/s transceivers with 8 lanes of 50 Gb/s".  This module implements
the actual signal path:

* Gray-coded bit↔symbol mapping (levels −3, −1, +1, +3; adjacent levels
  differ in one bit, so a slicer error costs one bit, not two);
* a channel model with additive white Gaussian noise and optional
  inter-symbol interference (an FIR channel impulse response);
* a threshold slicer receiver and BER measurement;
* the closed-form AWGN PAM-4 error rate for validation.

The equalizer of :mod:`repro.phy.equalizer` sits between the channel
and the slicer to undo the ISI.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: The four PAM levels in transmission order of the Gray code.
LEVELS = np.array([-3.0, -1.0, 1.0, 3.0])
#: Gray mapping: 2-bit pairs (MSB, LSB) -> level index.
_GRAY_TO_INDEX = {(0, 0): 0, (0, 1): 1, (1, 1): 2, (1, 0): 3}
_INDEX_TO_GRAY = {v: k for k, v in _GRAY_TO_INDEX.items()}


def bits_to_symbols(bits: Sequence[int]) -> np.ndarray:
    """Gray-map a bit sequence (even length) onto PAM-4 levels."""
    bits = np.asarray(bits, dtype=int)
    if bits.ndim != 1 or len(bits) % 2:
        raise ValueError("need a flat, even-length bit sequence")
    if np.any((bits != 0) & (bits != 1)):
        raise ValueError("bits must be 0 or 1")
    pairs = bits.reshape(-1, 2)
    indices = np.array([
        _GRAY_TO_INDEX[(int(msb), int(lsb))] for msb, lsb in pairs
    ])
    return LEVELS[indices]


def symbols_to_bits(symbols: np.ndarray) -> np.ndarray:
    """Slice received samples to the nearest level and Gray-demap."""
    symbols = np.asarray(symbols, dtype=float)
    indices = slice_to_indices(symbols)
    bits = np.empty(2 * len(indices), dtype=int)
    for k, index in enumerate(indices):
        msb, lsb = _INDEX_TO_GRAY[int(index)]
        bits[2 * k] = msb
        bits[2 * k + 1] = lsb
    return bits


def slice_to_indices(samples: np.ndarray) -> np.ndarray:
    """Hard-decision slicing: nearest of the four levels."""
    samples = np.asarray(samples, dtype=float)
    thresholds = np.array([-2.0, 0.0, 2.0])
    return np.searchsorted(thresholds, samples)


class PAM4Channel:
    """AWGN + FIR-ISI channel for PAM-4 bursts.

    Parameters
    ----------
    snr_db:
        Signal-to-noise ratio relative to the mean symbol power (5).
    impulse_response:
        FIR taps of the channel (main cursor first).  ``(1.0,)`` is an
        ISI-free channel; a bandwidth-limited 50 G link looks like e.g.
        ``(1.0, 0.45, 0.2)``.
    seed:
        Noise RNG seed.
    """

    def __init__(self, snr_db: float = 22.0,
                 impulse_response: Sequence[float] = (1.0,),
                 seed: Optional[int] = 0) -> None:
        if not impulse_response:
            raise ValueError("impulse response needs at least one tap")
        if abs(impulse_response[0]) < 1e-12:
            raise ValueError("main cursor tap cannot be zero")
        self.snr_db = snr_db
        self.impulse_response = np.asarray(impulse_response, dtype=float)
        self.rng = np.random.default_rng(seed)

    @property
    def noise_sigma(self) -> float:
        """Noise standard deviation for the configured SNR."""
        signal_power = float(np.mean(LEVELS ** 2))  # = 5
        return float(np.sqrt(signal_power / 10 ** (self.snr_db / 10.0)))

    def transmit(self, symbols: np.ndarray) -> np.ndarray:
        """Push symbols through the ISI filter and add noise."""
        symbols = np.asarray(symbols, dtype=float)
        distorted = np.convolve(symbols, self.impulse_response)[:len(symbols)]
        noise = self.rng.normal(0.0, self.noise_sigma, size=len(symbols))
        return distorted + noise


def measure_ber(tx_bits: Sequence[int], rx_bits: Sequence[int]) -> float:
    """Fraction of differing bits between transmit and receive."""
    tx = np.asarray(tx_bits, dtype=int)
    rx = np.asarray(rx_bits, dtype=int)
    if tx.shape != rx.shape:
        raise ValueError("bit sequences must have equal length")
    if len(tx) == 0:
        raise ValueError("cannot measure BER of zero bits")
    return float(np.mean(tx != rx))


def theoretical_awgn_ber(snr_db: float) -> float:
    """Closed-form PAM-4 AWGN bit error rate (Gray coding).

    Symbol-error dominated by adjacent-level crossings:
    ``P_sym = 1.5·Q(1/σ)`` and one bit per symbol error with Gray
    mapping: ``BER = 0.75·Q(d/σ)`` with level half-distance d = 1.
    """
    from math import erfc, sqrt

    signal_power = float(np.mean(LEVELS ** 2))
    sigma = sqrt(signal_power / 10 ** (snr_db / 10.0))
    q = 0.5 * erfc((1.0 / sigma) / sqrt(2.0))
    return 0.75 * q


def random_bits(n: int, seed: int = 1) -> np.ndarray:
    """``n`` uniform random bits (n even for PAM-4 framing)."""
    if n <= 0 or n % 2:
        raise ValueError("need a positive, even bit count")
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=n)
