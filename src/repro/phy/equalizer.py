"""LMS feed-forward equalizer with tap caching (paper §6, [68]).

Burst-mode PAM-4 reception needs the receiver equalized to the channel
within the guardband.  A conventional adaptive equalizer trains over
thousands of symbols — far too slow for 100 ns bursts.  The prototype's
"custom digital signal processing algorithm to guarantee fast
equalization" leverages the cyclic schedule exactly like phase caching:
the converged tap vector for each sender is cached and used as the
starting point at the next visit, so only a handful of training symbols
absorb the (tiny) channel drift accumulated over one epoch.

:class:`LMSEqualizer` is a standard least-mean-squares FFE;
:class:`TapCache` stores per-sender tap vectors and reports the
training-length saving of warm starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.phy.pam4 import LEVELS, slice_to_indices


class LMSEqualizer:
    """Adaptive feed-forward equalizer (symbol-spaced FIR, LMS update).

    Parameters
    ----------
    n_taps:
        FIR length; must cover the channel's ISI span.
    step:
        LMS adaptation step size (mu).  Stability requires
        ``mu < 2 / (n_taps · E[x²])``.
    """

    def __init__(self, n_taps: int = 7, step: float = 0.004,
                 taps: Optional[np.ndarray] = None) -> None:
        if n_taps < 1:
            raise ValueError(f"need at least one tap, got {n_taps}")
        if not 0 < step < 1:
            raise ValueError(f"step must be in (0, 1), got {step}")
        self.n_taps = n_taps
        self.step = step
        if taps is None:
            self.taps = np.zeros(n_taps)
            self.taps[n_taps // 2] = 1.0  # centre spike initialisation
        else:
            taps = np.asarray(taps, dtype=float)
            if taps.shape != (n_taps,):
                raise ValueError("tap vector shape mismatch")
            self.taps = taps.copy()

    # -- filtering -------------------------------------------------------------
    def _regressors(self, samples: np.ndarray) -> np.ndarray:
        """Sliding windows (centred) of the input for each output symbol."""
        half = self.n_taps // 2
        padded = np.concatenate([
            np.zeros(half), np.asarray(samples, dtype=float),
            np.zeros(self.n_taps - half - 1),
        ])
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, self.n_taps
        )
        return windows[:, ::-1]

    def equalize(self, samples: np.ndarray) -> np.ndarray:
        """Filter a burst with the current (frozen) taps."""
        return self._regressors(samples) @ self.taps

    # -- adaptation ------------------------------------------------------------
    def train(self, samples: np.ndarray, reference: np.ndarray,
              *, target_mse: float = 0.05,
              max_symbols: Optional[int] = None) -> int:
        """LMS training against known reference symbols.

        Returns the number of symbols consumed before a sliding-window
        MSE fell below ``target_mse`` (or all of them, if it never
        did).  This is the burst-preamble cost of equalization.
        """
        samples = np.asarray(samples, dtype=float)
        reference = np.asarray(reference, dtype=float)
        if samples.shape != reference.shape:
            raise ValueError("training samples/reference length mismatch")
        regressors = self._regressors(samples)
        limit = len(samples) if max_symbols is None else min(
            len(samples), max_symbols
        )
        window = 16
        errors = []
        for k in range(limit):
            x = regressors[k]
            y = float(x @ self.taps)
            error = reference[k] - y
            self.taps += self.step * error * x
            errors.append(error * error)
            if k >= window and float(np.mean(errors[-window:])) < target_mse:
                return k + 1
        return limit

    def decision_directed(self, samples: np.ndarray) -> np.ndarray:
        """Equalize and track with slicer decisions as the reference."""
        samples = np.asarray(samples, dtype=float)
        regressors = self._regressors(samples)
        out = np.empty(len(samples))
        for k in range(len(samples)):
            x = regressors[k]
            y = float(x @ self.taps)
            decision = LEVELS[int(slice_to_indices(np.array([y]))[0])]
            self.taps += self.step * (decision - y) * x
            out[k] = y
        return out

    def output_mse(self, samples: np.ndarray,
                   reference: np.ndarray) -> float:
        """Mean squared error of the frozen equalizer on a burst."""
        out = self.equalize(samples)
        reference = np.asarray(reference, dtype=float)
        return float(np.mean((out - reference) ** 2))


@dataclass
class CacheStats:
    cold_trainings: int = 0
    warm_trainings: int = 0
    cold_symbols_total: int = 0
    warm_symbols_total: int = 0

    @property
    def mean_cold_symbols(self) -> float:
        if not self.cold_trainings:
            return 0.0
        return self.cold_symbols_total / self.cold_trainings

    @property
    def mean_warm_symbols(self) -> float:
        if not self.warm_trainings:
            return 0.0
        return self.warm_symbols_total / self.warm_trainings

    @property
    def speedup(self) -> float:
        """Cold/warm training-length ratio (the caching win)."""
        warm = self.mean_warm_symbols
        return self.mean_cold_symbols / warm if warm else float("inf")


class TapCache:
    """Per-sender equalizer tap cache (the §6 fast-equalization trick)."""

    def __init__(self, n_taps: int = 7, step: float = 0.004) -> None:
        self.n_taps = n_taps
        self.step = step
        self._taps: Dict[int, np.ndarray] = {}
        self.stats = CacheStats()

    def equalizer_for(self, sender: int) -> LMSEqualizer:
        """An equalizer warm-started from the sender's cached taps."""
        cached = self._taps.get(sender)
        return LMSEqualizer(self.n_taps, self.step, taps=cached)

    def train_burst(self, sender: int, samples: np.ndarray,
                    reference: np.ndarray, *,
                    target_mse: float = 0.05) -> int:
        """Train on a burst preamble, updating the cache.

        Returns the preamble symbols consumed; cold (first-contact)
        and warm visits are tracked separately in :attr:`stats`.
        """
        warm = sender in self._taps
        equalizer = self.equalizer_for(sender)
        used = equalizer.train(samples, reference, target_mse=target_mse)
        self._taps[sender] = equalizer.taps.copy()
        if warm:
            self.stats.warm_trainings += 1
            self.stats.warm_symbols_total += used
        else:
            self.stats.cold_trainings += 1
            self.stats.cold_symbols_total += used
        return used

    def invalidate(self, sender: int) -> None:
        self._taps.pop(sender, None)

    def known_senders(self) -> int:
        return len(self._taps)
