"""Physical-unit constants and conversion helpers.

All internal quantities in the library use SI base units: seconds for
time, bits for data, bits-per-second for rates, watts for power and
metres for distance.  The constants here let calling code express
parameters in the units the paper uses (nanoseconds, gigabits, dBm)
without sprinkling magic powers of ten everywhere.
"""

from __future__ import annotations

import math

# --- time ---------------------------------------------------------------
SECOND = 1.0
MILLISECOND = 1e-3
MICROSECOND = 1e-6
NANOSECOND = 1e-9
PICOSECOND = 1e-12

MS = MILLISECOND
US = MICROSECOND
NS = NANOSECOND
PS = PICOSECOND

# --- data ---------------------------------------------------------------
BIT = 1
BYTE = 8
KILOBYTE = 1000 * BYTE
KIB = 1024 * BYTE
MEGABYTE = 1000 * KILOBYTE
MIB = 1024 * KIB

# --- rates --------------------------------------------------------------
BPS = 1.0
KBPS = 1e3
MBPS = 1e6
GBPS = 1e9
TBPS = 1e12
PBPS = 1e15

# --- power --------------------------------------------------------------
WATT = 1.0
MILLIWATT = 1e-3
MICROWATT = 1e-6
KILOWATT = 1e3
MEGAWATT = 1e6

# --- energy -------------------------------------------------------------
JOULE = 1.0
PICOJOULE = 1e-12

# --- dimensionless ------------------------------------------------------
#: Parts-per-million, the unit of oscillator frequency error (§4.4).
PPM = 1e-6

# --- distance / light ---------------------------------------------------
METRE = 1.0
KILOMETRE = 1000.0
NANOMETRE = 1e-9

# --- frequency ----------------------------------------------------------
HERTZ = 1.0
GIGAHERTZ = 1e9
#: Speed of light in standard single-mode fibre (refractive index ~1.468).
SPEED_OF_LIGHT_VACUUM = 299_792_458.0
FIBRE_REFRACTIVE_INDEX = 1.468
SPEED_OF_LIGHT_FIBRE = SPEED_OF_LIGHT_VACUUM / FIBRE_REFRACTIVE_INDEX

# --- optical C-band -----------------------------------------------------
#: Centre of the optical C-band used by the paper's lasers (nanometres).
C_BAND_CENTRE_NM = 1550.0
#: ITU grid spacing used by the paper's DSDBR lasers (GHz).
ITU_GRID_SPACING_GHZ = 50.0


def dbm_to_mw(dbm: float) -> float:
    """Convert optical power from dBm to milliwatts.

    >>> round(dbm_to_mw(0.0), 6)
    1.0
    >>> round(dbm_to_mw(-8.0), 3)   # paper's receiver sensitivity, 0.16 mW
    0.158
    """
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert optical power from milliwatts to dBm.

    Raises ``ValueError`` for non-positive power, which has no dBm
    representation.
    """
    if mw <= 0:
        raise ValueError(f"optical power must be positive, got {mw} mW")
    return 10.0 * math.log10(mw)


def dbm_to_w(dbm: float) -> float:
    """Convert optical power from dBm to watts (SI base unit).

    >>> round(dbm_to_w(0.0), 6)
    0.001
    """
    return dbm_to_mw(dbm) * MILLIWATT


def w_to_dbm(w: float) -> float:
    """Convert optical power from watts to dBm.

    Raises ``ValueError`` for non-positive power, which has no dBm
    representation.

    >>> round(w_to_dbm(0.001), 6)
    0.0
    """
    return mw_to_dbm(w / MILLIWATT)


def db_ratio(ratio: float) -> float:
    """Express a linear power ratio in decibels."""
    if ratio <= 0:
        raise ValueError(f"power ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def db_to_ratio(db: float) -> float:
    """Convert decibels to a linear power ratio."""
    return 10.0 ** (db / 10.0)


def fibre_delay(distance_m: float) -> float:
    """Propagation delay (seconds) of light over ``distance_m`` of fibre.

    The paper (§4.2) notes a 500 m detour adds up to 2.5 us of
    propagation latency, i.e. ~5 ns/m, which this reproduces:

    >>> round(fibre_delay(500.0) / 1e-6, 2)
    2.45
    """
    if distance_m < 0:
        raise ValueError(f"distance must be non-negative, got {distance_m}")
    return distance_m / SPEED_OF_LIGHT_FIBRE


def transmission_time(size_bits: float, rate_bps: float) -> float:
    """Time (seconds) to serialize ``size_bits`` at ``rate_bps``."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    if size_bits < 0:
        raise ValueError(f"size must be non-negative, got {size_bits}")
    return size_bits / rate_bps


def wavelength_nm(channel: int, n_channels: int, *, centre_nm: float = C_BAND_CENTRE_NM,
                  spacing_ghz: float = ITU_GRID_SPACING_GHZ) -> float:
    """Wavelength (nm) of ITU-grid ``channel`` out of ``n_channels``.

    Channels are laid out symmetrically around ``centre_nm`` with
    ``spacing_ghz`` frequency spacing, matching the C-band grid the
    paper's 112-wavelength DSDBR laser tunes across.
    """
    if not 0 <= channel < n_channels:
        raise ValueError(f"channel {channel} out of range [0, {n_channels})")
    centre_freq_ghz = SPEED_OF_LIGHT_VACUUM / (centre_nm * NANOMETRE) / GIGAHERTZ
    offset = channel - (n_channels - 1) / 2.0
    freq_ghz = centre_freq_ghz - offset * spacing_ghz
    return SPEED_OF_LIGHT_VACUUM / (freq_ghz * GIGAHERTZ) / NANOMETRE
