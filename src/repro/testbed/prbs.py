"""Pseudo-random binary sequences (PRBS) for link testing (paper §6).

The prototype FPGAs transmit PRBS patterns and compare the received
stream against the locally regenerated expected sequence to count bit
errors.  This module implements the standard ITU-T PRBS polynomials as
Fibonacci LFSRs; PRBS-7 (x^7 + x^6 + 1) and PRBS-31 (x^31 + x^28 + 1)
are the ones commonly used in transceiver bring-up.
"""

from __future__ import annotations

from typing import Iterable, List

#: Supported polynomials: order -> feedback tap (second tap besides the MSB).
_TAPS = {7: 6, 9: 5, 15: 14, 23: 18, 31: 28}


class PRBSGenerator:
    """Fibonacci LFSR producing a PRBS-``order`` bit stream."""

    def __init__(self, order: int = 7, seed: int = 1) -> None:
        if order not in _TAPS:
            raise ValueError(
                f"unsupported PRBS order {order}; choose from {sorted(_TAPS)}"
            )
        if not 0 < seed < (1 << order):
            raise ValueError(
                f"seed must be a non-zero {order}-bit value, got {seed}"
            )
        self.order = order
        self._tap = _TAPS[order]
        self._state = seed
        self._seed = seed

    @property
    def period(self) -> int:
        """Sequence period: 2^order - 1."""
        return (1 << self.order) - 1

    def next_bit(self) -> int:
        """Advance the LFSR one step and return the output bit."""
        msb = (self._state >> (self.order - 1)) & 1
        tap = (self._state >> (self._tap - 1)) & 1
        bit = msb ^ tap
        self._state = ((self._state << 1) | bit) & ((1 << self.order) - 1)
        return msb

    def bits(self, n: int) -> List[int]:
        """The next ``n`` bits of the sequence."""
        if n < 0:
            raise ValueError(f"n cannot be negative, got {n}")
        return [self.next_bit() for _ in range(n)]

    def reset(self) -> None:
        """Rewind to the initial seed state."""
        self._state = self._seed


class PRBSChecker:
    """Receiver-side checker: regenerates the expected PRBS and counts
    mismatches, exactly as the prototype FPGAs do."""

    def __init__(self, order: int = 7, seed: int = 1) -> None:
        self.reference = PRBSGenerator(order, seed)
        self.bits_checked = 0
        self.bit_errors = 0

    def check(self, received: Iterable[int]) -> int:
        """Compare a received chunk; returns the errors in this chunk."""
        errors = 0
        for bit in received:
            if bit not in (0, 1):
                raise ValueError(f"received stream must be bits, got {bit!r}")
            if bit != self.reference.next_bit():
                errors += 1
            self.bits_checked += 1
        self.bit_errors += errors
        return errors

    @property
    def ber(self) -> float:
        """Measured bit-error rate so far."""
        if self.bits_checked == 0:
            return 0.0
        return self.bit_errors / self.bits_checked

    def error_free(self, threshold: float = 1e-12) -> bool:
        """Post-FEC error-free criterion used in §6 (BER < 1e-12)."""
        return self.ber < threshold
