"""The four-node prototype rig (paper §6, Fig 7).

Wires the optical device models, the cyclic schedule, the link budget,
phase-caching CDR and PRBS data path into one measurable system:

* **Sirius v1** — DSDBR lasers with the dampened-tuning driver
  (worst-case 92 ns) and a 100 ns guardband;
* **Sirius v2** — the fixed-laser-bank chip (worst-case 912 ps) and a
  3.84 ns guardband, with slots as short as 38.4 ns.

Each epoch every node tunes its laser to the scheduled wavelength, the
AWGR routes the burst, the destination's CDR locks from its phase
cache, and PRBS bits cross the channel with a BER drawn from the
received optical power.  The report aggregates exactly the §6
measurements: measured BER per channel, end-to-end reconfiguration
latency, guardband sufficiency and clock sync deviation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from repro.optics.awgr import AWGR
from repro.optics.ber import BERModel
from repro.optics.disaggregated import FixedLaserBank
from repro.optics.laser import DampenedTuningDriver, TunableLaser
from repro.optics.link_budget import LinkBudget
from repro.phy.cdr import PhaseCachingCDR
from repro.phy.guardband import GuardbandBudget
from repro.sync.protocol import SyncConfig, SyncProtocol, make_clock_ensemble
from repro.testbed.prbs import PRBSChecker, PRBSGenerator


@dataclass
class RigReport:
    """Aggregated measurements of a rig run (the §6 result set)."""

    generation: str
    epochs: int
    guardband_s: float
    worst_tuning_s: float
    worst_reconfiguration_s: float
    guardband_sufficient: bool
    ber_by_channel: Dict[int, float]
    bits_checked: int
    sync_max_offset_s: float

    @property
    def error_free(self) -> bool:
        """Post-FEC error-free across all channels (BER < 1e-12)."""
        return all(ber < 1e-12 for ber in self.ber_by_channel.values())


class PrototypeRig:
    """A four-node, one-AWGR Sirius prototype in software.

    Parameters
    ----------
    generation:
        ``"v1"`` (dampened DSDBR, 100 ns guardband) or ``"v2"``
        (fixed-laser-bank chip, 3.84 ns guardband).
    n_nodes:
        Nodes on the AWGR (the prototype uses 4).
    bits_per_burst:
        PRBS bits carried per slot in the software data path.  The real
        rig runs 24 h at 25/50 Gb/s; the default keeps runs fast while
        still exercising every bit of the path.
    signal_level:
        When True, every burst is an actual PAM-4 waveform pushed
        through a per-path dispersive channel and received by the full
        cached pipeline (gain → equalizer → CDR → slicer,
        :class:`repro.phy.burst_receiver.BurstReceiver`) instead of the
        closed-form BER model.  Slower; exercises the §6 DSP end to
        end.
    """

    def __init__(self, generation: str = "v2", *, n_nodes: int = 4,
                 bits_per_burst: int = 256, seed: int = 5,
                 signal_level: bool = False) -> None:
        if generation not in ("v1", "v2"):
            raise ValueError(f"generation must be 'v1' or 'v2', got {generation!r}")
        if n_nodes < 2:
            raise ValueError("rig needs at least 2 nodes")
        if signal_level and bits_per_burst % 2:
            raise ValueError("PAM-4 bursts need an even bit count")
        self.generation = generation
        self.n_nodes = n_nodes
        self.bits_per_burst = bits_per_burst
        self.signal_level = signal_level
        self.rng = random.Random(seed)
        self.awgr = AWGR(n_nodes)
        self.budget = LinkBudget(grating_loss_db=self.awgr.insertion_loss_db)
        self.ber_model = BERModel()
        self._receivers = {}
        self._waveform_channels = {}
        if signal_level:
            from repro.phy.burst_receiver import (
                BurstReceiver,
                BurstTransmitter,
            )
            from repro.phy.pam4 import PAM4Channel

            self._receivers = {
                node: BurstReceiver(rng_seed=seed + 200 + node)
                for node in range(n_nodes)
            }
            for src in range(n_nodes):
                for dst in range(n_nodes):
                    if src == dst:
                        continue
                    # Mild per-path dispersion and power spread; the
                    # receiver's caches must absorb both.
                    channel = PAM4Channel(
                        snr_db=26.0,
                        impulse_response=(1.0, 0.35, 0.12),
                        seed=seed + 31 * src + dst,
                    )
                    amplitude = 0.8 + 0.05 * ((src + dst) % 5)
                    self._waveform_channels[(src, dst)] = BurstTransmitter(
                        channel, amplitude=amplitude
                    )

        if generation == "v1":
            self.guardband = GuardbandBudget.sirius_v1()
            self.lasers = [
                TunableLaser(n_wavelengths=n_nodes,
                             driver=DampenedTuningDriver())
                for _ in range(n_nodes)
            ]
        else:
            self.guardband = GuardbandBudget()
            self.lasers = [
                FixedLaserBank(n_nodes, seed=seed + i)
                for i in range(n_nodes)
            ]

        self.cdrs = [
            PhaseCachingCDR(rng=random.Random(seed + 100 + i))
            for i in range(n_nodes)
        ]
        # One PRBS stream per ordered node pair, as the FPGAs do.
        self._tx: Dict[tuple, PRBSGenerator] = {}
        self._rx: Dict[tuple, PRBSChecker] = {}
        for src in range(n_nodes):
            for dst in range(n_nodes):
                if src != dst:
                    self._tx[(src, dst)] = PRBSGenerator(7, seed=1 + src)
                    self._rx[(src, dst)] = PRBSChecker(7, seed=1 + src)

    # -- per-slot data path ------------------------------------------------------
    def _transmit_burst(self, src: int, dst: int, now: float) -> float:
        """One burst src → dst; returns the reconfiguration latency."""
        if self.signal_level:
            return self._transmit_burst_signal(src, dst, now)
        channel = self.awgr.channel_for(src, dst)
        tuning = self.lasers[src].tune(channel, now)
        out_port, power_mw = self.awgr.route(
            src, channel,
            power_mw=10 ** (self.budget.laser_output_dbm / 10.0)
            / self.budget.max_sharing_degree(),
        )
        assert out_port == dst, "AWGR routing disagrees with the schedule"
        lock = self.cdrs[dst].lock(src, now)
        received_dbm = (
            10 * _log10(power_mw) - self.budget.coupling_loss_db
        )
        ber = self.ber_model.post_fec_ber(received_dbm, channel)
        bits = self._tx[(src, dst)].bits(self.bits_per_burst)
        corrupted = [
            bit ^ 1 if self.rng.random() < ber else bit for bit in bits
        ]
        self._rx[(src, dst)].check(corrupted)
        return tuning + lock

    def _transmit_burst_signal(self, src: int, dst: int,
                               now: float) -> float:
        """Signal-level burst: real PAM-4 waveform through the cached
        receive pipeline."""
        import numpy as np

        wavelength = self.awgr.channel_for(src, dst)
        tuning = self.lasers[src].tune(wavelength, now)
        out_port, _power = self.awgr.route(src, wavelength)
        assert out_port == dst, "AWGR routing disagrees with the schedule"
        bits = np.array(self._tx[(src, dst)].bits(self.bits_per_burst))
        waveform = self._waveform_channels[(src, dst)].transmit(bits)
        report = self._receivers[dst].receive(src, waveform, bits, now)
        errors = int(round(report.payload_ber * len(bits)))
        # Mirror into the pair checker so BER accounting is uniform
        # across both rig modes.
        checker = self._rx[(src, dst)]
        checker.bits_checked += len(bits)
        checker.bit_errors += errors
        checker.reference.bits(len(bits))  # keep the reference in step
        return tuning + report.lock_latency_s

    # -- runs ------------------------------------------------------------------
    def run(self, n_epochs: int = 50,
            sync_epochs: int = 5_000) -> RigReport:
        """Run the rig for ``n_epochs`` of the cyclic schedule.

        Every node visits every destination once per epoch; the report
        collects worst-case reconfiguration, per-channel BER and the
        clock-sync deviation measured over ``sync_epochs`` of the
        leader-rotation protocol (§6's two-FPGA phase measurement).
        """
        if n_epochs <= 0:
            raise ValueError("n_epochs must be positive")
        slot = self.guardband.min_slot_s()
        worst_reconf = 0.0
        now = 0.0
        # One warmup epoch fills the CDR phase caches: the first burst
        # from each sender is necessarily a cold (microsecond)
        # acquisition, on the prototype as much as here.
        for epoch in range(n_epochs + 1):
            warming_up = epoch == 0
            for offset in range(1, self.n_nodes):
                for src in range(self.n_nodes):
                    dst = (src + offset) % self.n_nodes
                    latency = self._transmit_burst(src, dst, now)
                    if not warming_up:
                        worst_reconf = max(worst_reconf, latency)
                now += slot

        worst_tuning = max(
            self._worst_tuning(laser) for laser in self.lasers
        )
        sync = SyncProtocol(
            make_clock_ensemble(self.n_nodes, seed=11),
            SyncConfig(epoch_s=self.n_nodes * slot),
        ).run(sync_epochs, warmup_epochs=min(2000, sync_epochs // 2))

        ber_by_channel: Dict[int, float] = {}
        for (src, dst), checker in self._rx.items():
            channel = self.awgr.channel_for(src, dst)
            previous = ber_by_channel.get(channel, 0.0)
            ber_by_channel[channel] = max(previous, checker.ber)
        return RigReport(
            generation=self.generation,
            epochs=n_epochs,
            guardband_s=self.guardband.total_s,
            worst_tuning_s=worst_tuning,
            worst_reconfiguration_s=worst_reconf,
            guardband_sufficient=worst_reconf <= self.guardband.total_s,
            ber_by_channel=ber_by_channel,
            bits_checked=sum(c.bits_checked for c in self._rx.values()),
            sync_max_offset_s=sync.max_abs_offset_s,
        )

    @staticmethod
    def _worst_tuning(laser) -> float:
        if isinstance(laser, FixedLaserBank):
            return laser.worst_case_tuning_latency()
        return laser.driver.tuning_latency(laser.n_wavelengths - 1)


def _log10(value: float) -> float:
    import math

    if value <= 0:
        raise ValueError("power must be positive")
    return math.log10(value)
