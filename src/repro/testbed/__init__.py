"""Software surrogate of the four-node Sirius prototype (paper §6).

The authors' testbed connects four FPGA nodes through one AWGR; nodes
transmit pseudo-random binary sequences (PRBS) to each other on the
cyclic schedule and measure bit-error rate, end-to-end reconfiguration
latency and clock-phase deviation.  This package rebuilds that rig in
software with the same moving parts:

* :mod:`repro.testbed.prbs` — LFSR-based PRBS generation/checking (the
  actual bit-level data path).
* :mod:`repro.testbed.rig` — the four-node rig: lasers (Sirius v1's
  dampened DSDBR or v2's fixed-bank chip), AWGR, link budget, phase-
  caching CDR and the guardband accounting; produces the §6 results
  (error-free operation, 100 ns → 3.84 ns reconfiguration, ±5 ps sync).
"""

from repro.testbed.prbs import PRBSGenerator, PRBSChecker
from repro.testbed.rig import PrototypeRig, RigReport

__all__ = ["PRBSGenerator", "PRBSChecker", "PrototypeRig", "RigReport"]
