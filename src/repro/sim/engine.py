"""A minimal discrete-event simulation engine.

A classic priority-queue event loop: events are ``(time, seq, callback,
payload)`` entries; callbacks may schedule further events and may cancel
previously scheduled ones.  The ``seq`` tiebreaker makes simultaneous
events fire in scheduling order, keeping runs deterministic.

This is deliberately small — the heavy lifting in this repository is
done by the epoch-synchronous Sirius simulator
(:mod:`repro.core.network`) and the fluid baseline
(:mod:`repro.sim.fluid`); the event loop serves the time-sync
experiments and any user code that needs ad-hoc event-driven models.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled event.  Ordered by (time, seq)."""

    time: float
    seq: int
    callback: Callable[["EventLoop", Any], None] = field(compare=False)
    payload: Any = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it."""
        self.cancelled = True


class EventLoop:
    """Priority-queue discrete-event loop."""

    def __init__(self) -> None:
        self._queue: list = []
        self._counter = itertools.count()
        self.now = 0.0
        self._running = False
        self.events_processed = 0

    def schedule(self, delay: float,
                 callback: Callable[["EventLoop", Any], None],
                 payload: Any = None) -> Event:
        """Schedule ``callback(loop, payload)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay cannot be negative, got {delay}")
        return self.schedule_at(self.now + delay, callback, payload)

    def schedule_at(self, time: float,
                    callback: Callable[["EventLoop", Any], None],
                    payload: Any = None) -> Event:
        """Schedule ``callback`` at an absolute time (>= now)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past (now={self.now}, time={time})"
            )
        event = Event(time, next(self._counter), callback, payload)
        heapq.heappush(self._queue, event)
        return event

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or the
        event budget is spent.  Returns the final simulation time."""
        if self._running:
            raise RuntimeError("event loop is already running")
        self._running = True
        try:
            processed = 0
            while self._queue:
                event = self._queue[0]
                if until is not None and event.time > until:
                    self.now = until
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self.now = event.time
                event.callback(self, event.payload)
                processed += 1
                self.events_processed += 1
                if max_events is not None and processed >= max_events:
                    break
            else:
                if until is not None:
                    self.now = max(self.now, until)
        finally:
            self._running = False
        return self.now

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def __len__(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)
