"""A minimal discrete-event simulation engine.

Two priority-queue primitives share this module:

* :class:`EventLoop` — a classic callback event loop: events are
  ``(time, seq, callback, payload)`` entries; callbacks may schedule
  further events and may cancel previously scheduled ones.  The ``seq``
  tiebreaker makes simultaneous events fire in scheduling order,
  keeping runs deterministic.  It serves the time-sync experiments and
  any user code that needs ad-hoc event-driven models.
* :class:`CompletionQueue` — a keyed min-heap with O(1) stale-entry
  invalidation, the scheduling core of the fluid simulator's
  incremental engine (:mod:`repro.sim.fluid`): one live entry per key,
  superseded entries discarded lazily when they surface at the heap
  top.  Where ``EventLoop`` cancels by mutating an ``Event`` object it
  handed out, ``CompletionQueue`` invalidates by key — the natural
  shape when the producer re-prices entries (a flow's completion
  instant changes every time its max-min rate does) rather than
  cancelling one-shot callbacks.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional, Tuple


@dataclass(order=True)
class Event:
    """A scheduled event.  Ordered by (time, seq)."""

    time: float
    seq: int
    callback: Callable[["EventLoop", Any], None] = field(compare=False)
    payload: Any = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it."""
        self.cancelled = True


class EventLoop:
    """Priority-queue discrete-event loop."""

    def __init__(self) -> None:
        self._queue: list = []
        self._counter = itertools.count()
        self.now = 0.0
        self._running = False
        self.events_processed = 0

    def schedule(self, delay: float,
                 callback: Callable[["EventLoop", Any], None],
                 payload: Any = None) -> Event:
        """Schedule ``callback(loop, payload)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay cannot be negative, got {delay}")
        return self.schedule_at(self.now + delay, callback, payload)

    def schedule_at(self, time: float,
                    callback: Callable[["EventLoop", Any], None],
                    payload: Any = None) -> Event:
        """Schedule ``callback`` at an absolute time (>= now)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past (now={self.now}, time={time})"
            )
        event = Event(time, next(self._counter), callback, payload)
        heapq.heappush(self._queue, event)
        return event

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or the
        event budget is spent.  Returns the final simulation time."""
        if self._running:
            raise RuntimeError("event loop is already running")
        self._running = True
        try:
            processed = 0
            while self._queue:
                event = self._queue[0]
                if until is not None and event.time > until:
                    self.now = until
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self.now = event.time
                event.callback(self, event.payload)
                processed += 1
                self.events_processed += 1
                if max_events is not None and processed >= max_events:
                    break
            else:
                if until is not None:
                    self.now = max(self.now, until)
        finally:
            self._running = False
        return self.now

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def __len__(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)


class CompletionQueue:
    """Keyed min-heap of ``(time, seq)`` entries with lazy invalidation.

    At most one entry per key is *live*: :meth:`push` supersedes the
    key's previous entry in O(1) (a version bump — the old tuple stays
    in the heap and is discarded when it reaches the top), so
    re-pricing a key costs one O(log n) push instead of a heap rebuild.
    Entries order by ``(time, seq)``; with ``seq`` chosen as a stable
    per-key index (the fluid simulator uses the flow's arrival index),
    ties resolve identically to a first-minimum linear scan in
    insertion order, which is what makes the heap a drop-in,
    bit-identical replacement for that scan.

    ``len()`` counts live entries only.  Stale tuples are bounded by
    the number of pushes, not keys, and are reclaimed as they surface.
    """

    __slots__ = ("_heap", "_current", "_ids", "_live")

    def __init__(self) -> None:
        self._heap: list = []
        self._current: dict = {}
        self._ids = itertools.count()
        self._live = 0

    def push(self, time: float, seq: int, key: Hashable) -> None:
        """Schedule (or re-price) ``key`` at ``time``."""
        entry = next(self._ids)
        if key not in self._current:
            self._live += 1
        self._current[key] = entry
        heapq.heappush(self._heap, (time, seq, entry, key))

    def invalidate(self, key: Hashable) -> None:
        """Drop ``key``'s live entry, if any (idempotent, O(1))."""
        if self._current.pop(key, None) is not None:
            self._live -= 1

    def peek(self) -> Optional[Tuple[float, int, Hashable]]:
        """Earliest live ``(time, seq, key)``, or None; prunes stale
        entries off the heap top as a side effect."""
        heap, current = self._heap, self._current
        while heap:
            time, seq, entry, key = heap[0]
            if current.get(key) == entry:
                return time, seq, key
            heapq.heappop(heap)
        return None

    def pop(self) -> Tuple[float, int, Hashable]:
        """Remove and return the earliest live ``(time, seq, key)``."""
        item = self.peek()
        if item is None:
            raise IndexError("pop from an empty CompletionQueue")
        heapq.heappop(self._heap)
        del self._current[item[2]]
        self._live -= 1
        return item

    def __len__(self) -> int:
        return self._live
