"""Slot-granularity Sirius simulator (validation of the epoch abstraction).

The main simulator (:mod:`repro.core.network`) advances epoch-by-epoch,
exploiting the schedule's guarantee that every pair connects once per
epoch.  This module simulates the *same* node state machine at
timeslot granularity instead: each slot, each uplink transmits to the
single destination the cyclic schedule (and hence AWGR physics) assigns
it, and deliveries land one slot later.  Protocol phases (grant
decisions, request generation) still run at epoch boundaries, as they
do in hardware — the piggybacked control plane completes once per
epoch.

Uses:

* **validation** — throughput and delivery totals must match the epoch
  simulator on identical workloads (asserted in the test suite), which
  justifies the epoch abstraction the benchmarks rely on;
* **resolution** — FCTs resolve to a slot rather than an epoch, which
  matters for flows of a few cells at low load.

The price is simulation cost: O(slots) instead of O(epochs) outer
iterations, so keep node counts small.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cell import Cell, Flow
from repro.core.network import SimulationResult, SiriusNetwork
from repro.core.schedule import SlotTiming


class SlotLevelSirius(SiriusNetwork):
    """Timeslot-granularity variant of :class:`SiriusNetwork`.

    Accepts the same construction parameters; only integer uplink
    multipliers are supported (fractional capacity alternation is an
    epoch-level modelling device).
    """

    def __init__(self, n_nodes: int, grating_ports: int, *,
                 uplink_multiplier: float = 1.0,
                 timing: Optional[SlotTiming] = None,
                 config=None, track_reorder: bool = False,
                 seed: int = 1) -> None:
        if abs(uplink_multiplier - round(uplink_multiplier)) > 1e-9:
            raise ValueError(
                "the slot-level simulator needs an integer uplink "
                f"multiplier, got {uplink_multiplier}"
            )
        super().__init__(
            n_nodes, grating_ports, uplink_multiplier=uplink_multiplier,
            timing=timing, config=config, track_reorder=track_reorder,
            seed=seed,
        )
        # Precompute per-slot connectivity: slot -> [(src, dst), ...].
        self._slot_pairs: List[List[Tuple[int, int]]] = []
        for slot in range(self.schedule.slots_per_epoch):
            pairs = [
                (uplink.node, self.schedule.destination(uplink, slot))
                for uplink in self.topology.iter_uplinks()
            ]
            self._slot_pairs.append(
                [(src, dst) for src, dst in pairs if src != dst]
            )

    # -- main loop -------------------------------------------------------------
    # Deliberately narrows the EpochEngine surface: the slot-level
    # validator models neither failures nor telemetry, and passing it
    # where those matter should fail loudly rather than silently no-op.
    # lint: ignore[N1302]
    def run(self, flows: Sequence[Flow], *,
            max_epochs: Optional[int] = None,
            drain_epochs: int = 50_000,
            check_invariants: bool = False) -> SimulationResult:
        slots_per_epoch = self.schedule.slots_per_epoch
        slot_dur = self.timing.slot_duration_s
        epoch_dur = self.schedule.epoch_duration_s
        payload_bits = self.timing.payload_bits
        flows = list(flows)
        for i in range(1, len(flows)):
            if flows[i].arrival_time < flows[i - 1].arrival_time:
                raise ValueError("flows must be sorted by arrival time")
        flow_by_id: Dict[int, Flow] = {}
        last_cell_bits: Dict[int, int] = {}
        offered = 0.0
        for flow in flows:
            flow.segment(payload_bits)
            flow_by_id[flow.flow_id] = flow
            last_cell_bits[flow.flow_id] = (
                flow.size_bits - (flow.n_cells - 1) * payload_bits
            )
            offered += flow.size_bits
        if max_epochs is None:
            last_arrival = flows[-1].arrival_time if flows else 0.0
            max_epochs = int(last_arrival / epoch_dur) + drain_epochs

        nodes = self.nodes
        pending = len(flows)
        delivered_bits = 0.0
        peak_reorder = 0
        next_flow = 0
        in_flight: List[Tuple[int, Cell, int]] = []
        epoch = 0
        grant_cap = (self.config.max_grants_per_destination
                     or self.config.queue_threshold)

        while epoch < max_epochs:
            # Epoch-boundary protocol phases (identical to the epoch sim).
            if not self.config.ideal:
                for node in nodes:
                    node.apply_grants_and_expiries()
            horizon = (epoch + 1) * epoch_dur
            while next_flow < len(flows) and (
                flows[next_flow].arrival_time < horizon
            ):
                flow = flows[next_flow]
                src_node = nodes[flow.src]
                for seq in range(flow.n_cells):
                    src_node.enqueue_local(
                        Cell(flow.flow_id, seq, flow.src, flow.dst)
                    )
                next_flow += 1
            if not self.config.ideal:
                for node in nodes:
                    for src, dst in node.decide_grants(grant_cap):
                        nodes[src].grant_inbox.append((node.node, dst))
                for node in nodes:
                    for intermediate, dst in node.generate_requests():
                        nodes[intermediate].request_inbox.append(
                            (node.node, dst)
                        )

            # Slot-by-slot transmission within the epoch.
            for slot in range(slots_per_epoch):
                now = epoch * epoch_dur + (slot + 1) * slot_dur
                # Deliver the previous slot's cells.
                if in_flight:
                    for recv, cell, sender in in_flight:
                        node = nodes[recv]
                        if cell.dst != recv:
                            node.receive_transit(cell)
                            continue
                        if sender == cell.src and not self.config.ideal:
                            node.note_direct_arrival(sender)
                        flow = flow_by_id[cell.flow_id]
                        if self.track_reorder:
                            node.reorder.accept(cell.flow_id, cell.seq)
                        if cell.seq == flow.n_cells - 1:
                            delivered_bits += last_cell_bits[cell.flow_id]
                        else:
                            delivered_bits += payload_bits
                        if flow.record_delivery(now - slot_dur):
                            pending -= 1
                            if self.track_reorder:
                                peak = node.reorder.peak_flow_cells
                                peak_reorder = max(peak_reorder, peak)
                                node.reorder.finish_flow(cell.flow_id)
                    in_flight = []
                # Transmit on this slot's physical connectivity.
                for src, dst in self._slot_pairs[slot]:
                    for cell in nodes[src].dequeue_for(dst, 1):
                        in_flight.append((dst, cell, src))

            if check_invariants:
                for node in nodes:
                    node.check_invariants()
            epoch += 1
            if pending == 0 and not in_flight and next_flow >= len(flows):
                break

        # Final delivery pass.
        if in_flight:
            now = epoch * epoch_dur
            for recv, cell, sender in in_flight:
                node = nodes[recv]
                if cell.dst != recv:
                    node.receive_transit(cell)
                    continue
                flow = flow_by_id[cell.flow_id]
                if self.track_reorder:
                    node.reorder.accept(cell.flow_id, cell.seq)
                if cell.seq == flow.n_cells - 1:
                    delivered_bits += last_cell_bits[cell.flow_id]
                else:
                    delivered_bits += payload_bits
                if flow.record_delivery(now):
                    pending -= 1

        duration = max(epoch, 1) * epoch_dur
        return SimulationResult(
            flows=flows,
            epochs=epoch,
            duration_s=duration,
            delivered_bits=delivered_bits,
            offered_bits=offered,
            reference_node_bandwidth_bps=self.reference_node_bandwidth_bps,
            n_nodes=self.topology.n_nodes,
            cell_bytes=self.timing.cell_bytes,
            peak_fwd_cells=max(n.peak_fwd_cells for n in nodes),
            peak_local_cells=max(n.peak_local_cells for n in nodes),
            peak_reorder_cells=peak_reorder,
            config=self.config,
        )
