"""Event-driven max-min-fair fluid simulator: the ESN (Ideal) baselines (§7).

The paper compares Sirius against *idealized* electrically-switched
networks: per-flow queues, back-pressure at every switch and packet
spraying over all paths of a folded Clos.  That idealization is
throughput-equivalent to max-min fair bandwidth sharing constrained
only by

* each node's transmit capacity,
* each node's receive capacity, and
* (for the oversubscribed variant) each pod's uplink/downlink capacity,

because a non-blocking fabric with perfect load balancing and lossless
back-pressure delivers exactly the max-min allocation over those edge
resources ("an upper bound on the performance achievable by any rate
control and routing protocol").  ESN-OSUB (Ideal) adds the pod
constraints with the 3:1 oversubscription factor.

The simulation is event-driven: flow rates are recomputed by
progressive filling (exact max-min) at every arrival/completion, and
time advances to the earlier of the next arrival and the earliest
completion under current rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cell import Flow
from repro.core.fastpath import resolve_fast_path
from repro.obs.observation import NULL_OBS, Observation
from repro.units import KILOBYTE, US


def pod_map_for(n_nodes: int, pod_size: int) -> List[int]:
    """Assign nodes to pods of ``pod_size`` consecutive nodes."""
    if pod_size <= 0:
        raise ValueError(f"pod size must be positive, got {pod_size}")
    if n_nodes % pod_size:
        raise ValueError(
            f"pod size {pod_size} must divide node count {n_nodes}"
        )
    return [node // pod_size for node in range(n_nodes)]


@dataclass
class FluidResult:
    """Outcome of a fluid simulation, mirroring
    :class:`repro.core.network.SimulationResult` where metrics overlap."""

    flows: List[Flow]
    duration_s: float
    delivered_bits: float
    offered_bits: float
    reference_node_bandwidth_bps: float
    n_nodes: int

    @property
    def normalized_goodput(self) -> float:
        capacity = self.duration_s * self.n_nodes * (
            self.reference_node_bandwidth_bps
        )
        return self.delivered_bits / capacity if capacity else 0.0

    @property
    def completed_flows(self) -> List[Flow]:
        return [f for f in self.flows if f.is_complete]

    def fcts(self, max_size_bits: Optional[float] = None,
             min_size_bits: Optional[float] = None) -> List[float]:
        out = []
        for flow in self.flows:
            if flow.completion_time is None:
                continue
            if max_size_bits is not None and flow.size_bits >= max_size_bits:
                continue
            if min_size_bits is not None and flow.size_bits < min_size_bits:
                continue
            out.append(flow.fct)
        return out

    def fct_percentile(self, percentile: float,
                       max_size_bits: Optional[float] = 100 * KILOBYTE
                       ) -> Optional[float]:
        fcts = sorted(self.fcts(max_size_bits=max_size_bits))
        if not fcts:
            return None
        if not 0 < percentile <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        index = min(len(fcts) - 1,
                    int(math.ceil(percentile / 100 * len(fcts))) - 1)
        return fcts[index]


class FluidNetwork:
    """Max-min fair fluid network over node (and optional pod) capacities.

    Parameters
    ----------
    n_nodes:
        Attached nodes.
    node_bandwidth_bps:
        Per-node transmit = receive capacity (``R``).
    pod_map:
        Optional node → pod assignment; with ``pod_bandwidth_bps`` this
        models aggregation-tier oversubscription (inter-pod flows also
        consume pod uplink/downlink capacity).
    pod_bandwidth_bps:
        Aggregate inter-pod capacity per pod in each direction.
    base_rtt_s:
        Fixed latency added to every flow's completion (propagation +
        store-and-forward through the hierarchy); keeps FCTs of tiny
        flows non-zero, as in any real Clos.  Default 2 us, matching
        the low-load 99p FCT of the paper's ESN (Ideal) in Fig 9a.
    fast_path:
        Select the event loop's execution strategy (see
        :mod:`repro.core.fastpath`): the fast path precomputes every
        flow's resource tuple and scans for the earliest completion
        with a keyed ``min``; the reference path recomputes per event.
        Both are bit-identical on any input.
    """

    def __init__(self, n_nodes: int, node_bandwidth_bps: float, *,
                 pod_map: Optional[Sequence[int]] = None,
                 pod_bandwidth_bps: Optional[float] = None,
                 base_rtt_s: float = 2 * US,
                 fast_path: Optional[bool] = None) -> None:
        if n_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {n_nodes}")
        if node_bandwidth_bps <= 0:
            raise ValueError("node bandwidth must be positive")
        if (pod_map is None) != (pod_bandwidth_bps is None):
            raise ValueError(
                "pod_map and pod_bandwidth_bps must be given together"
            )
        if pod_map is not None and len(pod_map) != n_nodes:
            raise ValueError("pod_map must assign every node")
        if base_rtt_s < 0:
            raise ValueError("base RTT cannot be negative")
        self.n_nodes = n_nodes
        self.node_bandwidth_bps = node_bandwidth_bps
        self.pod_map = list(pod_map) if pod_map is not None else None
        self.pod_bandwidth_bps = pod_bandwidth_bps
        self.base_rtt_s = base_rtt_s
        self.fast_path = resolve_fast_path(fast_path)

    # -- resource vocabulary -------------------------------------------------
    def _flow_resources(self, flow: Flow) -> Tuple:
        resources = [("tx", flow.src), ("rx", flow.dst)]
        if self.pod_map is not None:
            src_pod, dst_pod = self.pod_map[flow.src], self.pod_map[flow.dst]
            if src_pod != dst_pod:
                resources.append(("up", src_pod))
                resources.append(("down", dst_pod))
        return tuple(resources)

    def _capacity(self, resource: Tuple[str, int]) -> float:
        if resource[0] in ("tx", "rx"):
            return self.node_bandwidth_bps
        return float(self.pod_bandwidth_bps)

    # -- max-min allocation ------------------------------------------------------
    def maxmin_rates(self, active: Dict[int, Tuple],
                     ) -> Dict[int, float]:
        """Progressive-filling max-min rates for the active flow set.

        ``active`` maps flow id → resource tuple.  Returns flow id →
        rate (bits/second).
        """
        if not active:
            return {}
        unfrozen = set(active)
        members: Dict[Tuple, set] = {}
        for fid, resources in active.items():
            for res in resources:
                members.setdefault(res, set()).add(fid)
        cap_left = {res: self._capacity(res) for res in members}
        rates = {fid: 0.0 for fid in active}
        while unfrozen:
            delta = min(
                cap_left[res] / len(flows)
                for res, flows in members.items() if flows
            )
            saturated = []
            for res, flows in members.items():
                if not flows:
                    continue
                cap_left[res] -= delta * len(flows)
                # relative epsilon, not a unit  # lint: ignore[unit-literal]
                if cap_left[res] <= 1e-9 * self._capacity(res):
                    saturated.append(res)
            # every member gets the same delta: order cannot
            # affect the result  # lint: ignore[set-iteration]
            for fid in unfrozen:
                rates[fid] += delta
            frozen = set()
            for res in saturated:
                frozen |= members[res]
            if not frozen:
                # Numerical corner: freeze everything touching the min.
                frozen = set(unfrozen)
            for fid in frozen & unfrozen:
                for res in active[fid]:
                    members[res].discard(fid)
            unfrozen -= frozen
        return rates

    # -- simulation ----------------------------------------------------------
    def run(self, flows: Sequence[Flow], *,
            max_duration_s: Optional[float] = None,
            obs: Optional[Observation] = None) -> FluidResult:
        """Simulate the flow list (sorted by arrival) to completion.

        ``obs`` attaches a :class:`repro.obs.Observation`: flow
        arrival/completion trace events (the fluid simulator has no
        epochs, so events are stamped with the event index), a tracked
        ``fluid_active_flows`` gauge, the shared ``delivered_bits_total``
        counter and an ``advance``/``recompute`` wall-clock breakdown.
        """
        if obs is None:
            obs = NULL_OBS
        tracer = obs.tracer
        registry = obs.registry
        profiler = obs.profiler
        tracing = tracer.enabled
        metering = registry.enabled
        profiling = profiler.enabled
        if metering:
            delivered_counter = registry.counter(
                "delivered_bits_total", "application payload delivered"
            )
            event_counter = registry.counter(
                "fluid_events_total", "fluid events processed, by kind"
            )
            active_gauge = registry.gauge("fluid_active_flows", track=True)
        t_mark = profiler.start_run()

        flows = list(flows)
        for i in range(1, len(flows)):
            if flows[i].arrival_time < flows[i - 1].arrival_time:
                raise ValueError("flows must be sorted by arrival time")
        offered = sum(f.size_bits for f in flows)
        fast = self.fast_path
        n_flows = len(flows)
        remaining: Dict[int, float] = {}
        resources_of: Dict[int, Tuple] = {}
        flow_by_id = {f.flow_id: f for f in flows}
        # Fast path: the resource tuple of a flow depends only on its
        # endpoints, so compute them all up-front instead of per arrival.
        precomputed = (
            {f.flow_id: self._flow_resources(f) for f in flows}
            if fast else None
        )
        delivered = 0.0
        now = 0.0
        next_arrival_idx = 0
        event_index = 0
        rates: Dict[int, float] = {}
        inf = math.inf

        def recompute() -> None:
            nonlocal rates
            rates = self.maxmin_rates(resources_of)

        def completion_key(fid: int) -> float:
            # Keyed on the absolute completion instant (now + time to
            # drain), exactly the quantity the reference scan compares:
            # IEEE addition is monotonic but can collapse strict order
            # into ties, so keying on the drain time alone could pick a
            # different flow than the reference's first-minimum scan.
            rate = rates[fid]
            return now + remaining[fid] / rate if rate > 0 else inf

        if profiling:
            t_mark = profiler.lap("setup", t_mark)
        while True:
            # Next events: arrival vs earliest completion at current rates.
            next_arrival = (
                flows[next_arrival_idx].arrival_time
                if next_arrival_idx < n_flows else None
            )
            next_completion = None
            completing = None
            if fast:
                if rates:
                    # min() keeps the first minimum in insertion order —
                    # the same tie-break as the reference's strict-<
                    # scan over the same dict.
                    fid = min(rates, key=completion_key)
                    t = completion_key(fid)
                    if t != inf:
                        next_completion, completing = t, fid
            else:
                for fid, rate in rates.items():
                    if rate <= 0:
                        continue
                    t = now + remaining[fid] / rate
                    if next_completion is None or t < next_completion:
                        next_completion, completing = t, fid
            if next_arrival is None and next_completion is None:
                break
            if next_completion is None or (
                next_arrival is not None and next_arrival <= next_completion
            ):
                event_time, event = next_arrival, "arrival"
            else:
                event_time, event = next_completion, "completion"
            if max_duration_s is not None and event_time > max_duration_s:
                dt = max_duration_s - now
                truncated = 0.0
                for fid, rate in rates.items():
                    drained = min(remaining[fid], rate * dt)
                    remaining[fid] -= drained
                    truncated += drained
                delivered += truncated
                if metering and truncated:
                    delivered_counter.inc(truncated)
                now = max_duration_s
                break

            # Advance fluid state to the event time.
            dt = event_time - now
            if dt > 0:
                advanced = 0.0
                for fid, rate in rates.items():
                    if rate > 0:
                        drained = min(remaining[fid], rate * dt)
                        remaining[fid] -= drained
                        advanced += drained
                delivered += advanced
                if metering and advanced:
                    delivered_counter.inc(advanced)
            now = event_time
            if profiling:
                t_mark = profiler.lap("advance", t_mark)

            if tracing:
                tracer.at(event_index, now)
            if event == "arrival":
                flow = flows[next_arrival_idx]
                next_arrival_idx += 1
                remaining[flow.flow_id] = float(flow.size_bits)
                resources_of[flow.flow_id] = (
                    precomputed[flow.flow_id] if fast
                    else self._flow_resources(flow)
                )
                if tracing:
                    tracer.emit("flow.arrival", node=flow.src,
                                flow=flow.flow_id, dst=flow.dst)
            else:
                remaining.pop(completing, None)
                resources_of.pop(completing, None)
                flow = flow_by_id[completing]
                flow.n_cells = 1
                flow.record_delivery(now + self.base_rtt_s)
                if tracing:
                    tracer.emit("flow.completion", node=flow.dst,
                                flow=flow.flow_id)
            if metering:
                event_counter.inc(kind=event)
                active_gauge.set(len(resources_of), at=event_index)
            event_index += 1
            recompute()
            if profiling:
                t_mark = profiler.lap("recompute", t_mark)

        duration = max(now, 1e-12)
        if profiling:
            profiler.lap("finalize", t_mark)
            profiler.end_run()
        return FluidResult(
            flows=flows,
            duration_s=duration,
            delivered_bits=delivered,
            offered_bits=offered,
            reference_node_bandwidth_bps=self.node_bandwidth_bps,
            n_nodes=self.n_nodes,
        )
