"""Event-driven max-min-fair fluid simulator: the ESN (Ideal) baselines (§7).

The paper compares Sirius against *idealized* electrically-switched
networks: per-flow queues, back-pressure at every switch and packet
spraying over all paths of a folded Clos.  That idealization is
throughput-equivalent to max-min fair bandwidth sharing constrained
only by

* each node's transmit capacity,
* each node's receive capacity, and
* (for the oversubscribed variant) each pod's uplink/downlink capacity,

because a non-blocking fabric with perfect load balancing and lossless
back-pressure delivers exactly the max-min allocation over those edge
resources ("an upper bound on the performance achievable by any rate
control and routing protocol").  ESN-OSUB (Ideal) adds the pod
constraints with the 3:1 oversubscription factor.

The simulation is event-driven: flow rates are recomputed by
progressive filling (exact max-min) at every arrival/completion, and
time advances to the earlier of the next arrival and the earliest
completion under current rates.

Two event-loop strategies implement one semantics
(:func:`repro.core.backend.resolve_fluid_backend` picks between them):

* ``reference`` — per event, rebuild the progressive-filling state
  from scratch (:meth:`FluidNetwork.maxmin_rates`, the readable
  from-first-principles allocator) and scan every stored completion
  instant linearly.
* ``incremental`` (default) — persistent per-resource membership,
  counts and base saturation levels kept across events and updated
  only for the resources the arriving/completing flow touches, filling
  driven by a copy of a persistently maintained level heap instead of
  repeated full scans, and a heap-scheduled completion queue
  (:class:`repro.sim.engine.CompletionQueue`) with stale-entry
  invalidation — entries are re-pushed only for flows whose rate
  changed.

Both loops allocate with bottleneck water-filling over *saturation
levels* (the fill height ``base + residual/count`` at which a resource
pins its remaining members): the globally lowest level saturates
first, its unfrozen members freeze at that level, and each of their
other resources settles its residual to the new base.  In exact
arithmetic this is the same max-min allocation progressive filling
computes; :meth:`FluidNetwork.maxmin_rates` (the verbatim
progressive-filling allocator) is retained as the readable oracle the
equivalence suite pins both loops against, to relative tolerance.
Level-filling is what makes an incremental engine possible at all — a
level is untouched by a round's delta (it only moves when a count or
residual changes), so the persistent heap stays valid across events,
whereas every progressive-filling round perturbs every residual and
forces O(rounds × resources) work per event.

Both engines account for a flow lazily: its
``(remaining, rate, since)`` triple is settled only when its max-min
rate *value* changes, it completes, or the run truncates — never per
event — and both execute the same float operations in the same order,
so seeded runs are bit-identical field-for-field
(``tests/sim/test_fluid_equivalence.py`` proves it across pod maps,
simultaneous arrivals and truncation).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.backend import resolve_fluid_backend
from repro.core.cell import Flow
from repro.obs.observation import NULL_OBS, Observation
from repro.sim.engine import CompletionQueue
from repro.units import KILOBYTE, US


def pod_map_for(n_nodes: int, pod_size: int) -> List[int]:
    """Assign nodes to pods of ``pod_size`` consecutive nodes."""
    if pod_size <= 0:
        raise ValueError(f"pod size must be positive, got {pod_size}")
    if n_nodes % pod_size:
        raise ValueError(
            f"pod size {pod_size} must divide node count {n_nodes}"
        )
    return [node // pod_size for node in range(n_nodes)]


@dataclass
class FluidResult:
    """Outcome of a fluid simulation, mirroring
    :class:`repro.core.network.SimulationResult` where metrics overlap."""

    flows: List[Flow]
    duration_s: float
    delivered_bits: float
    offered_bits: float
    reference_node_bandwidth_bps: float
    n_nodes: int
    #: Arrival + completion events processed (the fluid analogue of the
    #: cell simulator's epoch count; drives ``events_per_s`` in bench
    #: records).
    events: int = 0

    @property
    def normalized_goodput(self) -> float:
        capacity = self.duration_s * self.n_nodes * (
            self.reference_node_bandwidth_bps
        )
        return self.delivered_bits / capacity if capacity else 0.0

    @property
    def completed_flows(self) -> List[Flow]:
        return [f for f in self.flows if f.is_complete]

    def fcts(self, max_size_bits: Optional[float] = None,
             min_size_bits: Optional[float] = None) -> List[float]:
        out = []
        for flow in self.flows:
            if flow.completion_time is None:
                continue
            if max_size_bits is not None and flow.size_bits >= max_size_bits:
                continue
            if min_size_bits is not None and flow.size_bits < min_size_bits:
                continue
            out.append(flow.fct)
        return out

    def fct_percentile(self, percentile: float,
                       max_size_bits: Optional[float] = 100 * KILOBYTE
                       ) -> Optional[float]:
        fcts = sorted(self.fcts(max_size_bits=max_size_bits))
        if not fcts:
            return None
        if not 0 < percentile <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        index = min(len(fcts) - 1,
                    int(math.ceil(percentile / 100 * len(fcts))) - 1)
        return fcts[index]


class FluidNetwork:
    """Max-min fair fluid network over node (and optional pod) capacities.

    Parameters
    ----------
    n_nodes:
        Attached nodes.
    node_bandwidth_bps:
        Per-node transmit = receive capacity (``R``).
    pod_map:
        Optional node → pod assignment; with ``pod_bandwidth_bps`` this
        models aggregation-tier oversubscription (inter-pod flows also
        consume pod uplink/downlink capacity).
    pod_bandwidth_bps:
        Aggregate inter-pod capacity per pod in each direction.
    base_rtt_s:
        Fixed latency added to every flow's completion (propagation +
        store-and-forward through the hierarchy); keeps FCTs of tiny
        flows non-zero, as in any real Clos.  Default 2 us, matching
        the low-load 99p FCT of the paper's ESN (Ideal) in Fig 9a.
    backend:
        Select the event loop's execution strategy (see the module
        docstring and :func:`repro.core.backend.resolve_fluid_backend`):
        ``incremental`` (default) keeps persistent max-min state and a
        completion heap; ``reference`` rebuilds everything per event.
        Both are bit-identical on any input.
    fast_path:
        Legacy boolean spelling of ``backend`` (``True`` →
        ``incremental``, ``False`` → ``reference``).
    """

    def __init__(self, n_nodes: int, node_bandwidth_bps: float, *,
                 pod_map: Optional[Sequence[int]] = None,
                 pod_bandwidth_bps: Optional[float] = None,
                 base_rtt_s: float = 2 * US,
                 backend: Optional[str] = None,
                 fast_path: Optional[bool] = None) -> None:
        if n_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {n_nodes}")
        if node_bandwidth_bps <= 0:
            raise ValueError("node bandwidth must be positive")
        if (pod_map is None) != (pod_bandwidth_bps is None):
            raise ValueError(
                "pod_map and pod_bandwidth_bps must be given together"
            )
        if pod_map is not None and len(pod_map) != n_nodes:
            raise ValueError("pod_map must assign every node")
        if base_rtt_s < 0:
            raise ValueError("base RTT cannot be negative")
        self.n_nodes = n_nodes
        self.node_bandwidth_bps = node_bandwidth_bps
        self.pod_map = list(pod_map) if pod_map is not None else None
        self.pod_bandwidth_bps = pod_bandwidth_bps
        self.base_rtt_s = base_rtt_s
        self.backend = resolve_fluid_backend(backend, fast_path)
        self.fast_path = self.backend != "reference"

    # -- resource vocabulary -------------------------------------------------
    def _flow_resources(self, flow: Flow) -> Tuple:
        resources = [("tx", flow.src), ("rx", flow.dst)]
        if self.pod_map is not None:
            src_pod, dst_pod = self.pod_map[flow.src], self.pod_map[flow.dst]
            if src_pod != dst_pod:
                resources.append(("up", src_pod))
                resources.append(("down", dst_pod))
        return tuple(resources)

    def _capacity(self, resource: Tuple[str, int]) -> float:
        if resource[0] in ("tx", "rx"):
            return self.node_bandwidth_bps
        return float(self.pod_bandwidth_bps)

    # -- max-min allocation ------------------------------------------------------
    def maxmin_rates(self, active: Dict[int, Tuple],
                     ) -> Dict[int, float]:
        """Progressive-filling max-min rates for the active flow set.

        ``active`` maps flow id → resource tuple.  Returns flow id →
        rate (bits/second).  This is the progressive-filling oracle:
        the readable from-first-principles allocator both event loops'
        level-filling (:meth:`_fill_levels` and its persistent-heap
        twin inside the incremental loop) is validated against —
        identical in exact arithmetic, within float tolerance in
        practice (``tests/sim/test_fluid_equivalence.py``).
        """
        if not active:
            return {}
        unfrozen = set(active)
        members: Dict[Tuple, set] = {}
        for fid, resources in active.items():
            for res in resources:
                members.setdefault(res, set()).add(fid)
        cap_left = {res: self._capacity(res) for res in members}
        rates = {fid: 0.0 for fid in active}
        while unfrozen:
            delta = min(
                cap_left[res] / len(flows)
                for res, flows in members.items() if flows
            )
            saturated = []
            for res, flows in members.items():
                if not flows:
                    continue
                cap_left[res] -= delta * len(flows)
                # relative epsilon, not a unit  # lint: ignore[unit-literal]
                if cap_left[res] <= 1e-9 * self._capacity(res):
                    saturated.append(res)
            # every member gets the same delta: order cannot
            # affect the result  # lint: ignore[set-iteration]
            for fid in unfrozen:
                rates[fid] += delta
            frozen = set()
            for res in saturated:
                frozen |= members[res]
            if not frozen:
                # Numerical corner: freeze everything touching the min.
                frozen = set(unfrozen)
            for fid in frozen & unfrozen:
                for res in active[fid]:
                    members[res].discard(fid)
            unfrozen -= frozen
        return rates

    def _fill_levels(self, active: Dict[int, Tuple]) -> Dict[int, float]:
        """Bottleneck water-filling over saturation levels, from scratch.

        Per step, the unsaturated resource with the lowest level
        ``base + residual/count`` (ties broken on the resource tuple)
        saturates: its unfrozen members freeze at that level, and each
        member's other resources settle — residual drops by
        ``(level - base) * count`` once per level, then the member
        count decrements.  Exact max-min, like :meth:`maxmin_rates`;
        the incremental loop computes the same float expressions over
        the same operands in the same order from its persistent state,
        which is what makes the two backends bit-identical.

        This is the reference implementation: member lists, counts and
        residuals are rebuilt from the active set on every call, and
        every step re-derives all levels with a full linear scan.
        """
        if not active:
            return {}
        members: Dict[Tuple, List[int]] = {}
        count: Dict[Tuple, int] = {}
        for fid, resources in active.items():
            for res in resources:
                fids = members.get(res)
                if fids is None:
                    members[res] = [fid]
                    count[res] = 1
                else:
                    fids.append(fid)
                    count[res] += 1
        residual = {res: self._capacity(res) for res in members}
        base = {res: 0.0 for res in members}
        done: Set[Tuple] = set()
        rates: Dict[int, float] = {}
        unfrozen = len(active)
        while unfrozen:
            best_level = None
            best_res = None
            for res, cnt in count.items():
                if not cnt or res in done:
                    continue
                level = base[res] + residual[res] / cnt
                if (best_level is None or level < best_level
                        or (level == best_level and res < best_res)):
                    best_level, best_res = level, res
            level, res = best_level, best_res
            done.add(res)
            for fid in members[res]:
                if fid in rates:
                    continue
                rates[fid] = level
                unfrozen -= 1
                for other in active[fid]:
                    if other in done or not count[other]:
                        continue
                    if base[other] != level:
                        residual[other] -= (level - base[other]) * count[other]
                        base[other] = level
                    count[other] -= 1
        return rates

    # -- simulation ----------------------------------------------------------
    def run(self, flows: Sequence[Flow], *,
            max_duration_s: Optional[float] = None,
            obs: Optional[Observation] = None) -> FluidResult:
        """Simulate the flow list (sorted by arrival) to completion.

        The caller's ``Flow`` objects are the accounting records: each
        completed flow is stamped with ``n_cells = 1`` and one recorded
        delivery (the fluid model has no cells, so a flow is a single
        indivisible unit of delivery), which sets ``completion_time``.
        The objects stay usable afterwards — FCT statistics read them
        in place, and :meth:`repro.core.cell.Flow.segment` may
        re-segment them for a later cell-level run.

        ``obs`` attaches a :class:`repro.obs.Observation`: flow
        arrival/completion trace events (the fluid simulator has no
        epochs, so events are stamped with the event index), a tracked
        ``fluid_active_flows`` gauge, the shared ``delivered_bits_total``
        counter and an ``advance``/``recompute``/``settle`` wall-clock
        breakdown (event selection, progressive filling, and lazy
        drain settlement for rate-changed flows, respectively).
        """
        if obs is None:
            obs = NULL_OBS
        profiler = obs.profiler
        profiling = profiler.enabled
        t_mark = profiler.start_run()

        flows = list(flows)
        for i in range(1, len(flows)):
            if flows[i].arrival_time < flows[i - 1].arrival_time:
                raise ValueError("flows must be sorted by arrival time")
        offered = sum(f.size_bits for f in flows)
        if profiling:
            t_mark = profiler.lap("setup", t_mark)
        if self.backend == "incremental":
            delivered, now, events = self._loop_incremental(
                flows, max_duration_s, obs, t_mark)
        else:
            delivered, now, events = self._loop_reference(
                flows, max_duration_s, obs, t_mark)
        duration = max(now, 1e-12)
        if profiling:
            profiler.lap("finalize", profiler.tick())
            profiler.end_run()
        return FluidResult(
            flows=flows,
            duration_s=duration,
            delivered_bits=delivered,
            offered_bits=offered,
            reference_node_bandwidth_bps=self.node_bandwidth_bps,
            n_nodes=self.n_nodes,
            events=events,
        )

    # Both loops below execute the same float operations in the same
    # order — the settle expressions and their iteration orders are
    # deliberately identical statement-for-statement, which is what
    # makes seeded runs bit-identical across backends.

    def _loop_reference(self, flows: List[Flow],
                        max_duration_s: Optional[float],
                        obs: Observation, t_mark: float,
                        ) -> Tuple[float, float, int]:
        """From-scratch loop: full refill and linear scans per event."""
        tracer, registry, profiler = obs.tracer, obs.registry, obs.profiler
        tracing, metering = tracer.enabled, registry.enabled
        profiling = profiler.enabled
        if metering:
            delivered_counter = registry.counter(
                "delivered_bits_total", "application payload delivered"
            )
            event_counter = registry.counter(
                "fluid_events_total", "fluid events processed, by kind"
            )
            active_gauge = registry.gauge("fluid_active_flows", track=True)

        flow_by_id = {f.flow_id: f for f in flows}
        n_flows = len(flows)
        resources_of: Dict[int, Tuple] = {}
        remaining: Dict[int, float] = {}
        rate: Dict[int, float] = {}
        since: Dict[int, float] = {}
        completion_at: Dict[int, float] = {}
        delivered = 0.0
        now = 0.0
        next_arrival_idx = 0
        event_index = 0
        inf = math.inf

        while True:
            next_arrival = (
                flows[next_arrival_idx].arrival_time
                if next_arrival_idx < n_flows else None
            )
            # Single pass, strict <: among bit-equal completion
            # instants the first (earliest-arrived) flow wins, the
            # same tie-break the incremental heap's (time, arrival)
            # key encodes.
            next_completion = None
            completing = None
            for fid, t in completion_at.items():
                if t is not inf and (next_completion is None
                                     or t < next_completion):
                    next_completion, completing = t, fid
            if next_arrival is None and next_completion is None:
                break
            if next_completion is None or (
                next_arrival is not None and next_arrival <= next_completion
            ):
                event_time, event = next_arrival, "arrival"
            else:
                event_time, event = next_completion, "completion"
            if max_duration_s is not None and event_time > max_duration_s:
                truncated = 0.0
                for fid in remaining:
                    drained = min(remaining[fid],
                                  rate[fid] * (max_duration_s - since[fid]))
                    remaining[fid] -= drained
                    truncated += drained
                delivered += truncated
                if metering and truncated:
                    delivered_counter.inc(truncated)
                now = max_duration_s
                break
            now = event_time
            if profiling:
                t_mark = profiler.lap("advance", t_mark)

            if tracing:
                tracer.at(event_index, now)
            if event == "arrival":
                flow = flows[next_arrival_idx]
                next_arrival_idx += 1
                fid = flow.flow_id
                resources_of[fid] = self._flow_resources(flow)
                remaining[fid] = float(flow.size_bits)
                rate[fid] = 0.0
                since[fid] = now
                completion_at[fid] = inf
                if tracing:
                    tracer.emit("flow.arrival", node=flow.src,
                                flow=fid, dst=flow.dst)
            else:
                fid = completing
                drained = remaining.pop(fid)
                delivered += drained
                if metering and drained:
                    delivered_counter.inc(drained)
                del resources_of[fid], rate[fid], since[fid]
                del completion_at[fid]
                flow = flow_by_id[fid]
                flow.n_cells = 1
                flow.record_delivery(now + self.base_rtt_s)
                if tracing:
                    tracer.emit("flow.completion", node=flow.dst, flow=fid)
            if metering:
                event_counter.inc(kind=event)
                active_gauge.set(len(resources_of), at=event_index)
            event_index += 1

            new_rates = self._fill_levels(resources_of)
            if profiling:
                t_mark = profiler.lap("recompute", t_mark)
            advanced = 0.0
            for fid, old in rate.items():
                new = new_rates[fid]
                if new == old:
                    continue
                # Update hysteresis (same relative epsilon as the
                # allocators' saturation threshold): level filling
                # perturbs every allocation by ulps each event, and
                # rescheduling a completion for a sub-1e-9 rate shift
                # would settle and re-queue every active flow on every
                # event.  The drift is bounded — the comparison is
                # always against the freshly computed allocation, so
                # accumulated change past the threshold updates.
                # relative epsilon, not a unit  # lint: ignore[unit-literal]
                if old > 0.0 and -1e-9 * old <= new - old <= 1e-9 * old:
                    continue
                left = remaining[fid]
                drained = min(left, old * (now - since[fid]))
                left -= drained
                advanced += drained
                remaining[fid] = left
                rate[fid] = new
                since[fid] = now
                completion_at[fid] = now + left / new if new > 0 else inf
            delivered += advanced
            if metering and advanced:
                delivered_counter.inc(advanced)
            if profiling:
                t_mark = profiler.lap("settle", t_mark)
        return delivered, now, event_index

    def _loop_incremental(self, flows: List[Flow],
                          max_duration_s: Optional[float],
                          obs: Observation, t_mark: float,
                          ) -> Tuple[float, float, int]:
        """Persistent-state loop: O(touched resources) index updates,
        counted refills and a heap-scheduled completion queue."""
        tracer, registry, profiler = obs.tracer, obs.registry, obs.profiler
        tracing, metering = tracer.enabled, registry.enabled
        profiling = profiler.enabled
        if metering:
            delivered_counter = registry.counter(
                "delivered_bits_total", "application payload delivered"
            )
            event_counter = registry.counter(
                "fluid_events_total", "fluid events processed, by kind"
            )
            active_gauge = registry.gauge("fluid_active_flows", track=True)

        flow_by_id = {f.flow_id: f for f in flows}
        n_flows = len(flows)
        # Persistent max-min state, updated only for the resources the
        # arriving/completing flow touches: ordered member maps (dict
        # keys, so deletions preserve the arrival order the reference
        # rebuild produces), member counts, capacities, and the base
        # level heap — one live ``(cap/count, res)`` entry per
        # resource, superseded entries invalidated by value against
        # ``base_level``.
        members: Dict[Tuple, Dict[int, None]] = {}
        count: Dict[Tuple, int] = {}
        cap0: Dict[Tuple, float] = {}
        base_level: Dict[Tuple, float] = {}
        base_heap: List[Tuple[float, Tuple]] = []
        resources_of: Dict[int, Tuple] = {}
        remaining: Dict[int, float] = {}
        rate: Dict[int, float] = {}
        since: Dict[int, float] = {}
        arrival_seq: Dict[int, int] = {}
        queue = CompletionQueue()
        capacity_of = self._capacity
        heappush, heappop = heapq.heappush, heapq.heappop
        delivered = 0.0
        now = 0.0
        next_arrival_idx = 0
        event_index = 0

        while True:
            next_arrival = (
                flows[next_arrival_idx].arrival_time
                if next_arrival_idx < n_flows else None
            )
            head = queue.peek()
            if next_arrival is None and head is None:
                break
            if head is None or (
                next_arrival is not None and next_arrival <= head[0]
            ):
                event_time, event = next_arrival, "arrival"
            else:
                event_time, event = head[0], "completion"
            if max_duration_s is not None and event_time > max_duration_s:
                truncated = 0.0
                for fid in remaining:
                    drained = min(remaining[fid],
                                  rate[fid] * (max_duration_s - since[fid]))
                    remaining[fid] -= drained
                    truncated += drained
                delivered += truncated
                if metering and truncated:
                    delivered_counter.inc(truncated)
                now = max_duration_s
                break
            now = event_time
            if profiling:
                t_mark = profiler.lap("advance", t_mark)

            if tracing:
                tracer.at(event_index, now)
            if event == "arrival":
                flow = flows[next_arrival_idx]
                fid = flow.flow_id
                arrival_seq[fid] = next_arrival_idx
                next_arrival_idx += 1
                resources = self._flow_resources(flow)
                resources_of[fid] = resources
                for res in resources:
                    c = count.get(res)
                    if c is None:
                        members[res] = {fid: None}
                        cap0[res] = capacity_of(res)
                        c = 1
                    else:
                        members[res][fid] = None
                        c += 1
                    count[res] = c
                    level = cap0[res] / c
                    base_level[res] = level
                    heappush(base_heap, (level, res))
                remaining[fid] = float(flow.size_bits)
                rate[fid] = 0.0
                since[fid] = now
                if tracing:
                    tracer.emit("flow.arrival", node=flow.src,
                                flow=fid, dst=flow.dst)
            else:
                fid = head[2]
                queue.pop()
                drained = remaining.pop(fid)
                delivered += drained
                if metering and drained:
                    delivered_counter.inc(drained)
                for res in resources_of[fid]:
                    del members[res][fid]
                    c = count[res] - 1
                    if c:
                        count[res] = c
                        level = cap0[res] / c
                        base_level[res] = level
                        heappush(base_heap, (level, res))
                    else:
                        del members[res], count[res], cap0[res]
                        del base_level[res]
                del resources_of[fid], rate[fid], since[fid]
                del arrival_seq[fid]
                flow = flow_by_id[fid]
                flow.n_cells = 1
                flow.record_delivery(now + self.base_rtt_s)
                if tracing:
                    tracer.emit("flow.completion", node=flow.dst, flow=fid)
            if metering:
                event_counter.inc(kind=event)
                active_gauge.set(len(resources_of), at=event_index)
            event_index += 1
            if len(base_heap) > len(base_level) + 64:
                # Superseded entries would be copied into (and popped
                # from) every filling below: rebuild from the live
                # levels, O(resources) amortized over ~16 events.
                base_heap = [(level, res)
                             for res, level in base_level.items()]
                heapq.heapify(base_heap)

            # Level filling from the persistent state: the same float
            # expressions as _fill_levels over the same operands, but
            # driven by a copy of the maintained base heap instead of
            # a full linear scan per saturation step.  Pops validate
            # against ``lvl`` (the live level per unsaturated
            # resource); saturated or emptied resources leave it, so
            # their stale heap entries mismatch and are skipped.
            unfrozen = len(resources_of)
            frozen: Dict[int, None] = {}
            changed: List[Tuple[int, int, float]] = []
            if unfrozen:
                heap = base_heap.copy()
                lvl = base_level.copy()
                # Per-resource working state [count, residual, base],
                # materialized lazily from the persistent index on
                # first touch — most fillings touch a fraction of the
                # live resources before every flow is frozen.
                state: Dict[Tuple, List] = {}
                while unfrozen:
                    level, res = heappop(heap)
                    if lvl.get(res) != level:
                        continue
                    del lvl[res]
                    touched: Dict[Tuple, None] = {}
                    for frozen_fid in members[res]:
                        if frozen_fid in frozen:
                            continue
                        frozen[frozen_fid] = None
                        unfrozen -= 1
                        old = rate[frozen_fid]
                        if level != old and not (
                            old > 0.0
                            # same relative epsilon as the reference
                            # loop  # lint: ignore[unit-literal]
                            and -1e-9 * old <= level - old <= 1e-9 * old
                        ):
                            changed.append(
                                (arrival_seq[frozen_fid], frozen_fid, level)
                            )
                        for other in resources_of[frozen_fid]:
                            if other not in lvl:
                                continue
                            s = state.get(other)
                            if s is None:
                                s = state[other] = [
                                    count[other], cap0[other], 0.0
                                ]
                            b = s[2]
                            if b != level:
                                s[1] = s[1] - (level - b) * s[0]
                                s[2] = level
                            c = s[0] - 1
                            if c:
                                s[0] = c
                                touched[other] = None
                            else:
                                del lvl[other]
                    # One push per touched resource, with its
                    # batch-final count — the value the reference
                    # scan would derive on its next pass.
                    for other in touched:
                        if other in lvl:
                            s = state[other]
                            next_level = level + s[1] / s[0]
                            lvl[other] = next_level
                            heappush(heap, (next_level, other))
            if profiling:
                t_mark = profiler.lap("recompute", t_mark)
            # Settle in arrival order (the reference iterates its
            # stored-rate dict, which is arrival-ordered), so the
            # drain accumulation below sums in the same order.
            changed.sort()
            advanced = 0.0
            for _, fid, new in changed:
                old = rate[fid]
                left = remaining[fid]
                drained = min(left, old * (now - since[fid]))
                left -= drained
                advanced += drained
                remaining[fid] = left
                rate[fid] = new
                since[fid] = now
                if new > 0:
                    queue.push(now + left / new, arrival_seq[fid], fid)
                else:
                    queue.invalidate(fid)
            delivered += advanced
            if metering and advanced:
                delivered_counter.inc(advanced)
            if profiling:
                t_mark = profiler.lap("settle", t_mark)
        return delivered, now, event_index
