"""Simulation substrates.

* :mod:`repro.sim.engine` — a minimal discrete-event simulation core
  (priority-queue event loop) used by the fluid simulator and the
  time-synchronization experiments.
* :mod:`repro.sim.fluid` — an event-driven max-min-fair fluid simulator
  implementing the paper's idealized electrical baselines, ESN (Ideal)
  and ESN-OSUB (Ideal) (§7).
"""

from repro.sim.engine import EventLoop, Event
from repro.sim.fluid import FluidNetwork, FluidResult, pod_map_for
from repro.sim.slotsim import SlotLevelSirius

__all__ = [
    "EventLoop",
    "Event",
    "FluidNetwork",
    "FluidResult",
    "pod_map_for",
    "SlotLevelSirius",
]
