"""Simulation substrates.

* :mod:`repro.sim.engine` — a minimal discrete-event simulation core:
  a priority-queue event loop (time-synchronization experiments,
  ad-hoc models) and the keyed completion queue behind the fluid
  simulator's incremental engine.
* :mod:`repro.sim.fluid` — an event-driven max-min-fair fluid simulator
  implementing the paper's idealized electrical baselines, ESN (Ideal)
  and ESN-OSUB (Ideal) (§7).
"""

from repro.sim.engine import CompletionQueue, EventLoop, Event
from repro.sim.fluid import FluidNetwork, FluidResult, pod_map_for
from repro.sim.slotsim import SlotLevelSirius

__all__ = [
    "CompletionQueue",
    "EventLoop",
    "Event",
    "FluidNetwork",
    "FluidResult",
    "pod_map_for",
    "SlotLevelSirius",
]
