"""Trace persistence: JSONL run logs and Chrome ``trace_event`` export.

Two on-disk formats, both stdlib-JSON only:

* **JSONL** (canonical) — one record per line: a ``meta`` header, then
  ``event`` / ``metric`` / ``profile`` records.  Streams, greps and
  diffs well; :func:`read_trace` reconstructs a :class:`RunTrace`.
* **Chrome trace_event** — the ``{"traceEvents": [...]}`` JSON that
  ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_ open
  directly: simulator events as instants on per-node tracks, tracked
  gauges as counter tracks, and profiler laps as duration slices.

:func:`load_any` sniffs the format so ``sirius-repro report`` accepts
either file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.events import Event
from repro.obs.observation import Observation
from repro.obs.profiling import PhaseProfiler
from repro.units import US

__all__ = [
    "RunTrace",
    "run_trace",
    "write_jsonl",
    "read_trace",
    "chrome_trace",
    "write_chrome_trace",
    "load_any",
]

#: JSONL header constants.
TRACE_FORMAT = "sirius-trace"
TRACE_VERSION = 1

#: Chrome pid lanes: simulated time vs simulator wall-clock.
_SIM_PID = 1
_PROFILE_PID = 2


@dataclass
class RunTrace:
    """Everything one run recorded, reconstructed from disk."""

    meta: Dict[str, object] = field(default_factory=dict)
    events: List[Event] = field(default_factory=list)
    metrics: List[Dict[str, object]] = field(default_factory=list)
    profile: Optional[PhaseProfiler] = None

    def metric(self, name: str,
               **labels) -> Optional[Dict[str, object]]:
        """The first sample of metric ``name`` matching ``labels``."""
        wanted = {k: str(v) for k, v in labels.items()}
        for sample in self.metrics:
            if sample.get("name") != name:
                continue
            have = dict(sample.get("labels", {}))
            if all(have.get(k) == v for k, v in wanted.items()):
                return sample
        return None

    def series(self, name: str) -> List[List[float]]:
        """Tracked points of gauge ``name`` (empty when untracked)."""
        sample = self.metric(name)
        if sample is None:
            return []
        return [list(point) for point in sample.get("points", ())]

    def event_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.type] = counts.get(event.type, 0) + 1
        return counts


def run_trace(obs: Observation,
              meta: Optional[Dict[str, object]] = None) -> RunTrace:
    """An in-memory :class:`RunTrace` of what ``obs`` recorded.

    The same view :func:`write_jsonl` + :func:`read_trace` round-trip
    through disk, without the round-trip — for rendering a report or a
    Chrome trace straight after a run.
    """
    header: Dict[str, object] = {}
    if meta:
        header.update(meta)
    if obs.tracer.dropped:
        header["events_dropped"] = obs.tracer.dropped
    return RunTrace(
        meta=header,
        events=list(obs.tracer.events),
        metrics=[dict(sample) for sample in obs.registry.collect()],
        profile=obs.profiler if obs.profiler.enabled else None,
    )


# --------------------------------------------------------------------------
# JSONL
# --------------------------------------------------------------------------
def write_jsonl(path: Union[str, Path], obs: Observation,
                meta: Optional[Dict[str, object]] = None) -> Path:
    """Write everything ``obs`` recorded as one JSONL file."""
    path = Path(path)
    header: Dict[str, object] = {
        "record": "meta",
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
    }
    if meta:
        header.update(meta)
    if obs.tracer.dropped:
        header["events_dropped"] = obs.tracer.dropped
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for event in obs.tracer.events:
            record = event.to_dict()
            record["record"] = "event"
            handle.write(json.dumps(record) + "\n")
        for sample in obs.registry.collect():
            record = dict(sample)
            record["record"] = "metric"
            handle.write(json.dumps(record) + "\n")
        if obs.profiler.enabled:
            record = obs.profiler.to_dict()
            record["record"] = "profile"
            handle.write(json.dumps(record) + "\n")
    return path


def read_trace(path: Union[str, Path]) -> RunTrace:
    """Reconstruct a :class:`RunTrace` from a JSONL run log."""
    trace = RunTrace()
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a JSONL trace record: {exc}"
                ) from exc
            kind = record.pop("record", None)
            if kind == "meta":
                if record.get("format") not in (None, TRACE_FORMAT):
                    raise ValueError(
                        f"{path}: unknown trace format {record.get('format')!r}"
                    )
                trace.meta = record
            elif kind == "event":
                trace.events.append(Event.from_dict(record))
            elif kind == "metric":
                trace.metrics.append(record)
            elif kind == "profile":
                trace.profile = PhaseProfiler.from_dict(record)
            else:
                raise ValueError(
                    f"{path}:{lineno}: unknown record kind {kind!r}"
                )
    return trace


# --------------------------------------------------------------------------
# Chrome trace_event
# --------------------------------------------------------------------------
def _label_suffix(labels: Dict[str, object]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def chrome_trace(trace: RunTrace) -> Dict[str, object]:
    """Convert a :class:`RunTrace` to the Chrome ``trace_event`` dict.

    Timestamps are microseconds (the format's unit): simulated time for
    protocol events and counter tracks, wall-clock for profiler laps.
    """
    records: List[Dict[str, object]] = [
        {"name": "process_name", "ph": "M", "pid": _SIM_PID,
         "args": {"name": "simulated time"}},
        {"name": "process_name", "ph": "M", "pid": _PROFILE_PID,
         "args": {"name": "simulator wall-clock"}},
    ]
    for event in trace.events:
        if event.type == "phase":
            continue  # wall-clock spans live on the profiler lane
        tid = event.node if event.node is not None else 0
        records.append({
            "name": event.type,
            "ph": "i",
            "s": "t",
            "ts": event.ts_s / US,
            "pid": _SIM_PID,
            "tid": tid,
            "args": {"epoch": event.epoch, **event.fields},
        })
    epoch_dur_s = float(trace.meta.get("epoch_duration_s", 0.0) or 0.0)
    for sample in trace.metrics:
        points = sample.get("points")
        if not points:
            continue
        name = str(sample["name"]) + _label_suffix(
            dict(sample.get("labels", {}))
        )
        for at, value in points:
            ts_s = at * epoch_dur_s if epoch_dur_s else at
            records.append({
                "name": name,
                "ph": "C",
                "ts": ts_s / US if epoch_dur_s else at,
                "pid": _SIM_PID,
                "tid": 0,
                "args": {"value": value},
            })
    if trace.profile is not None:
        records.extend(_profile_records(trace.profile))
    return {
        "traceEvents": records,
        "displayTimeUnit": "ns",
        "otherData": dict(trace.meta),
    }


def _profile_records(profile: PhaseProfiler) -> List[Dict[str, object]]:
    """Profiler laps as ``X`` (complete) events on the wall-clock lane."""
    records: List[Dict[str, object]] = []
    if profile.epoch_rows:
        cursor_s = 0.0
        for epoch, phase, seconds in profile.epoch_rows:
            records.append({
                "name": phase,
                "ph": "X",
                "ts": cursor_s / US,
                "dur": seconds / US,
                "pid": _PROFILE_PID,
                "tid": 0,
                "args": {"epoch": epoch},
            })
            cursor_s += seconds
    else:
        # Totals only: one slice per phase, laid end to end.
        cursor_s = 0.0
        for phase in sorted(profile.totals_s):
            seconds = profile.totals_s[phase]
            records.append({
                "name": phase,
                "ph": "X",
                "ts": cursor_s / US,
                "dur": seconds / US,
                "pid": _PROFILE_PID,
                "tid": 0,
                "args": {"laps": profile.counts.get(phase, 0)},
            })
            cursor_s += seconds
    return records


def write_chrome_trace(path: Union[str, Path], trace: RunTrace) -> Path:
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(trace)), encoding="utf-8")
    return path


# --------------------------------------------------------------------------
# format sniffing (for the report CLI)
# --------------------------------------------------------------------------
def load_any(path: Union[str, Path]) -> RunTrace:
    """Load a JSONL run log *or* a Chrome trace_event file."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict) and "traceEvents" in payload:
            return _from_chrome(payload)
    return read_trace(path)


def _from_chrome(payload: Dict[str, object]) -> RunTrace:
    """Partial inverse of :func:`chrome_trace` (enough for reports)."""
    trace = RunTrace(meta=dict(payload.get("otherData", {})))
    totals: Dict[str, float] = {}
    counter_points: Dict[str, List[List[float]]] = {}
    for record in payload.get("traceEvents", ()):  # type: ignore[union-attr]
        ph = record.get("ph")
        if ph == "i":
            trace.events.append(Event(
                type=str(record["name"]),
                epoch=int(record.get("args", {}).get("epoch", 0)),
                ts_s=float(record.get("ts", 0.0)) * US,
                node=(record.get("tid")
                      if record.get("tid", 0) != 0 else None),
                fields=dict(record.get("args", {})),
            ))
        elif ph == "X":
            name = str(record["name"])
            totals[name] = (totals.get(name, 0.0)
                            + float(record.get("dur", 0.0)) * US)
        elif ph == "C":
            name = str(record["name"])
            value = float(record.get("args", {}).get("value", 0.0))
            counter_points.setdefault(name, []).append(
                [float(record.get("ts", 0.0)) * US, value]
            )
    for name in sorted(counter_points):
        trace.metrics.append({
            "name": name, "type": "gauge", "labels": {},
            "points": counter_points[name],
            "value": counter_points[name][-1][1],
        })
    if totals:
        profile = PhaseProfiler()
        profile.totals_s = totals
        profile.total_run_s = sum(totals.values())
        trace.profile = profile
    return trace
