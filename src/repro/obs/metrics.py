"""Labelled metrics registry for the simulator stack.

Prometheus-shaped vocabulary (counters, gauges, histograms, each with
optional key=value labels) scaled down to a single-process simulator:
no wire format, no scrape loop, just in-memory instruments that
:meth:`repro.core.network.SiriusNetwork.run`, :mod:`repro.core.node`,
:mod:`repro.core.congestion`, :mod:`repro.core.failures` and
:mod:`repro.sim.fluid` publish into.

Two registries exist:

* :class:`MetricsRegistry` — records everything; ``snapshot()`` /
  ``collect()`` feed the exporters in :mod:`repro.obs.trace_io`.
* :class:`NullMetricsRegistry` — the near-zero-overhead default.  Its
  ``enabled`` flag is False, so instrumented hot paths skip metric
  construction entirely; the null instruments it hands out ignore
  every update, so un-gated call sites stay correct, just slower.

Gauges may be created with ``track=True``: every ``set(value, at=...)``
is then also appended to a per-labelset series, which is how the
:class:`repro.core.telemetry.Telemetry` compatibility view stores its
per-epoch samples.

For live streaming (:mod:`repro.serve`) the registry also supports
*delta* snapshots: every instrument counts its mutations, and
``snapshot(since=cursor)`` returns only the instruments touched since
the cursor was taken — tracked gauges further trim their ``points`` to
the ones appended since — so a periodic sampler does not re-copy every
histogram each tick.  Cursors are plain JSON-able dicts; ``{}`` means
"everything changed" (the first call of a subscription).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
]

#: Label sets are stored as sorted (key, value) tuples so that
#: ``inc(node=1, dst=2)`` and ``inc(dst=2, node=1)`` hit the same child.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_str(key: LabelKey) -> str:
    """Stable string form of a labelset (cursor dictionary key)."""
    return ",".join(f"{k}={v}" for k, v in key)


def _stable_sorted(mapping: Dict) -> List:
    """Sorted keys, tolerant of a writer thread inserting concurrently.

    A live registry is written by the simulation (executor) thread while
    the service sampler reads it from the event loop; a key insert during
    ``sorted(dict)`` raises ``RuntimeError: dictionary changed size``.
    Keys are only ever added, never removed, so retrying yields a valid
    (slightly newer) key snapshot.
    """
    for _ in range(4):
        try:
            return sorted(mapping)
        except RuntimeError:
            continue
    return sorted(list(mapping))


class _Instrument:
    """Shared machinery: name, help text and per-labelset storage."""

    kind = "instrument"

    def __init__(self, name: str, help: str = "") -> None:
        if not name:
            raise ValueError("metric name cannot be empty")
        self.name = name
        self.help = help
        #: Count of updates ever applied; the delta-snapshot change clock.
        self._mutations = 0

    @property
    def mutations(self) -> int:
        return self._mutations

    def label_sets(self) -> List[LabelKey]:
        raise NotImplementedError

    def collect(self) -> List[Dict[str, object]]:
        """Flat sample dicts for export (one per labelset)."""
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically-increasing count (cells sent, grants issued)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (amount={amount})"
            )
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount
        self._mutations += 1

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0)

    def label_sets(self) -> List[LabelKey]:
        return _stable_sorted(self._values)

    def collect(self) -> List[Dict[str, object]]:
        return [
            {"name": self.name, "type": self.kind,
             "labels": dict(key), "value": self._values[key]}
            for key in _stable_sorted(self._values)
        ]


class Gauge(_Instrument):
    """A value that can go up and down (queue occupancy, active flows).

    With ``track=True`` every ``set`` also appends to a per-labelset
    series of ``(at, value)`` points, turning the gauge into a sampled
    time series (the substrate of :class:`repro.core.telemetry.Telemetry`).
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "", *, track: bool = False) -> None:
        super().__init__(name, help)
        self.track = track
        self._values: Dict[LabelKey, float] = {}
        self._series: Dict[LabelKey, List[Tuple[float, float]]] = {}

    def set(self, value: float, at: Optional[float] = None, **labels) -> None:
        key = _label_key(labels)
        self._values[key] = value
        if self.track:
            self._series.setdefault(key, []).append(
                (at if at is not None else len(self._series.get(key, ())),
                 value)
            )
        self._mutations += 1

    def add(self, amount: float, **labels) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount
        self._mutations += 1

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0)

    def series(self, **labels) -> List[Tuple[float, float]]:
        """The tracked ``(at, value)`` points of one labelset."""
        return list(self._series.get(_label_key(labels), ()))

    def label_sets(self) -> List[LabelKey]:
        return _stable_sorted(self._values)

    def collect(self) -> List[Dict[str, object]]:
        samples, _counts = self.collect_window({})
        return samples

    def point_counts(self) -> Dict[str, int]:
        """Current per-labelset tracked-point counts (cursor state)."""
        if not self.track:
            return {}
        return {
            _label_str(key): len(self._series.get(key, ()))
            for key in _stable_sorted(self._values)
        }

    def collect_window(self, since_points: Dict[str, int],
                       ) -> Tuple[List[Dict[str, object]], Dict[str, int]]:
        """Samples plus per-labelset point counts, for delta snapshots.

        For a tracked gauge, ``since_points`` maps labelset strings to
        the number of points a previous snapshot already shipped; each
        returned sample then carries only the points appended since
        (with a ``points_offset`` so consumers can detect gaps).  The
        returned count map is the cursor state for the next window.
        Untracked gauges ignore ``since_points`` and return ``{}``.
        """
        out: List[Dict[str, object]] = []
        counts: Dict[str, int] = {}
        for key in _stable_sorted(self._values):
            sample: Dict[str, object] = {
                "name": self.name, "type": self.kind,
                "labels": dict(key), "value": self._values[key],
            }
            if self.track:
                series = self._series.get(key, [])
                # Capture the length once: the writer thread may append
                # while this runs, and the cursor must record exactly
                # what was shipped.
                n_points = len(series)
                label = _label_str(key)
                counts[label] = n_points
                start = min(int(since_points.get(label, 0)), n_points)
                sample["points"] = [list(p) for p in series[start:n_points]]
                if since_points:
                    sample["points_offset"] = start
            out.append(sample)
        return out, counts


#: Default histogram buckets: powers of two, apt for cell/queue counts.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)


class Histogram(_Instrument):
    """Bucketed distribution (per-epoch queue depth, grant latency)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help)
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = list(buckets)
        if ordered != sorted(ordered):
            raise ValueError(f"bucket bounds must be sorted, got {buckets}")
        self.buckets: Tuple[float, ...] = tuple(ordered)
        # per labelset: [bucket counts..., +Inf count], total, sum
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = [0] * (len(self.buckets) + 1)
            self._counts[key] = counts
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
        self._sums[key] = self._sums.get(key, 0.0) + value
        self._mutations += 1

    def count(self, **labels) -> int:
        return sum(self._counts.get(_label_key(labels), ()))

    def sum(self, **labels) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def quantile(self, q: float, **labels) -> Optional[float]:
        """Bucket-resolution quantile estimate (upper bound of the
        bucket holding the q-th observation); None when empty."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        counts = self._counts.get(_label_key(labels))
        if not counts or not sum(counts):
            return None
        target = q * sum(counts)
        running = 0
        for index, count in enumerate(counts):
            running += count
            if running >= target and count:
                if index < len(self.buckets):
                    return self.buckets[index]
                return float("inf")
        return float("inf")

    def label_sets(self) -> List[LabelKey]:
        return _stable_sorted(self._counts)

    def collect(self) -> List[Dict[str, object]]:
        return [
            {"name": self.name, "type": self.kind,
             "labels": dict(key),
             "buckets": list(self.buckets),
             "counts": list(self._counts[key]),
             "sum": self._sums.get(key, 0.0),
             "count": sum(self._counts[key])}
            for key in _stable_sorted(self._counts)
        ]


class MetricsRegistry:
    """Get-or-create home of every instrument in a run."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    # -- instrument factories (get-or-create, kind-checked) ----------------
    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "", *, track: bool = False) -> Gauge:
        gauge = self._get_or_create(Gauge, name, help, track=track)
        if track and not gauge.track:
            raise ValueError(
                f"gauge {name!r} already registered without track=True"
            )
        return gauge

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, cannot re-register as "
                    f"{cls.kind}"
                )
            return existing
        instrument = cls(name, help, **kwargs)
        self._instruments[name] = instrument
        return instrument

    # -- introspection / export --------------------------------------------
    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return _stable_sorted(self._instruments)

    def __iter__(self) -> Iterator[_Instrument]:
        for name in _stable_sorted(self._instruments):
            yield self._instruments[name]

    def __len__(self) -> int:
        return len(self._instruments)

    def collect(self) -> List[Dict[str, object]]:
        """Every sample of every instrument, sorted by metric name."""
        samples: List[Dict[str, object]] = []
        for instrument in self:
            samples.extend(instrument.collect())
        return samples

    def cursor(self) -> Dict[str, Dict[str, object]]:
        """The current change-clock position, as a JSON-able dict.

        Pass it back to :meth:`snapshot` (or :meth:`collect_delta`) to
        receive only what changed after this call.  ``{}`` is the
        "beginning of time" cursor: everything is considered changed.
        """
        _samples, state = self.collect_delta(None, samples_too=False)
        return state

    def collect_delta(self, since: Optional[Dict[str, Dict[str, object]]],
                      *, samples_too: bool = True,
                      ) -> Tuple[List[Dict[str, object]],
                                 Dict[str, Dict[str, object]]]:
        """Samples of instruments changed since ``since``, plus the new cursor.

        ``since=None`` (or ``{}``) ships everything.  Tracked gauges trim
        their ``points`` to those appended inside the window.  The
        mutation count is captured *before* collecting each instrument,
        so a concurrent writer can only cause an update to be shipped
        twice (at-least-once delivery), never skipped.
        """
        samples: List[Dict[str, object]] = []
        state: Dict[str, Dict[str, object]] = {}
        since = since or {}
        for name in _stable_sorted(self._instruments):
            instrument = self._instruments[name]
            mutations = instrument.mutations
            previous = since.get(name)
            entry: Dict[str, object] = {"m": mutations}
            if previous is not None and previous.get("m") == mutations:
                # Unchanged: carry the old point counts forward.
                if "p" in previous:
                    entry["p"] = dict(previous["p"])  # type: ignore[arg-type]
                state[name] = entry
                continue
            if isinstance(instrument, Gauge):
                if samples_too:
                    prev_points = (dict(previous.get("p", {}))
                                   if previous else {})
                    gauge_samples, counts = instrument.collect_window(
                        prev_points
                    )
                    samples.extend(gauge_samples)
                else:
                    counts = instrument.point_counts()
                if counts:
                    entry["p"] = counts
            elif samples_too:
                samples.extend(instrument.collect())
            state[name] = entry
        return samples, state

    def snapshot(self, since: Optional[Dict[str, Dict[str, object]]] = None,
                 ) -> Dict[str, object]:
        """JSON-ready view of the registry.

        Without ``since`` this is the legacy full snapshot
        (``{"metrics": [...]}``).  With a cursor (from a previous
        delta snapshot, or ``{}`` to start) it returns only changed
        instruments plus the next cursor:
        ``{"metrics": [...], "cursor": {...}}``.
        """
        if since is None:
            return {"metrics": self.collect()}
        samples, state = self.collect_delta(since)
        return {"metrics": samples, "cursor": state}


class _NullInstrument:
    """Accepts every update and records nothing."""

    def inc(self, amount: float = 1, **labels) -> None:
        pass

    def set(self, value: float, at: Optional[float] = None, **labels) -> None:
        pass

    def add(self, amount: float, **labels) -> None:
        pass

    def observe(self, value: float, **labels) -> None:
        pass

    def value(self, **labels) -> float:
        return 0

    def series(self, **labels) -> List[Tuple[float, float]]:
        return []


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """The no-op default: hands out inert instruments, records nothing.

    Instrumented code gates on :attr:`enabled` before building labels,
    so the disabled cost is one attribute load and branch; call sites
    that skip the gate still work — the null instrument swallows the
    update.
    """

    enabled = False

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "",
              *, track: bool = False) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def names(self) -> List[str]:
        return []

    def __iter__(self) -> Iterator[_Instrument]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def collect(self) -> List[Dict[str, object]]:
        return []

    def cursor(self) -> Dict[str, Dict[str, object]]:
        return {}

    def collect_delta(self, since=None, *, samples_too: bool = True):
        return [], {}

    def snapshot(self, since=None) -> Dict[str, object]:
        if since is None:
            return {"metrics": []}
        return {"metrics": [], "cursor": {}}


NULL_REGISTRY = NullMetricsRegistry()
