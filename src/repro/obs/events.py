"""Structured event tracing for the cell-level simulator.

A :class:`EventTracer` collects typed :class:`Event` records as a run
executes — cell movements, grant decisions, failure announcements,
epoch boundaries — that the exporters in :mod:`repro.obs.trace_io`
write to JSONL and Chrome ``trace_event`` files.

The simulator stamps the tracer's *position* (epoch, simulated time)
once per epoch with :meth:`EventTracer.at`; hot paths then emit events
without threading timestamps through every call.  The no-op default
(:data:`NULL_TRACER`) has ``enabled = False`` so instrumented hot paths
skip record construction entirely.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Union

__all__ = [
    "EVENT_TYPES",
    "Event",
    "EventTap",
    "EventTracer",
    "NullTracer",
    "NULL_TRACER",
]

#: The closed vocabulary of trace record types.  A closed set (rather
#: than free-form strings) keeps traces machine-readable: exporters and
#: the report renderer can switch on type without defensive parsing.
EVENT_TYPES = frozenset({
    # data plane
    "cell.enqueue",     # a cell entered a queue (queue=local|vq|fwd)
    "cell.dequeue",     # a cell left a node on a scheduled slot
    "cell.drop",        # cells lost/purged (count, reason)
    # control plane
    "grant.issued",     # an intermediate granted a request
    "grant.denied",     # the Q admission test / direct window refused
    # failures (§4.5)
    "failure.announce",  # datacenter-wide failure announcement
    "failure.recover",   # recovery announcement
    # run structure
    "epoch",             # epoch boundary
    "flow.arrival",      # a flow entered the system
    "flow.completion",   # a flow finished
    "phase",             # wall-clock profiling span (dur_s field)
})


class Event:
    """One structured trace record.

    ``epoch``/``ts_s`` are simulated time; ``fields`` carries the
    type-specific payload (queue name, flow id, drop reason, …).

    A ``__slots__`` class rather than a dataclass: a live-instrumented
    run constructs one of these per traced cell movement (hundreds of
    thousands per second), and the frozen-dataclass ``__init__`` was
    the single hottest line of the whole observation layer.
    """

    __slots__ = ("type", "epoch", "ts_s", "node", "fields")

    def __init__(self, type: str, epoch: int, ts_s: float,
                 node: Optional[int] = None,
                 fields: Optional[Dict[str, object]] = None) -> None:
        self.type = type
        self.epoch = epoch
        self.ts_s = ts_s
        self.node = node
        self.fields = {} if fields is None else fields

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.type == other.type and self.epoch == other.epoch
                and self.ts_s == other.ts_s and self.node == other.node
                and self.fields == other.fields)

    def __repr__(self) -> str:
        return (f"Event(type={self.type!r}, epoch={self.epoch!r}, "
                f"ts_s={self.ts_s!r}, node={self.node!r}, "
                f"fields={self.fields!r})")

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "type": self.type, "epoch": self.epoch, "ts_s": self.ts_s,
        }
        if self.node is not None:
            record["node"] = self.node
        if self.fields:
            record["fields"] = self.fields
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Event":
        return cls(
            type=str(record["type"]),
            epoch=int(record.get("epoch", 0)),
            ts_s=float(record.get("ts_s", 0.0)),
            node=record.get("node"),  # type: ignore[arg-type]
            fields=dict(record.get("fields", {})),  # type: ignore[arg-type]
        )


class EventTap:
    """A bounded live feed of one tracer's event stream.

    Created by :meth:`EventTracer.tap`.  The simulation thread pushes
    into a bounded deque; a consumer (the :mod:`repro.serve` sampler)
    periodically :meth:`drain`\\ s it.  When the consumer falls behind
    and the buffer is full, *new* events are counted in
    :attr:`dropped` and discarded — the push never blocks, so a slow
    observer can never stall the epoch loop.  Both ends rely on the
    GIL-atomicity of ``deque.append`` / ``popleft``, so no lock sits on
    the emit path.
    """

    def __init__(self, maxlen: int = 4096,
                 tracer: Optional["EventTracer"] = None) -> None:
        if maxlen < 1:
            raise ValueError(f"tap maxlen must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self.dropped = 0
        self._buffer: Deque[Event] = deque()
        self._tracer = tracer

    def __len__(self) -> int:
        return len(self._buffer)

    def push(self, event: Event) -> None:
        """Offer one event; drops (and counts) when the buffer is full."""
        if len(self._buffer) >= self.maxlen:
            self.dropped += 1
            return
        self._buffer.append(event)

    def drain(self, limit: Optional[int] = None) -> List[Event]:
        """Pop and return buffered events (oldest first)."""
        out: List[Event] = []
        while limit is None or len(out) < limit:
            try:
                out.append(self._buffer.popleft())
            except IndexError:
                break
        return out

    def close(self) -> None:
        """Detach from the tracer; further emits no longer reach this tap."""
        if self._tracer is not None:
            self._tracer.untap(self)
            self._tracer = None


class EventTracer:
    """Collects typed events, stamped with the current sim position.

    Parameters
    ----------
    max_events:
        Hard cap on retained events; once reached, further emits are
        counted in :attr:`dropped`, so tracing a long run degrades
        gracefully instead of exhausting memory.
    ring:
        Retention policy at the cap.  ``False`` (default, the historic
        behaviour): the list stops growing and *new* events are
        dropped.  ``True``: events live in a bounded ring
        (``collections.deque(maxlen=...)``) and the *oldest* event is
        evicted for each new one — the right mode for long-running
        service jobs, where the recent window matters and live
        consumers follow the stream through :meth:`tap`.
    """

    enabled = True

    def __init__(self, max_events: int = 1_000_000, *,
                 ring: bool = False) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.ring = ring
        self.events: Union[List[Event], Deque[Event]] = (
            deque(maxlen=max_events) if ring else []
        )
        self.dropped = 0
        self._epoch = 0
        self._ts_s = 0.0
        self._taps: List[EventTap] = []

    # -- position ----------------------------------------------------------
    def at(self, epoch: int, ts_s: float) -> None:
        """Set the (epoch, simulated-time) stamp for subsequent emits."""
        self._epoch = epoch
        self._ts_s = ts_s

    # -- emission ----------------------------------------------------------
    def emit(self, type: str, node: Optional[int] = None, **fields) -> None:
        if type not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {type!r}; known: {sorted(EVENT_TYPES)}"
            )
        full = len(self.events) >= self.max_events
        if full and not self.ring:
            self.dropped += 1
            return
        event = Event(type, self._epoch, self._ts_s, node, fields)
        if full:
            self.dropped += 1  # the deque evicts the oldest event
        self.events.append(event)
        for tap in self._taps:
            # Inlined tap.push(): this loop runs per traced cell
            # movement, and the extra method call was measurable in the
            # live-service overhead guard.
            if len(tap._buffer) < tap.maxlen:
                tap._buffer.append(event)
            else:
                tap.dropped += 1

    # -- live taps ---------------------------------------------------------
    def tap(self, maxlen: int = 4096) -> EventTap:
        """Attach a bounded live feed of subsequent emits."""
        tap = EventTap(maxlen, tracer=self)
        self._taps.append(tap)
        return tap

    def untap(self, tap: EventTap) -> None:
        if tap in self._taps:
            self._taps.remove(tap)

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def select(self, type: str) -> List[Event]:
        return [event for event in self.events if event.type == type]

    def counts_by_type(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.type] = counts.get(event.type, 0) + 1
        return counts


class NullTracer:
    """The no-op default; ``enabled`` is False so hot paths skip emits."""

    enabled = False
    events: List[Event] = []
    dropped = 0

    def at(self, epoch: int, ts_s: float) -> None:
        pass

    def emit(self, type: str, node: Optional[int] = None, **fields) -> None:
        pass

    def tap(self, maxlen: int = 4096) -> EventTap:
        """A detached tap: never fed, drains empty (interface parity)."""
        return EventTap(maxlen)

    def untap(self, tap: EventTap) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def select(self, type: str) -> List[Event]:
        return []

    def counts_by_type(self) -> Dict[str, int]:
        return {}


NULL_TRACER = NullTracer()
