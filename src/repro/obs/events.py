"""Structured event tracing for the cell-level simulator.

A :class:`EventTracer` collects typed :class:`Event` records as a run
executes — cell movements, grant decisions, failure announcements,
epoch boundaries — that the exporters in :mod:`repro.obs.trace_io`
write to JSONL and Chrome ``trace_event`` files.

The simulator stamps the tracer's *position* (epoch, simulated time)
once per epoch with :meth:`EventTracer.at`; hot paths then emit events
without threading timestamps through every call.  The no-op default
(:data:`NULL_TRACER`) has ``enabled = False`` so instrumented hot paths
skip record construction entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "EVENT_TYPES",
    "Event",
    "EventTracer",
    "NullTracer",
    "NULL_TRACER",
]

#: The closed vocabulary of trace record types.  A closed set (rather
#: than free-form strings) keeps traces machine-readable: exporters and
#: the report renderer can switch on type without defensive parsing.
EVENT_TYPES = frozenset({
    # data plane
    "cell.enqueue",     # a cell entered a queue (queue=local|vq|fwd)
    "cell.dequeue",     # a cell left a node on a scheduled slot
    "cell.drop",        # cells lost/purged (count, reason)
    # control plane
    "grant.issued",     # an intermediate granted a request
    "grant.denied",     # the Q admission test / direct window refused
    # failures (§4.5)
    "failure.announce",  # datacenter-wide failure announcement
    "failure.recover",   # recovery announcement
    # run structure
    "epoch",             # epoch boundary
    "flow.arrival",      # a flow entered the system
    "flow.completion",   # a flow finished
    "phase",             # wall-clock profiling span (dur_s field)
})


@dataclass(frozen=True)
class Event:
    """One structured trace record.

    ``epoch``/``ts_s`` are simulated time; ``fields`` carries the
    type-specific payload (queue name, flow id, drop reason, …).
    """

    type: str
    epoch: int
    ts_s: float
    node: Optional[int] = None
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "type": self.type, "epoch": self.epoch, "ts_s": self.ts_s,
        }
        if self.node is not None:
            record["node"] = self.node
        if self.fields:
            record["fields"] = self.fields
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Event":
        return cls(
            type=str(record["type"]),
            epoch=int(record.get("epoch", 0)),
            ts_s=float(record.get("ts_s", 0.0)),
            node=record.get("node"),  # type: ignore[arg-type]
            fields=dict(record.get("fields", {})),  # type: ignore[arg-type]
        )


class EventTracer:
    """Collects typed events, stamped with the current sim position.

    Parameters
    ----------
    max_events:
        Hard cap on retained events; once reached, further emits are
        counted in :attr:`dropped` but not stored, so tracing a long
        run degrades gracefully instead of exhausting memory.
    """

    enabled = True

    def __init__(self, max_events: int = 1_000_000) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.events: List[Event] = []
        self.dropped = 0
        self._epoch = 0
        self._ts_s = 0.0

    # -- position ----------------------------------------------------------
    def at(self, epoch: int, ts_s: float) -> None:
        """Set the (epoch, simulated-time) stamp for subsequent emits."""
        self._epoch = epoch
        self._ts_s = ts_s

    # -- emission ----------------------------------------------------------
    def emit(self, type: str, node: Optional[int] = None, **fields) -> None:
        if type not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {type!r}; known: {sorted(EVENT_TYPES)}"
            )
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            Event(type=type, epoch=self._epoch, ts_s=self._ts_s,
                  node=node, fields=fields)
        )

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def select(self, type: str) -> List[Event]:
        return [event for event in self.events if event.type == type]

    def counts_by_type(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.type] = counts.get(event.type, 0) + 1
        return counts


class NullTracer:
    """The no-op default; ``enabled`` is False so hot paths skip emits."""

    enabled = False
    events: List[Event] = []
    dropped = 0

    def at(self, epoch: int, ts_s: float) -> None:
        pass

    def emit(self, type: str, node: Optional[int] = None, **fields) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def select(self, type: str) -> List[Event]:
        return []

    def counts_by_type(self) -> Dict[str, int]:
        return {}


NULL_TRACER = NullTracer()
