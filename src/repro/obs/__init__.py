"""repro.obs — observability for the Sirius reproduction.

Sirius' §7 evaluation reports end-of-run aggregates; *operating* an
epoch-synchronous network (and optimizing its simulator) needs to see
inside a run.  This package provides the three instrument planes and
their exporters:

* :mod:`repro.obs.metrics` — a labelled metrics registry (counters /
  gauges / histograms, e.g. ``vq_cells{node=12}``) with a no-op default
  whose overhead the tier-1 suite bounds at < 5 %;
* :mod:`repro.obs.events` — a structured event tracer emitting typed
  records (cell enqueue/dequeue/drop, grant issued/denied, failure
  announce/recover, epoch boundaries);
* :mod:`repro.obs.profiling` — wall-clock phase timing of the simulator
  loop, whose per-phase totals sum to the measured run time;
* :mod:`repro.obs.trace_io` — JSONL run logs and Chrome ``trace_event``
  export (opens in ``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.report` — run-summary rendering (tables + ASCII
  sparklines) behind ``sirius-repro report`` / ``sirius-repro trace``.

Quickstart::

    from repro import SiriusNetwork
    from repro.obs import Observation, write_jsonl

    obs = Observation.recording()
    net = SiriusNetwork(8, 4)
    result = net.run(flows, obs=obs)
    write_jsonl("run.jsonl", obs, meta={"epochs": result.epochs})
    # sirius-repro report run.jsonl
    # sirius-repro trace run.jsonl -o run.trace.json
"""

from repro.obs.events import (
    EVENT_TYPES,
    Event,
    EventTap,
    EventTracer,
    NULL_TRACER,
    NullTracer,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
)
from repro.obs.observation import NULL_OBS, Observation
from repro.obs.profiling import NULL_PROFILER, NullProfiler, PhaseProfiler
from repro.obs.report import ascii_sparkline, format_table, render_report
from repro.obs.trace_io import (
    RunTrace,
    chrome_trace,
    load_any,
    read_trace,
    run_trace,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "EVENT_TYPES",
    "Event",
    "EventTap",
    "EventTracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "Observation",
    "NULL_OBS",
    "PhaseProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "RunTrace",
    "run_trace",
    "ascii_sparkline",
    "format_table",
    "render_report",
    "chrome_trace",
    "load_any",
    "read_trace",
    "write_chrome_trace",
    "write_jsonl",
]
