"""The observation bundle threaded through the simulator stack.

:class:`Observation` groups the three instrument planes — a metrics
registry, an event tracer and a phase profiler — behind one object that
:meth:`repro.core.network.SiriusNetwork.run` (and
:meth:`repro.sim.fluid.FluidNetwork.run`) accept as ``obs=``.  Each
plane defaults to its no-op implementation, so ``Observation()`` is
itself a no-op: passing it costs one attribute load and branch per
instrumented site (the tier-1 overhead test bounds this at < 5 % of
run wall-clock).  :meth:`Observation.recording` turns everything on.
"""

from __future__ import annotations

from time import monotonic
from typing import Optional, Sequence

from repro.obs.events import NULL_TRACER, EventTracer
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.profiling import NULL_PROFILER, PhaseProfiler

__all__ = ["Observation", "NULL_OBS"]


class Observation:
    """Registry + tracer + profiler, each independently optional.

    Parameters
    ----------
    registry:
        A :class:`repro.obs.metrics.MetricsRegistry`, or None for the
        no-op registry.
    tracer:
        A :class:`repro.obs.events.EventTracer`, or None for the no-op
        tracer.
    profiler:
        A :class:`repro.obs.profiling.PhaseProfiler`, or None for the
        no-op profiler.
    sample_every:
        Epoch period at which the network publishes queue-occupancy
        gauges into the registry (1 = every epoch).
    """

    def __init__(self, *,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[EventTracer] = None,
                 profiler: Optional[PhaseProfiler] = None,
                 sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError(
                f"sampling period must be >= 1, got {sample_every}"
            )
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.sample_every = sample_every

    @classmethod
    def recording(cls, *, sample_every: int = 1, per_epoch_profile: bool = False,
                  max_events: int = 1_000_000) -> "Observation":
        """All three planes live: full metrics, tracing and profiling."""
        return cls(
            registry=MetricsRegistry(),
            tracer=EventTracer(max_events=max_events),
            profiler=PhaseProfiler(per_epoch=per_epoch_profile),
            sample_every=sample_every,
        )

    @classmethod
    def live(cls, *, sample_every: int = 1,
             max_events: int = 65_536) -> "Observation":
        """The streaming-service bundle (:mod:`repro.serve`).

        Metrics plus a *ring* tracer: retained events are a bounded
        recent window (oldest evicted, :attr:`EventTracer.dropped`
        counted) and live consumers follow the stream through
        :meth:`EventTracer.tap`.  No profiler — a long-running service
        job has no single wall-clock breakdown to report.
        """
        return cls(
            registry=MetricsRegistry(),
            tracer=EventTracer(max_events=max_events, ring=True),
            sample_every=sample_every,
        )

    @property
    def enabled(self) -> bool:
        """True when any plane records (False for the no-op default)."""
        return (self.registry.enabled or self.tracer.enabled
                or self.profiler.enabled)

    # -- network-level publication ----------------------------------------
    def sample_network(self, epoch: int, nodes: Sequence,
                       in_flight: int, delivered_bits: float) -> None:
        """Publish one epoch's queue state into the registry.

        Called by the network loop at the ``sample_every`` cadence:
        aggregate occupancy series (tracked gauges, the substrate of
        run reports) plus per-node labelled gauges (``vq_cells{node=}``)
        for drill-down.
        """
        registry = self.registry
        local = vq = fwd = 0
        node_gauge_local = registry.gauge("local_cells", track=False)
        node_gauge_vq = registry.gauge("vq_cells", track=False)
        node_gauge_fwd = registry.gauge("fwd_cells", track=False)
        for node in nodes:
            local += node.local_cells
            vq += node.vq_cells
            fwd += node.fwd_cells
            node_gauge_local.set(node.local_cells, node=node.node)
            node_gauge_vq.set(node.vq_cells, node=node.node)
            node_gauge_fwd.set(node.fwd_cells, node=node.node)
        registry.gauge("net_local_cells", track=True).set(local, at=epoch)
        registry.gauge("net_vq_cells", track=True).set(vq, at=epoch)
        registry.gauge("net_fwd_cells", track=True).set(fwd, at=epoch)
        registry.gauge("net_in_flight_cells", track=True).set(
            in_flight, at=epoch
        )
        registry.gauge("net_backlog_cells", track=True).set(
            local + vq + fwd + in_flight, at=epoch
        )
        registry.gauge("net_delivered_bits", track=True).set(
            delivered_bits, at=epoch
        )
        self._sample_progress(registry, epoch)

    def _sample_progress(self, registry, epoch: int) -> None:
        """Per-run progress/heartbeat gauges for live observers.

        ``run_epoch`` is the simulation's position; ``run_heartbeat_s``
        is a wall-clock stamp proving the epoch loop is advancing (a
        stalled run keeps its last stamp, which is how the service
        distinguishes "slow" from "wedged").  Wall-clock never feeds
        back into simulated behaviour — it is observation only.
        """
        registry.gauge("run_epoch").set(epoch)
        registry.gauge("run_heartbeat_s").set(monotonic())

    def sample_network_slabs(self, epoch: int, local_depth, vq_depth,
                             fwd_depth, in_flight: int,
                             delivered_bits: float) -> None:
        """Publish one epoch's queue state from per-node depth slabs.

        The vectorized backend's counterpart to :meth:`sample_network`:
        the depth arguments are integer numpy arrays (one entry per
        node), so the aggregate occupancy series cost three array sums
        instead of a Python pass over every node object.  The per-node
        labelled gauges of :meth:`sample_network` are deliberately not
        published — materializing thousands of labelled samples per
        epoch is exactly the per-node work the slabs exist to avoid;
        use the ``fast`` backend for per-node drill-down.
        """
        registry = self.registry
        local = int(local_depth.sum())
        vq = int(vq_depth.sum())
        fwd = int(fwd_depth.sum())
        registry.gauge("net_local_cells", track=True).set(local, at=epoch)
        registry.gauge("net_vq_cells", track=True).set(vq, at=epoch)
        registry.gauge("net_fwd_cells", track=True).set(fwd, at=epoch)
        registry.gauge("net_in_flight_cells", track=True).set(
            in_flight, at=epoch
        )
        registry.gauge("net_backlog_cells", track=True).set(
            local + vq + fwd + in_flight, at=epoch
        )
        registry.gauge("net_delivered_bits", track=True).set(
            delivered_bits, at=epoch
        )
        self._sample_progress(registry, epoch)


#: The module-wide no-op bundle the simulators default to.
NULL_OBS = Observation()
