"""Run-summary rendering from saved traces.

Turns a :class:`repro.obs.trace_io.RunTrace` into the compact text
report behind ``sirius-repro report``: run metadata, event counts,
headline metrics, the wall-clock phase breakdown and an ASCII backlog
sparkline.  Everything renders from the trace file alone, so a report
can be produced long after (and far from) the run that wrote it.

:func:`ascii_sparkline` lives here (it is an observability renderer);
:mod:`repro.core.telemetry` re-exports it for compatibility.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.trace_io import RunTrace
from repro.units import US

__all__ = ["ascii_sparkline", "format_table", "render_report"]


def ascii_sparkline(values: Sequence[float], width: int = 60) -> str:
    """Compact ASCII rendering of a series (for benchmark logs).

    Values must be non-negative — the series this renders (queue
    occupancies, throughput) are counts, and a negative value would
    silently index the glyph ramp from the wrong end.
    """
    if not values:
        raise ValueError("cannot plot an empty series")
    if width < 1:
        raise ValueError("width must be positive")
    negative = [v for v in values if v < 0]
    if negative:
        raise ValueError(
            f"sparkline values must be non-negative, got {min(negative)}"
        )
    glyphs = " .:-=+*#%@"
    if len(values) > width:
        # Downsample by taking the max of each bucket (peaks matter).
        bucket = len(values) / width
        sampled = [
            max(values[int(k * bucket):max(int((k + 1) * bucket),
                                           int(k * bucket) + 1)])
            for k in range(width)
        ]
    else:
        sampled = list(values)
    top = max(sampled)
    if top == 0:
        return " " * len(sampled)
    scale = len(glyphs) - 1
    return "".join(glyphs[int(round(v / top * scale))] for v in sampled)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Minimal right-aligned text table (first column left-aligned)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells))
        if cells else len(headers[col])
        for col in range(len(headers))
    ]

    def render_row(row: Sequence[str]) -> str:
        parts = [row[0].ljust(widths[0])]
        parts.extend(
            row[col].rjust(widths[col]) for col in range(1, len(widths))
        )
        return "  ".join(parts).rstrip()

    lines = [render_row(list(headers))]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


# -- report sections --------------------------------------------------------
def _meta_section(meta: Dict[str, object]) -> List[str]:
    if not meta:
        return []
    lines = ["run"]
    skip = {"format", "version"}
    for key in sorted(meta):
        if key in skip:
            continue
        lines.append(f"  {key:<22}: {meta[key]}")
    return lines


def _event_section(trace: RunTrace) -> List[str]:
    counts = trace.event_counts()
    dropped = int(trace.meta.get("events_dropped", 0) or 0)
    if not counts and not dropped:
        return []
    rows = [(name, counts[name]) for name in sorted(counts)]
    table = format_table(("event", "count"), rows) if rows else ""
    lines = ["", "events", *("  " + line for line in table.splitlines())]
    if dropped:
        lines.append(
            f"  ({dropped:,} events dropped at the tracer's "
            f"retention cap — counts above are partial)"
        )
    return lines


#: Headline metrics surfaced in the report, in display order.
_HEADLINE_METRICS = (
    "delivered_bits_total",
    "cells_transmitted_total",
    "cells_dropped_total",
    "grants_issued_total",
    "grants_denied_total",
    "retransmitted_cells_total",
    "failed_flows_total",
    "failure_events_total",
)


def _metric_section(trace: RunTrace) -> List[str]:
    if not trace.metrics:
        return []
    rows: List[Tuple[str, object]] = []
    for name in _HEADLINE_METRICS:
        total = 0.0
        seen = False
        for sample in trace.metrics:
            if sample.get("name") == name and "value" in sample:
                total += float(sample["value"])
                seen = True
        if seen:
            value: object = int(total) if total == int(total) else total
            rows.append((name, value))
    if not rows:
        # Fall back to whatever scalar samples the trace holds.
        for sample in trace.metrics:
            if sample.get("type") == "counter":
                label = str(sample["name"])
                labels = dict(sample.get("labels", {}))
                if labels:
                    inner = ",".join(
                        f"{k}={v}" for k, v in sorted(labels.items())
                    )
                    label += "{" + inner + "}"
                rows.append((label, sample.get("value", 0)))
        rows = rows[:20]
    if not rows:
        return []
    table = format_table(("metric", "value"), rows)
    return ["", "metrics", *("  " + line for line in table.splitlines())]


def _phase_section(trace: RunTrace) -> List[str]:
    profile = trace.profile
    if profile is None or not profile.totals_s:
        return []
    rows = []
    total_s = profile.phases_total_s
    for entry in profile.breakdown():
        rows.append((
            entry["phase"],
            f"{float(entry['seconds']) / US:,.0f}",
            f"{float(entry['share']):.1%}",
            entry["laps"],
        ))
    table = format_table(("phase", "us", "share", "laps"), rows)
    lines = ["", "wall-clock phases",
             *("  " + line for line in table.splitlines())]
    if profile.total_run_s:
        lines.append(
            f"  phases cover {profile.coverage():.1%} of the "
            f"{profile.total_run_s / US:,.0f} us measured run"
        )
    else:
        lines.append(f"  phase total {total_s / US:,.0f} us")
    return lines


def _sparkline_section(trace: RunTrace) -> List[str]:
    lines: List[str] = []
    for name, label in (("net_backlog_cells", "backlog"),
                        ("net_fwd_cells", "fwd queues")):
        points = trace.series(name)
        values = [value for _at, value in points]
        if values and max(values) >= 0:
            lines.append(
                f"  {label:<10} peak {max(values):>8.0f}  "
                f"|{ascii_sparkline(values, width=48)}|"
            )
    if lines:
        return ["", "queue occupancy (cells, per sampled epoch)", *lines]
    return []


def render_report(trace: RunTrace, title: Optional[str] = None) -> str:
    """The full text report for one saved run trace."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.extend(_meta_section(trace.meta))
    lines.extend(_event_section(trace))
    lines.extend(_metric_section(trace))
    lines.extend(_phase_section(trace))
    lines.extend(_sparkline_section(trace))
    if not lines:
        return "trace is empty (no meta, events, metrics or profile)"
    return "\n".join(lines)
