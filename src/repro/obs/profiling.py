"""Wall-clock phase profiling for the simulators.

The epoch loop of :meth:`repro.core.network.SiriusNetwork.run` is a
fixed sequence of phases (deliver, resolve, admit, control, transmit,
observe); knowing where a run's wall-clock goes is the precondition for
any performance work.  :class:`PhaseProfiler` attributes time with a
*lap chain*: the instrumented loop takes one timestamp per phase
boundary and charges the elapsed interval to the phase that just ended,
so consecutive laps cover the run end-to-end — the per-phase totals sum
to (almost exactly) the measured run wall-clock, which the tier-1 test
asserts to within 10 %.

Timing uses ``time.perf_counter``; an injectable ``clock`` keeps the
profiler itself deterministic under test.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["PhaseProfiler", "NullProfiler", "NULL_PROFILER"]


class PhaseProfiler:
    """Accumulates per-phase wall-clock time across a run.

    Parameters
    ----------
    per_epoch:
        Also record one ``(epoch, phase, seconds)`` row per lap (memory
        grows with run length; off by default).  Per-epoch rows are
        what the Chrome-trace exporter turns into ``X`` duration
        events.
    clock:
        Monotonic time source, seconds; defaults to
        ``time.perf_counter``.
    """

    enabled = True

    def __init__(self, *, per_epoch: bool = False,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.per_epoch = per_epoch
        self._clock = clock
        self.totals_s: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self.epoch_rows: List[Tuple[int, str, float]] = []
        self.total_run_s = 0.0
        self._run_t0: Optional[float] = None
        self._epoch = 0

    # -- the lap chain ----------------------------------------------------
    def start_run(self) -> float:
        """Begin timing a run; returns the first lap mark."""
        self._run_t0 = self._clock()
        return self._run_t0

    def tick(self) -> float:
        """A fresh lap mark (for re-anchoring after untimed gaps)."""
        return self._clock()

    def set_epoch(self, epoch: int) -> None:
        self._epoch = epoch

    def lap(self, phase: str, t0: float) -> float:
        """Charge ``now - t0`` to ``phase``; returns ``now`` to chain."""
        now = self._clock()
        elapsed = now - t0
        self.totals_s[phase] = self.totals_s.get(phase, 0.0) + elapsed
        self.counts[phase] = self.counts.get(phase, 0) + 1
        if self.per_epoch:
            self.epoch_rows.append((self._epoch, phase, elapsed))
        return now

    def end_run(self) -> None:
        """Close the run's total; safe to call once per run."""
        if self._run_t0 is None:
            raise RuntimeError("end_run() without start_run()")
        self.total_run_s += self._clock() - self._run_t0
        self._run_t0 = None

    # -- analysis ----------------------------------------------------------
    @property
    def phases_total_s(self) -> float:
        return sum(self.totals_s.values())

    def breakdown(self) -> List[Dict[str, object]]:
        """Per-phase rows sorted by descending time share."""
        total = self.phases_total_s
        rows = []
        for phase in sorted(self.totals_s,
                            key=lambda p: -self.totals_s[p]):
            seconds = self.totals_s[phase]
            rows.append({
                "phase": phase,
                "seconds": seconds,
                "share": seconds / total if total else 0.0,
                "laps": self.counts.get(phase, 0),
            })
        return rows

    def coverage(self) -> float:
        """Fraction of the measured run wall-clock the laps explain."""
        if not self.total_run_s:
            return 0.0
        return self.phases_total_s / self.total_run_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "totals_s": dict(self.totals_s),
            "counts": dict(self.counts),
            "total_run_s": self.total_run_s,
            "epoch_rows": [list(row) for row in self.epoch_rows],
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "PhaseProfiler":
        profiler = cls()
        profiler.totals_s = {
            str(k): float(v)
            for k, v in dict(record.get("totals_s", {})).items()
        }
        profiler.counts = {
            str(k): int(v)
            for k, v in dict(record.get("counts", {})).items()
        }
        profiler.total_run_s = float(record.get("total_run_s", 0.0))
        profiler.epoch_rows = [
            (int(epoch), str(phase), float(seconds))
            for epoch, phase, seconds in record.get("epoch_rows", ())
        ]
        return profiler


class NullProfiler:
    """The no-op default: laps cost nothing because they never run —
    instrumented loops gate on ``enabled`` before taking timestamps."""

    enabled = False
    totals_s: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    epoch_rows: List[Tuple[int, str, float]] = []
    total_run_s = 0.0
    per_epoch = False

    def start_run(self) -> float:
        return 0.0

    def tick(self) -> float:
        return 0.0

    def set_epoch(self, epoch: int) -> None:
        pass

    def lap(self, phase: str, t0: float) -> float:
        return t0

    def end_run(self) -> None:
        pass

    @property
    def phases_total_s(self) -> float:
        return 0.0

    def breakdown(self) -> List[Dict[str, object]]:
        return []

    def coverage(self) -> float:
        return 0.0

    def to_dict(self) -> Dict[str, object]:
        return {"totals_s": {}, "counts": {}, "total_run_s": 0.0,
                "epoch_rows": []}


NULL_PROFILER = NullProfiler()
