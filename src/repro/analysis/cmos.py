"""CMOS scaling slowdown (paper Fig 2b).

Fig 2b plots normalized performance-per-area and performance-per-power
across transistor nodes (16 nm+ in 2014 down to 5 nm in 2022) against
the "ideal scaling" of doubling every generation.  The published curves
show gains falling well short of ideal below 7 nm — the reason electrical
switches (and especially their analog-heavy SERDES) will stop scaling
for free.

The numbers here digitize the figure's qualitative content: ideal
scaling doubles per generation; actual perf/area and perf/power track
ideal early and flatten at the last nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: (node label, year, perf/area, perf/power), normalized to the 16nm+ node.
CMOS_GENERATIONS: Tuple[Tuple[str, int, float, float], ...] = (
    ("16+", 2014, 1.0, 1.0),
    ("10", 2016, 1.9, 1.7),
    ("7", 2018, 3.3, 2.6),
    ("7+", 2020, 4.4, 3.2),
    ("5", 2022, 5.6, 3.7),
)


@dataclass(frozen=True)
class CmosScaling:
    """Access to the Fig 2b scaling dataset and derived gap metrics."""

    generations: Tuple[Tuple[str, int, float, float], ...] = CMOS_GENERATIONS

    def ideal_scaling(self, generation_index: int) -> float:
        """Ideal scaling: 2× per generation."""
        if generation_index < 0:
            raise ValueError("generation index cannot be negative")
        return 2.0 ** generation_index

    def series(self) -> List[Dict[str, object]]:
        """Rows of (node, year, perf/area, perf/power, ideal)."""
        return [
            {
                "node": node,
                "year": year,
                "perf_per_area": area,
                "perf_per_power": power,
                "ideal": self.ideal_scaling(index),
            }
            for index, (node, year, area, power) in enumerate(self.generations)
        ]

    def shortfall(self, metric: str = "perf_per_power") -> float:
        """Latest generation's gap below ideal (1 = fully ideal)."""
        rows = self.series()
        last = rows[-1]
        if metric not in ("perf_per_power", "perf_per_area"):
            raise ValueError(f"unknown metric {metric!r}")
        return last[metric] / last["ideal"]

    def generation_gains(self, metric: str = "perf_per_power"
                         ) -> List[float]:
        """Per-generation multiplicative gains (2.0 would be ideal)."""
        rows = self.series()
        gains = []
        for previous, current in zip(rows, rows[1:]):
            gains.append(current[metric] / previous[metric])
        return gains

    def scaling_has_slowed(self, threshold: float = 1.5) -> bool:
        """True when the newest generations gain less than ``threshold``×
        per step — the paper's premise that free scaling is ending."""
        gains = self.generation_gains()
        return all(g < threshold for g in gains[-2:])
