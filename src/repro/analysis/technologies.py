"""Optical switching technology survey (paper §2.2, §8).

The paper positions Sirius against the landscape of optical switching
technologies, which "vary in terms of switching time by almost six
orders of magnitude".  This module encodes that survey as structured
data plus the paper's workload-driven feasibility test: a technology
suits packet-granularity switching only if its reconfiguration time
keeps the switching overhead below 10 % on small-packet traffic
(< 9.2 ns for 576 B packets at 50 Gb/s, §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.units import MICROSECOND, MILLISECOND, NANOSECOND, PICOSECOND
from repro.workload.packets import max_guardband_for_overhead


@dataclass(frozen=True)
class SwitchTechnology:
    """One optical switching technology from the paper's survey."""

    name: str
    reconfiguration_s: float
    port_count: str
    maturity: str
    notes: str = ""

    def __post_init__(self) -> None:
        if self.reconfiguration_s <= 0:
            raise ValueError("reconfiguration time must be positive")

    def supports_packet_switching(self, packet_bytes: int = 576,
                                  max_overhead: float = 0.1) -> bool:
        """The §2.2 test: can it switch per small packet at < 10 % cost?"""
        budget = max_guardband_for_overhead(max_overhead, packet_bytes)
        return self.reconfiguration_s <= budget

    def overhead_at(self, packet_bytes: int = 576) -> float:
        """Switching overhead fraction on back-to-back small packets."""
        from repro.workload.packets import packet_duration_s

        return self.reconfiguration_s / packet_duration_s(packet_bytes)


#: The §8 survey, with the paper's cited figures.
TECHNOLOGIES: Tuple[SwitchTechnology, ...] = (
    SwitchTechnology(
        "3D MEMS optical circuit switch [10]", 25 * MILLISECOND,
        "hundreds", "commercial",
        "RotorNet/Helios-class; needs a separate packet network",
    ),
    SwitchTechnology(
        "liquid crystal [36]", 10 * MILLISECOND, "hundreds", "commercial",
    ),
    SwitchTechnology(
        "piezo-electric [56]", 1 * MILLISECOND, "hundreds", "commercial",
    ),
    SwitchTechnology(
        "free-space optics (ProjecToR) [29]", 12 * MICROSECOND,
        "datacenter-wide", "research prototype",
    ),
    SwitchTechnology(
        "Mach-Zehnder interferometer [41]", 10 * NANOSECOND,
        "2x2 cascaded", "research",
        "loss and noise accumulate with cascade depth",
    ),
    SwitchTechnology(
        "SOA space switch [9]", 5 * NANOSECOND, "2x2 cascaded", "research",
        "active core: power and synchronization inside the network",
    ),
    SwitchTechnology(
        "ring resonator [16]", 10 * NANOSECOND, "2x2 cascaded", "research",
    ),
    SwitchTechnology(
        "tunable laser + AWGR, stock driver [51]", 10 * MILLISECOND,
        "~100 wavelengths", "commercial parts",
        "wavelength switching with passive core, but slow tuning",
    ),
    SwitchTechnology(
        "tunable laser + AWGR, dampened driver (Sirius v1)",
        92 * NANOSECOND, "112 wavelengths", "this paper",
    ),
    SwitchTechnology(
        "disaggregated laser + AWGR (Sirius v2)", 912 * PICOSECOND,
        "scales with laser bank", "this paper",
        "passive core, span-independent sub-ns tuning",
    ),
)


def survey(packet_bytes: int = 576) -> List[dict]:
    """The survey as rows with the feasibility verdict per technology."""
    return [
        {
            "name": tech.name,
            "reconfiguration_s": tech.reconfiguration_s,
            "ports": tech.port_count,
            "maturity": tech.maturity,
            "packet_switching": tech.supports_packet_switching(packet_bytes),
            "overhead": tech.overhead_at(packet_bytes),
        }
        for tech in TECHNOLOGIES
    ]


def fastest_passive_core() -> SwitchTechnology:
    """The fastest technology with a passive core (Sirius v2)."""
    passive = [t for t in TECHNOLOGIES if "AWGR" in t.name]
    return min(passive, key=lambda t: t.reconfiguration_s)


def reconfiguration_spread_orders() -> float:
    """Orders of magnitude between slowest and fastest (§8: ~six)."""
    import math

    times = [t.reconfiguration_s for t in TECHNOLOGIES]
    return math.log10(max(times) / min(times))
