"""Network cost model (paper §5, Fig 6b).

The paper's cost comparison for a 4,000-rack datacenter:

* **ESN (non-blocking)** — four switch layers ($5,000 per 25.6 Tb/s
  switch, "optimistically"), 400 G transceivers at $1/Gbps, up to six
  transceivers on a path.
* **ESN-OSUB** — the same with 3:1 oversubscription *at the aggregation
  tier beyond the racks* (the rack uplink stage stays at full rate).
* **Sirius** — doubled tunable transceivers, passive gratings fabricated
  at a fraction of switch cost, lasers shared 8-ways.

Anchors reproduced (Fig 6b): Sirius costs ~28 % of non-blocking ESN
with gratings at 25 % of switch cost and tunable lasers at 3× fixed
(5× for the error bars); ~53 % of a 3:1 oversubscribed ESN; and ~55 %
of an electrically-switched Sirius variant (gratings replaced by
switches + transceivers).

As with the power model, the paper's exact bill of materials is not
published; the Sirius transceiver electronics cost is the calibrated
free parameter (see DESIGN.md §2).  All costs are expressed per 400 G
of rack uplink bandwidth, which cancels in every reported ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

#: §5 equipment constants.
SWITCH_COST_USD = 5000.0
SWITCH_PORTS = 64  # 64 x 400G = 25.6 Tbps
TRANSCEIVER_COST_PER_GBPS = 1.0  # $/Gbps -> $400 per 400G
GRATING_PORTS = 100


@dataclass(frozen=True)
class NetworkCostModel:
    """Cost per 400 G of rack uplink bandwidth for each design.

    Parameters
    ----------
    upper_switch_layers:
        Electrical switch layers above the racks in the ESN (3 for the
        paper's four-layer network counting the ToR).
    sirius_electronics_usd:
        Burst-mode transceiver electronics per 400 G-equivalent of
        tunable uplinks (calibrated: $165).
    fixed_laser_cost_usd:
        Cost of fixed-wavelength lasers per 400 G-equivalent ($40).
    laser_sharing:
        Channels sharing one tunable laser (§4.5: 8).
    lb_multiplier:
        Uplink doubling for load-balanced routing.
    """

    upper_switch_layers: int = 3
    switch_cost_usd: float = SWITCH_COST_USD
    switch_ports: int = SWITCH_PORTS
    transceiver_cost_usd: float = 400.0 * TRANSCEIVER_COST_PER_GBPS
    grating_ports: int = GRATING_PORTS
    sirius_electronics_usd: float = 165.0
    fixed_laser_cost_usd: float = 40.0
    laser_sharing: int = 8
    lb_multiplier: float = 2.0
    #: Plain short-reach fixed-wavelength transceiver (no burst-mode
    #: electronics, no tunability) used by the electrical Sirius variant.
    fixed_transceiver_cost_usd: float = 136.0

    # -- ESN ------------------------------------------------------------------
    @property
    def switch_port_cost(self) -> float:
        """Cost of one 400 G switch port."""
        return self.switch_cost_usd / self.switch_ports

    def esn_cost(self, oversubscription: float = 1.0) -> float:
        """ESN cost per 400 G of rack uplink bandwidth.

        Composition per uplink: the rack-to-aggregation transceiver
        stage (2 transceivers, never oversubscribed), plus
        ``upper_switch_layers`` of switching (2 ports each crossing) and
        the remaining transceiver stages, all divided by the
        oversubscription ratio.
        """
        if oversubscription < 1:
            raise ValueError("oversubscription must be >= 1")
        rack_stage = 2 * self.transceiver_cost_usd
        upper_transceivers = 2 * (self.upper_switch_layers - 1) * (
            self.transceiver_cost_usd
        )
        upper_switching = 2 * self.upper_switch_layers * self.switch_port_cost
        return rack_stage + (upper_transceivers + upper_switching) / (
            oversubscription
        )

    # -- Sirius ------------------------------------------------------------------
    def sirius_transceiver_cost(self, laser_overhead: float) -> float:
        """One tunable 400 G-equivalent transceiver at a laser cost factor."""
        if laser_overhead < 1:
            raise ValueError("laser overhead must be >= 1")
        laser_share = (
            self.fixed_laser_cost_usd * laser_overhead / self.laser_sharing
        )
        return self.sirius_electronics_usd + laser_share

    def grating_port_cost(self, grating_cost_fraction: float) -> float:
        """Cost of one grating port at a given fraction of switch cost."""
        if not 0 < grating_cost_fraction <= 1:
            raise ValueError("grating cost fraction must be in (0, 1]")
        grating_cost = grating_cost_fraction * self.switch_cost_usd
        return grating_cost / self.grating_ports

    def sirius_cost(self, grating_cost_fraction: float = 0.25,
                    laser_overhead: float = 3.0) -> float:
        """Sirius cost per 400 G of (useful) rack uplink bandwidth.

        2 transceivers per path and 2 grating-port uses (input at the
        source side, output at the destination side), all multiplied by
        the load-balancing uplink doubling.
        """
        per_path = (
            2 * self.sirius_transceiver_cost(laser_overhead)
            + 2 * self.grating_port_cost(grating_cost_fraction)
        )
        return self.lb_multiplier * per_path

    def sirius_electrical_variant_cost(self) -> float:
        """Sirius topology with gratings swapped for electrical switches.

        Keeps Sirius' flat routing but replaces each grating with an
        electrical switch plus a transceiver on every switch port (§5's
        last comparison).  Transceivers are fixed-wavelength.
        """
        fixed_transceiver = self.fixed_transceiver_cost_usd
        per_path = (
            2 * fixed_transceiver        # node-side transceivers
            + 2 * self.switch_port_cost  # switch crossing
            + 2 * fixed_transceiver      # switch-side transceivers
        )
        return self.lb_multiplier * per_path

    # -- figure series ------------------------------------------------------------
    def ratio_vs_esn(self, grating_cost_fraction: float,
                     laser_overhead: float = 3.0,
                     oversubscription: float = 1.0) -> float:
        return self.sirius_cost(grating_cost_fraction, laser_overhead) / (
            self.esn_cost(oversubscription)
        )

    def fig6b_series(self, fractions: Sequence[float] = (
            0.05, 0.10, 0.25, 0.50, 0.75, 1.0),
            laser_overhead: float = 3.0) -> List[Dict[str, float]]:
        """The Fig 6b series: grating cost fraction → cost ratios."""
        return [
            {
                "grating_cost_fraction": g,
                "vs_nonblocking": self.ratio_vs_esn(g, laser_overhead),
                "vs_oversubscribed": self.ratio_vs_esn(
                    g, laser_overhead, oversubscription=3.0
                ),
                "vs_nonblocking_5x_laser": self.ratio_vs_esn(g, 5.0),
            }
            for g in fractions
        ]

    def headline_ratios(self) -> Dict[str, float]:
        """The §5 text anchors: 28 %, 53 % and 55 %."""
        return {
            "vs_nonblocking": self.ratio_vs_esn(0.25, 3.0),
            "vs_oversubscribed": self.ratio_vs_esn(0.25, 3.0, 3.0),
            "vs_electrical_variant": (
                self.sirius_cost(0.25, 3.0)
                / self.sirius_electrical_variant_cost()
            ),
        }
