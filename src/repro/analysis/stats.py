"""Shared statistics helpers for the simulation benchmarks."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (``pct`` in (0, 100]) of a sequence."""
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0 < pct <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {pct}")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, int(math.ceil(pct / 100 * len(ordered))) - 1)
    return ordered[rank]


def summarize_fcts(fcts: Iterable[float]) -> Dict[str, Optional[float]]:
    """Mean / median / p99 / max of a flow-completion-time population."""
    values: List[float] = list(fcts)
    if not values:
        return {"count": 0, "mean": None, "p50": None, "p99": None,
                "max": None}
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "p50": percentile(values, 50),
        "p99": percentile(values, 99),
        "max": max(values),
    }


def cdf_points(values: Sequence[float]) -> List[tuple]:
    """Empirical CDF as ``(value, cumulative_fraction)`` points."""
    if not values:
        raise ValueError("cannot build a CDF of no values")
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (ratio aggregation)."""
    if not values:
        raise ValueError("cannot average no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
