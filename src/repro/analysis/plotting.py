"""Terminal plotting for benchmark logs.

Renders multi-series line charts as ASCII so the benchmark harness can
show figure *shapes* (who wins, where curves cross) directly in the
``bench_output.txt`` log, next to the numeric tables.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

_MARKERS = "ox+*#@%&"


def ascii_chart(series: Dict[str, Sequence[Tuple[float, float]]], *,
                width: int = 64, height: int = 16,
                logy: bool = False,
                title: Optional[str] = None) -> str:
    """Render ``{label: [(x, y), ...]}`` as an ASCII line chart.

    Each series gets a marker from a fixed cycle; the legend maps
    markers to labels.  ``logy`` plots log10(y) (zeros clamped).
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 4:
        raise ValueError("chart too small to draw")
    points_by_label = {
        label: [(float(x), float(y)) for x, y in points]
        for label, points in series.items()
    }
    if any(not points for points in points_by_label.values()):
        raise ValueError("every series needs at least one point")

    def transform(y: float) -> float:
        if not logy:
            return y
        return math.log10(max(y, 1e-30))

    xs = [x for pts in points_by_label.values() for x, _y in pts]
    ys = [transform(y) for pts in points_by_label.values() for _x, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, points) in enumerate(points_by_label.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in points:
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((transform(y) - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    y_top = f"{(10 ** y_hi if logy else y_hi):.3g}"
    y_bot = f"{(10 ** y_lo if logy else y_lo):.3g}"
    label_width = max(len(y_top), len(y_bot))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = y_top.rjust(label_width)
        elif row_index == height - 1:
            prefix = y_bot.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    x_axis = (" " * label_width + "  " + f"{x_lo:.3g}"
              + f"{x_hi:.3g}".rjust(width - len(f"{x_lo:.3g}")))
    lines.append(x_axis)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}"
        for i, label in enumerate(points_by_label)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)
