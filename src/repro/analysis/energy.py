"""Energy-per-bit accounting: simulation results × power models (§5).

Combines a simulation's delivered traffic with the §5 power models to
report energy per delivered bit — the metric that ultimately decides
which network an operator builds.  The paper's headline translates to:
Sirius moves the same bits for roughly a quarter of the energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.power import NetworkPowerModel, SiriusPowerModel
from repro.units import PICOJOULE, TBPS


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting of one simulated run on one network design."""

    delivered_bits: float
    duration_s: float
    network_power_w: float

    def __post_init__(self) -> None:
        if self.delivered_bits < 0 or self.duration_s <= 0:
            raise ValueError("need non-negative bits and positive duration")
        if self.network_power_w < 0:
            raise ValueError("power cannot be negative")

    @property
    def energy_j(self) -> float:
        """Total network energy over the run (the network idles at full
        power — switches and lasers do not sleep per-packet)."""
        return self.network_power_w * self.duration_s

    @property
    def picojoules_per_bit(self) -> float:
        if self.delivered_bits == 0:
            return float("inf")
        return self.energy_j / self.delivered_bits / PICOJOULE


def sirius_energy(result, laser_overhead: float = 3.0,
                  model: Optional[SiriusPowerModel] = None) -> EnergyReport:
    """Energy report of a Sirius :class:`SimulationResult`."""
    model = model or SiriusPowerModel()
    aggregate_tbps = (
        result.n_nodes * result.reference_node_bandwidth_bps / TBPS
    )
    # power_per_tbps is per bisection Tbps (= aggregate/2).
    power = model.power_per_tbps(laser_overhead) * aggregate_tbps / 2.0
    return EnergyReport(
        delivered_bits=result.delivered_bits,
        duration_s=result.duration_s,
        network_power_w=power,
    )


def esn_energy(result, n_nodes_at_scale: int = 65536,
               model: Optional[NetworkPowerModel] = None) -> EnergyReport:
    """Energy report of the same run carried by an ESN of equal bandwidth.

    The scale tax is evaluated at ``n_nodes_at_scale`` (a large
    datacenter); the simulated cluster inherits that W/Tbps figure.
    """
    model = model or NetworkPowerModel()
    aggregate_tbps = (
        result.n_nodes * result.reference_node_bandwidth_bps / TBPS
    )
    power = model.power_per_tbps(n_nodes_at_scale) * aggregate_tbps / 2.0
    return EnergyReport(
        delivered_bits=result.delivered_bits,
        duration_s=result.duration_s,
        network_power_w=power,
    )


def energy_comparison(result, laser_overhead: float = 3.0
                      ) -> Dict[str, float]:
    """Side-by-side pJ/bit for Sirius vs an equal-bandwidth ESN."""
    sirius = sirius_energy(result, laser_overhead)
    esn = esn_energy(result)
    return {
        "sirius_pj_per_bit": sirius.picojoules_per_bit,
        "esn_pj_per_bit": esn.picojoules_per_bit,
        "ratio": (
            sirius.picojoules_per_bit / esn.picojoules_per_bit
            if esn.picojoules_per_bit else float("inf")
        ),
    }
