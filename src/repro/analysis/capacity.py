"""Datacenter traffic vs switch-capacity growth trends (paper Fig 1).

Fig 1 contrasts two exponentials on a log axis:

* **datacenter network capacity (and traffic)** doubling roughly every
  year [70], reaching the ideal of ~100 Pbps for a large datacenter
  around 2020; and
* **electrical switch capacity** doubling every two years (the
  "Moore's law for networking"), which is furthermore expected to slow
  beyond 2024 as CMOS scaling tapers off.

The model exposes both trends and the widening gap between them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.units import PBPS, TBPS


@dataclass(frozen=True)
class CapacityTrend:
    """Exponential growth curves anchored at a reference year.

    Defaults anchor on the paper's contemporaries: 25.6 Tb/s switch
    ASICs shipping in 2020 and a ~100 Pbps ideal datacenter bisection in
    2020.
    """

    reference_year: int = 2020
    switch_capacity_2020_bps: float = 25.6 * TBPS
    traffic_capacity_2020_bps: float = 100 * PBPS
    switch_doubling_years: float = 2.0
    traffic_doubling_years: float = 1.0
    #: Year beyond which electrical switch scaling slows (§1: 2024).
    slowdown_year: int = 2024
    #: Doubling period after the slowdown (CMOS taper-off).
    slowed_doubling_years: float = 4.0

    def switch_capacity_bps(self, year: float) -> float:
        """Electrical switch ASIC capacity in ``year``."""
        if year <= self.slowdown_year:
            exponent = (year - self.reference_year) / self.switch_doubling_years
            return self.switch_capacity_2020_bps * 2.0 ** exponent
        at_slowdown = self.switch_capacity_bps(self.slowdown_year)
        exponent = (year - self.slowdown_year) / self.slowed_doubling_years
        return at_slowdown * 2.0 ** exponent

    def traffic_bps(self, year: float) -> float:
        """Datacenter traffic/capacity demand in ``year``."""
        exponent = (year - self.reference_year) / self.traffic_doubling_years
        return self.traffic_capacity_2020_bps * 2.0 ** exponent

    def gap_factor(self, year: float) -> float:
        """How far demand outruns a single switch's capacity."""
        return self.traffic_bps(year) / self.switch_capacity_bps(year)

    def series(self, years: Sequence[int] = tuple(range(2005, 2026))
               ) -> List[Dict[str, float]]:
        """The Fig 1 series (capacities in Pbps, log-plottable)."""
        return [
            {
                "year": year,
                "traffic_pbps": self.traffic_bps(year) / PBPS,
                "switch_pbps": self.switch_capacity_bps(year) / PBPS,
                "gap": self.gap_factor(year),
            }
            for year in years
        ]
