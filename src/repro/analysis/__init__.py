"""Analytical models behind the paper's motivation and §5 analysis figures.

* :mod:`repro.analysis.capacity` — datacenter traffic vs switch-capacity
  growth (Fig 1).
* :mod:`repro.analysis.cmos` — CMOS scaling slowdown (Fig 2b).
* :mod:`repro.analysis.power` — the scale tax (Fig 2a) and the
  Sirius-vs-ESN power ratio (Fig 6a).
* :mod:`repro.analysis.cost` — the Sirius-vs-ESN cost ratio (Fig 6b).
* :mod:`repro.analysis.stats` — FCT/goodput summary statistics shared by
  the simulation benchmarks.
"""

from repro.analysis.capacity import CapacityTrend
from repro.analysis.cmos import CmosScaling
from repro.analysis.power import NetworkPowerModel, SiriusPowerModel
from repro.analysis.cost import NetworkCostModel
from repro.analysis.energy import EnergyReport, energy_comparison
from repro.analysis.stats import percentile, summarize_fcts
from repro.analysis.technologies import SwitchTechnology, survey

__all__ = [
    "CapacityTrend",
    "CmosScaling",
    "NetworkPowerModel",
    "SiriusPowerModel",
    "NetworkCostModel",
    "percentile",
    "summarize_fcts",
    "EnergyReport",
    "energy_comparison",
    "SwitchTechnology",
    "survey",
]
