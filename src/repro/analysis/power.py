"""Network power models (paper Fig 2a "scale tax" and Fig 6a).

Two models live here:

* :class:`NetworkPowerModel` — total power of an electrically-switched
  folded Clos per unit bisection bandwidth, built from the paper's §2
  device numbers (25.6 Tb/s switches at 500 W; 400 Gb/s transceivers at
  10 W, i.e. 25 W/Tbps each).  Reproduces Fig 2a: 50 W/Tbps for a
  direct fibre, rising to ~500 W/Tbps at 65 K nodes.
* :class:`SiriusPowerModel` — the flat network's power: no switches, no
  in-network transceivers, only (load-balancing-doubled) tunable
  transceivers at the nodes, with lasers shared 8-ways (§4.5).  The
  laser-power overhead factor sweep reproduces Fig 6a: with tunable
  lasers at 3–5× fixed-laser power, Sirius draws 23–26 % of the
  equivalent ESN — the headline "74–77 % lower power".

The paper does not publish a full bill of materials; the per-channel
electronics figure of :class:`SiriusPowerModel` is the one free
parameter, calibrated so the Fig 6a anchors are met (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.topology.clos import ClosTopology
from repro.units import GBPS, MEGAWATT, TBPS

#: §2 device constants.
SWITCH_POWER_W = 500.0
SWITCH_CAPACITY_BPS = 25.6 * TBPS
TRANSCEIVER_POWER_W = 10.0
TRANSCEIVER_RATE_BPS = 400 * GBPS


@dataclass(frozen=True)
class NetworkPowerModel:
    """Power of an electrically-switched folded Clos (Fig 2a).

    All figures are per unit *bisection* bandwidth, the paper's Fig 2a
    metric.
    """

    switch_power_w: float = SWITCH_POWER_W
    switch_capacity_bps: float = SWITCH_CAPACITY_BPS
    transceiver_power_w: float = TRANSCEIVER_POWER_W
    transceiver_rate_bps: float = TRANSCEIVER_RATE_BPS
    radix: int = 64

    def esn_power_w(self, n_nodes: int,
                    oversubscription: float = 1.0) -> float:
        """Total network power for ``n_nodes`` 400 G endpoints."""
        topo = ClosTopology(
            n_nodes, radix=self.radix,
            port_rate_bps=self.transceiver_rate_bps,
            oversubscription=oversubscription,
        )
        switches = topo.switch_count()
        transceivers = topo.transceiver_count()
        return (switches * self.switch_power_w
                + transceivers * self.transceiver_power_w)

    def power_per_tbps(self, n_nodes: int) -> float:
        """W per Tbps of bisection bandwidth (the Fig 2a y-axis).

        The two-node "network" is a direct fibre with one transceiver at
        each end: 2 × 25 W/Tbps = 50 W/Tbps, the paper's base point.
        """
        if n_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {n_nodes}")
        bisection_tbps = n_nodes * self.transceiver_rate_bps / 2.0 / TBPS
        if n_nodes == 2:
            return 2 * self.transceiver_power_w / (
                self.transceiver_rate_bps / TBPS
            )
        return self.esn_power_w(n_nodes) / bisection_tbps

    def scale_tax_series(self, scales: Sequence[int] = (
            2, 64, 2048, 65536, 2_097_152)) -> List[Dict[str, float]]:
        """The Fig 2a bar series: (scale, layers, W/Tbps)."""
        rows = []
        for n in scales:
            topo = ClosTopology(max(n, 2), radix=self.radix,
                                port_rate_bps=self.transceiver_rate_bps)
            rows.append({
                "n_nodes": n,
                "layers": 0 if n == 2 else topo.n_layers,
                "watts_per_tbps": self.power_per_tbps(n),
            })
        return rows

    def datacenter_power_mw(self, bisection_pbps: float,
                            n_nodes: int = 65536) -> float:
        """Headline §1/§2 arithmetic: power of a ``bisection_pbps``
        network at a given scale tax (48.7 MW for 100 Pbps at 487 W/Tbps).
        """
        if bisection_pbps <= 0:
            raise ValueError("bisection bandwidth must be positive")
        return self.power_per_tbps(n_nodes) * bisection_pbps * 1000.0 / MEGAWATT


@dataclass(frozen=True)
class SiriusPowerModel:
    """Power of the flat Sirius network per unit node bandwidth (Fig 6a).

    Components (per 50 Gb/s optical channel):

    * burst-mode transceiver electronics (driver, TIA/CDR, framing),
      ``channel_electronics_w``;
    * the tunable laser, ``fixed_laser_w × overhead`` shared across
      ``laser_sharing`` channels (§4.5);
    * the passive grating core: zero.

    The node's uplinks are doubled (``lb_multiplier = 2``) to absorb the
    worst-case load-balancing throughput loss, exactly as the paper's §5
    analysis assumes.  ``channel_electronics_w`` is calibrated (1.05 W
    per 50 G channel) so the power ratio against the four-layer ESN hits
    the paper's 23 % at 3× laser overhead.
    """

    channel_electronics_w: float = 1.05
    fixed_laser_w: float = 1.0
    laser_sharing: int = 8
    lb_multiplier: float = 2.0
    channel_rate_bps: float = 50 * GBPS

    def channel_power_w(self, laser_overhead: float) -> float:
        """Power of one tunable 50 G channel at a laser overhead factor."""
        if laser_overhead < 1:
            raise ValueError(
                f"laser overhead factor must be >= 1, got {laser_overhead}"
            )
        laser_share = self.fixed_laser_w * laser_overhead / self.laser_sharing
        return self.channel_electronics_w + laser_share

    def power_per_tbps(self, laser_overhead: float) -> float:
        """W per Tbps of *useful* bisection bandwidth.

        Each end of a path carries a transceiver, and the uplink count
        is multiplied by ``lb_multiplier``; per Tbps of bisection, the
        node-aggregate bandwidth is 2 Tbps.
        """
        channels_per_tbps = TBPS / self.channel_rate_bps
        per_aggregate = (
            self.lb_multiplier * channels_per_tbps
            * self.channel_power_w(laser_overhead)
        )
        return 2.0 * per_aggregate

    def ratio_vs_esn(self, laser_overhead: float,
                     esn: NetworkPowerModel = None,
                     n_nodes: int = 65536) -> float:
        """Sirius/ESN power ratio (the Fig 6a y-axis)."""
        esn = esn or NetworkPowerModel()
        return self.power_per_tbps(laser_overhead) / esn.power_per_tbps(
            n_nodes
        )

    def fig6a_series(self, overheads: Sequence[float] = (1, 3, 5, 7, 10, 20),
                     esn: NetworkPowerModel = None) -> List[Dict[str, float]]:
        """The Fig 6a series: laser overhead → Sirius/ESN power ratio."""
        esn = esn or NetworkPowerModel()
        return [
            {
                "laser_overhead": k,
                "power_ratio": self.ratio_vs_esn(k, esn),
            }
            for k in overheads
        ]

    def headline_power_savings(self, esn: NetworkPowerModel = None
                               ) -> Dict[str, float]:
        """The abstract's claim: 74–77 % lower power at 3–5× lasers."""
        esn = esn or NetworkPowerModel()
        return {
            "savings_at_3x": 1.0 - self.ratio_vs_esn(3.0, esn),
            "savings_at_5x": 1.0 - self.ratio_vs_esn(5.0, esn),
        }
