"""Parallel fan-out of independent simulator configurations.

A paper figure is a *sweep*: the same simulator run at several loads,
multipliers or queue thresholds (Fig 9, 10, 12).  Each point is an
independent, fully-seeded simulation, which makes the sweep trivially
parallel — provided the parallelism cannot perturb the results.

:class:`ParallelSweepRunner` guarantees that by construction:

* **Jobs are descriptions, not objects.**  A job carries only the
  configuration and seeds; the worker process rebuilds the network and
  regenerates the workload from them, so nothing non-deterministic (or
  expensive to pickle) crosses the process boundary.
* **Results are compact.**  Workers return :class:`SweepPoint`
  summaries — the metrics the benchmarks actually plot — rather than
  the full ``SimulationResult`` with its thousands of ``Flow`` objects.
* **Order is submission order.**  ``multiprocessing.Pool.map`` with
  ``chunksize=1`` merges results in job order regardless of which
  worker finishes first, so a parallel sweep's output is positionally
  identical to the serial one.

Worker count resolution: an explicit ``workers=`` argument wins, then
the ``REPRO_SWEEP_WORKERS`` environment variable, then the machine's
CPU count.  ``workers=1`` (or a single job) runs serially in-process,
which is also the fallback the tests compare the parallel path against.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from dataclasses import is_dataclass
from typing import (
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.core.congestion import CongestionConfig
from repro.core.network import SiriusNetwork
from repro.core.schedule import SlotTiming
from repro.sim.fluid import FluidNetwork, pod_map_for
from repro.units import KILOBYTE, MEGABYTE, NANOSECOND
from repro.workload import FlowWorkload, WorkloadConfig

__all__ = [
    "FluidSweepJob",
    "ParallelSweepRunner",
    "SiriusSweepJob",
    "SweepPoint",
    "WORKERS_ENV",
    "run_fluid_job",
    "run_sirius_job",
]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class SiriusSweepJob:
    """One cell-simulator point of a sweep.

    Only configuration and seeds — the worker rebuilds the
    :class:`SiriusNetwork` and regenerates the workload, so a job is
    cheap to pickle and deterministic wherever it executes.
    """

    n_nodes: int
    grating_ports: int
    load: float
    n_flows: int
    uplink_multiplier: float = 1.5
    queue_threshold: int = 4
    ideal: bool = False
    selection: str = "drrm"
    guardband_ns: float = 10.0
    header_bytes: int = 18
    track_reorder: bool = False
    local_capacity_cells: Optional[int] = None
    mean_flow_bits: float = 100 * KILOBYTE
    seed: int = 1
    workload_seed: int = 2
    max_epochs: Optional[int] = None
    fast_path: Optional[bool] = None
    backend: Optional[str] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise ValueError(f"need at least one flow, got {self.n_flows}")
        if self.load <= 0:
            raise ValueError(f"load must be positive, got {self.load}")


@dataclass(frozen=True)
class FluidSweepJob:
    """One fluid-simulator (ESN baseline) point of a sweep."""

    n_nodes: int
    load: float
    n_flows: int
    node_bandwidth_bps: float
    oversubscription: Optional[float] = None
    pod_size: Optional[int] = None
    mean_flow_bits: float = 100 * KILOBYTE
    workload_seed: int = 2
    fast_path: Optional[bool] = None
    backend: Optional[str] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise ValueError(f"need at least one flow, got {self.n_flows}")
        if self.load <= 0:
            raise ValueError(f"load must be positive, got {self.load}")
        if self.node_bandwidth_bps <= 0:
            raise ValueError("node bandwidth must be positive")
        if (self.oversubscription is not None
                and self.oversubscription <= 0):
            raise ValueError("oversubscription must be positive")


@dataclass(frozen=True)
class SweepPoint:
    """Compact result of one sweep job — the plotted metrics only."""

    label: str
    kind: str
    load: float
    n_flows: int
    completed_flows: int
    normalized_goodput: float
    fct_p50_s: Optional[float]
    fct_p99_s: Optional[float]
    duration_s: float
    delivered_bits: float
    #: Cell-simulator extras (zero for fluid points).
    epochs: int = 0
    delivered_cells: int = 0
    peak_fwd_cells: int = 0
    peak_local_cells: int = 0
    peak_reorder_cells: int = 0
    failed_flows: int = 0
    extra: dict = field(default_factory=dict)


def _make_workload(n_nodes: int, load: float, bandwidth: float,
                   mean_flow_bits: float, seed: int) -> FlowWorkload:
    truncation = max(2 * MEGABYTE, 4 * mean_flow_bits)
    return FlowWorkload(WorkloadConfig(
        n_nodes=n_nodes,
        load=load,
        node_bandwidth_bps=bandwidth,
        mean_flow_bits=mean_flow_bits,
        truncation_bits=truncation,
        seed=seed,
    ))


def run_sirius_job(job: SiriusSweepJob, obs=None) -> SweepPoint:
    """Execute one cell-simulator job (module-level: picklable).

    ``obs`` attaches a live :class:`repro.obs.Observation` to the run —
    used by the in-process service executor (:mod:`repro.serve.jobs`);
    it never crosses the process-pool boundary, so pool jobs stay
    cheap to pickle.
    """
    timing = SlotTiming(guardband_s=job.guardband_ns * NANOSECOND,
                        header_bytes=job.header_bytes)
    net = SiriusNetwork(
        job.n_nodes, job.grating_ports,
        uplink_multiplier=job.uplink_multiplier,
        timing=timing,
        config=CongestionConfig(
            queue_threshold=job.queue_threshold,
            ideal=job.ideal,
            selection=job.selection,
        ),
        track_reorder=job.track_reorder,
        local_capacity_cells=job.local_capacity_cells,
        seed=job.seed,
        fast_path=job.fast_path,
        backend=job.backend,
    )
    workload = _make_workload(
        job.n_nodes, job.load, net.reference_node_bandwidth_bps,
        job.mean_flow_bits, job.workload_seed,
    )
    result = net.run(workload.generate(job.n_flows),
                     max_epochs=job.max_epochs, obs=obs)
    return SweepPoint(
        label=job.label,
        kind="sirius",
        load=job.load,
        n_flows=len(result.flows),
        completed_flows=len(result.completed_flows),
        normalized_goodput=result.normalized_goodput,
        fct_p50_s=result.fct_percentile(50),
        fct_p99_s=result.fct_percentile(99),
        duration_s=result.duration_s,
        delivered_bits=result.delivered_bits,
        epochs=result.epochs,
        delivered_cells=result.delivered_cells,
        peak_fwd_cells=result.peak_fwd_cells,
        peak_local_cells=result.peak_local_cells,
        peak_reorder_cells=result.peak_reorder_cells,
        failed_flows=result.failed_flows,
    )


def run_fluid_job(job: FluidSweepJob) -> SweepPoint:
    """Execute one fluid-simulator job (module-level: picklable)."""
    if job.oversubscription is None:
        net = FluidNetwork(job.n_nodes, job.node_bandwidth_bps,
                           backend=job.backend, fast_path=job.fast_path)
    else:
        pod = job.pod_size or max(2, job.n_nodes // 4)
        net = FluidNetwork(
            job.n_nodes, job.node_bandwidth_bps,
            pod_map=pod_map_for(job.n_nodes, pod),
            pod_bandwidth_bps=pod * job.node_bandwidth_bps / (
                job.oversubscription
            ),
            backend=job.backend,
            fast_path=job.fast_path,
        )
    workload = _make_workload(
        job.n_nodes, job.load, job.node_bandwidth_bps,
        job.mean_flow_bits, job.workload_seed,
    )
    result = net.run(workload.generate(job.n_flows))
    return SweepPoint(
        label=job.label,
        kind="fluid",
        load=job.load,
        n_flows=len(result.flows),
        completed_flows=len(result.completed_flows),
        normalized_goodput=result.normalized_goodput,
        fct_p50_s=result.fct_percentile(50),
        fct_p99_s=result.fct_percentile(99),
        duration_s=result.duration_s,
        delivered_bits=result.delivered_bits,
    )


def resolve_workers(explicit: Optional[int] = None) -> int:
    """Effective worker count: argument, then env, then CPU count."""
    if explicit is not None:
        if explicit < 1:
            raise ValueError(f"workers must be >= 1, got {explicit}")
        return explicit
    env = os.environ.get(WORKERS_ENV)
    if env is not None:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be a positive integer, got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(
                f"{WORKERS_ENV} must be >= 1, got {env}"
            )
        return value
    return os.cpu_count() or 1


def _check_picklable(fn: Callable, jobs: Sequence) -> None:
    """Fail fast, by name, on anything the pool could not ship.

    ``multiprocessing`` reports a pickle failure from deep inside its
    worker-feeder thread, naming neither the job nor the field.  Checking
    up front costs one extra serialization of the (small, by design)
    job descriptions and turns that into an actionable error.
    """
    try:
        pickle.dumps(fn)
    except Exception as exc:
        name = getattr(fn, "__qualname__", repr(fn))
        raise ValueError(
            f"worker function {name} cannot be pickled for the process "
            f"pool ({exc}); use a module-level function"
        ) from exc
    for index, job in enumerate(jobs):
        try:
            pickle.dumps(job)
        except Exception as exc:
            detail = ""
            if is_dataclass(job) and not isinstance(job, type):
                for spec in dataclass_fields(job):
                    value = getattr(job, spec.name, None)
                    try:
                        pickle.dumps(value)
                    except Exception:
                        detail = (f": field '{spec.name}' "
                                  f"({type(value).__name__}) is not "
                                  "picklable")
                        break
            raise ValueError(
                f"job {index} ({type(job).__name__}) cannot be pickled "
                f"for the process pool{detail or f' ({exc})'}; jobs must "
                "carry only plain configuration values"
            ) from exc


def _indexed_call(entry):
    """Worker trampoline for :meth:`ParallelSweepRunner.map_stream`."""
    fn, index, job = entry
    return index, fn(job)


class ParallelSweepRunner:
    """Fan independent, seeded simulator jobs over worker processes.

    ``map(fn, jobs)`` returns one result per job, in submission order.
    With one worker (or fewer than two jobs) everything runs serially
    in-process — the degenerate case the parallel path is tested
    against for equality.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = resolve_workers(workers)

    def map(self, fn: Callable[[T], R], jobs: Iterable[T]) -> List[R]:
        job_list: List[T] = list(jobs)
        if self.workers <= 1 or len(job_list) < 2:
            return [fn(job) for job in job_list]
        _check_picklable(fn, job_list)
        processes = min(self.workers, len(job_list))
        with multiprocessing.Pool(processes=processes) as pool:
            # chunksize=1: results merge in submission order and the
            # slowest job cannot strand a whole chunk on one worker.
            return pool.map(fn, job_list, chunksize=1)

    def map_stream(self, fn: Callable[[T], R], jobs: Iterable[T],
                   on_result: Optional[Callable[[int, R], None]] = None,
                   ) -> Iterator[Tuple[int, R]]:
        """Yield ``(job_index, result)`` pairs as jobs *complete*.

        The async-friendly counterpart of :meth:`map`: a long sweep
        surfaces each finished point immediately (completion order, via
        ``imap_unordered``) instead of blocking until the last job is
        done, so a service can stream per-point progress while the
        sweep runs.  ``on_result`` is invoked before each yield — handy
        when the consumer is a plain ``for`` loop in an executor thread
        marshalling progress back to an event loop.

        Results are the same as :meth:`map`'s — each job is still fully
        seeded and independent — only arrival order differs; reorder by
        the yielded index for the deterministic submission-order view.
        """
        job_list: List[T] = list(jobs)
        if self.workers <= 1 or len(job_list) < 2:
            for index, job in enumerate(job_list):
                result = fn(job)
                if on_result is not None:
                    on_result(index, result)
                yield index, result
            return
        _check_picklable(fn, job_list)
        entries = [(fn, index, job) for index, job in enumerate(job_list)]
        processes = min(self.workers, len(job_list))
        with multiprocessing.Pool(processes=processes) as pool:
            for index, result in pool.imap_unordered(
                    _indexed_call, entries, chunksize=1):
                if on_result is not None:
                    on_result(index, result)
                yield index, result

    def run_sirius(self, jobs: Sequence[SiriusSweepJob]) -> List[SweepPoint]:
        return self.map(run_sirius_job, jobs)

    def run_fluid(self, jobs: Sequence[FluidSweepJob]) -> List[SweepPoint]:
        return self.map(run_fluid_job, jobs)
