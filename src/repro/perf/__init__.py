"""Performance tooling: parallel sweeps and the perf-regression bench.

* :mod:`repro.perf.sweep` — :class:`ParallelSweepRunner` fans
  independent, seeded simulator configurations over worker processes
  and merges results in submission order (deterministic by
  construction; see the module docstring for the guarantees).
* :mod:`repro.perf.bench` — the ``sirius-repro bench`` harness: a
  pinned scenario matrix timing the cell simulator's three backends
  (``reference``/``fast``/``vectorized``), the vectorized backend at
  paper scale (512/4096 nodes), both fluid event-loop backends
  (``reference``/``incremental``) and an end-to-end sweep,
  snapshotted to ``BENCH_<date>.json``.
"""

from repro.perf.bench import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_V1,
    BENCH_SCHEMA_V2,
    VECTORIZED_4096_RSS_BUDGET_KB,
    run_bench,
    validate_payload,
    write_payload,
)
from repro.perf.sweep import (
    WORKERS_ENV,
    FluidSweepJob,
    ParallelSweepRunner,
    SiriusSweepJob,
    SweepPoint,
    run_fluid_job,
    run_sirius_job,
)

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_V1",
    "BENCH_SCHEMA_V2",
    "VECTORIZED_4096_RSS_BUDGET_KB",
    "FluidSweepJob",
    "ParallelSweepRunner",
    "SiriusSweepJob",
    "SweepPoint",
    "WORKERS_ENV",
    "run_bench",
    "run_fluid_job",
    "run_sirius_job",
    "validate_payload",
    "write_payload",
]
