"""Performance tooling: parallel sweeps and the perf-regression bench.

* :mod:`repro.perf.sweep` — :class:`ParallelSweepRunner` fans
  independent, seeded simulator configurations over worker processes
  and merges results in submission order (deterministic by
  construction; see the module docstring for the guarantees).
* :mod:`repro.perf.bench` — the ``sirius-repro bench`` harness: a
  pinned scenario matrix timing the cell simulator's fast and
  reference paths, the fluid simulator and an end-to-end sweep,
  snapshotted to ``BENCH_<date>.json``.
"""

from repro.perf.bench import (
    BENCH_SCHEMA,
    run_bench,
    validate_payload,
    write_payload,
)
from repro.perf.sweep import (
    WORKERS_ENV,
    FluidSweepJob,
    ParallelSweepRunner,
    SiriusSweepJob,
    SweepPoint,
    run_fluid_job,
    run_sirius_job,
)

__all__ = [
    "BENCH_SCHEMA",
    "FluidSweepJob",
    "ParallelSweepRunner",
    "SiriusSweepJob",
    "SweepPoint",
    "WORKERS_ENV",
    "run_bench",
    "run_fluid_job",
    "run_sirius_job",
    "validate_payload",
    "write_payload",
]
