"""The perf-regression harness behind ``sirius-repro bench``.

Runs a pinned scenario matrix and writes a ``BENCH_<date>.json``
snapshot, so "did the simulator get slower?" is a diff between two
committed files rather than a guess:

* ``micro_epoch_loop`` — the cell simulator's epoch loop on a
  light all-to-all workload (many epochs, sparse per-epoch activity:
  the regime the active-set fast path targets), measured once per
  backend — ``fast``, ``reference`` and ``vectorized`` — so the
  recorded ratios track the speedup each strategy is worth.  This
  scenario runs at the pinned 64-node scale even under ``--quick``:
  it is sub-second and its ratios feed the live regression guards.
* ``scale_512`` / ``scale_4096`` — the vectorized backend at paper
  scale: a sparse workload spread over a pinned 10k-epoch budget,
  the runs EXPERIMENTS.md's Fig 9-at-scale recipe is built on.
  Skipped under ``--quick``.
* ``fluid_events[reference|incremental]`` — the max-min fluid
  simulator's event loop, once per backend on the same seeded
  workload.  Fluid records carry an explicit ``events_per_s`` field
  (``cells_per_s`` is pinned to zero — the fluid model has no cells),
  and the payload's ``fluid_speedup`` headline is the incremental /
  reference ``events_per_s`` ratio.
* ``sweep_e2e`` — an end-to-end load sweep through
  :class:`repro.perf.ParallelSweepRunner`, the shape the benchmark
  suite runs all day.

Each record carries ``scenario``, ``nodes``, ``epochs``, ``wall_s``,
``cells_per_s`` and ``peak_rss_kb`` (``ru_maxrss`` — the *process*
peak at the moment the scenario finished, monotone across records;
the 4096-node record is the meaningful one and is held under
:data:`VECTORIZED_4096_RSS_BUDGET_KB`).  The headline timing comes
from an *unprofiled* run; a second, profiled run of the micro scenario
contributes the per-phase wall-clock split (``repro.obs.profiling``)
without polluting the headline number.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from typing import Dict, List, Optional

from repro.core.congestion import CongestionConfig
from repro.core.network import SiriusNetwork
from repro.obs.observation import Observation
from repro.obs.profiling import PhaseProfiler
from repro.perf.sweep import (
    FluidSweepJob,
    ParallelSweepRunner,
    SiriusSweepJob,
    run_fluid_job,
    run_sirius_job,
)
from repro.sim.fluid import FluidNetwork
from repro.units import KILOBYTE, MEGABYTE
from repro.workload import FlowWorkload, WorkloadConfig

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_V1",
    "BENCH_SCHEMA_V2",
    "VECTORIZED_4096_RSS_BUDGET_KB",
    "run_bench",
    "validate_payload",
    "write_payload",
]

#: Schema tag of the emitted JSON; bump on incompatible layout changes.
BENCH_SCHEMA = "sirius-bench/3"
#: Previous tags, still accepted by :func:`validate_payload` so
#: committed baselines keep validating (v1 lacks the vectorized
#: scenarios; v2 has a single ``fluid_events`` record whose
#: ``cells_per_s`` counted completed flows and no ``events_per_s``).
BENCH_SCHEMA_V2 = "sirius-bench/2"
BENCH_SCHEMA_V1 = "sirius-bench/1"

#: Pinned scenario scale (full / --quick).
MICRO_NODES, MICRO_NODES_QUICK = 64, 16
MICRO_GRATING, MICRO_GRATING_QUICK = 8, 4
MICRO_FLOWS, MICRO_FLOWS_QUICK = 300, 80
#: Sparse regime: arrivals far apart, so most epochs touch a handful of
#: nodes — the all-pairs reference loop pays the full O(n) scan per
#: epoch while the active-set fast path pays only for live state.
MICRO_LOAD = 0.002
MICRO_MEAN_FLOW_BITS = 20 * KILOBYTE
#: Fluid matrix scale: large enough that the O(steps × resources)
#: reference rebuild and the O(touched) incremental engine separate
#: clearly (the ``fluid_speedup`` acceptance ratio is measured here).
#: ``--quick`` shrinks to a sub-100ms workload.
FLUID_NODES, FLUID_FLOWS = 512, 800
FLUID_NODES_QUICK, FLUID_FLOWS_QUICK = 16, 60
#: The fluid event-loop strategies, ratio-denominator first.
FLUID_BACKENDS_BENCH = ("reference", "incremental")
SWEEP_LOADS = (0.1, 0.25, 0.5)
SWEEP_FLOWS, SWEEP_FLOWS_QUICK = 400, 80

#: The backend variants the micro scenario measures, ratio-pair first.
MICRO_BACKENDS = ("fast", "reference", "vectorized")
#: Paper-scale scenarios: (nodes, grating ports, flows), vectorized only.
SCALE_SCENARIOS = ((512, 8, 1000), (4096, 64, 2000))
#: Epoch budget of the scale scenarios; arrivals are spread over ~95 %
#: of it, so the runs exercise the long sparse regime end to end.
SCALE_EPOCHS = 10_000
#: Memory budget (``ru_maxrss`` kilobytes) for the 4096-node vectorized
#: scenario.  The slab representation keeps per-node state in a handful
#: of numpy arrays, so a whole-process peak well under a gigabyte —
#: measured ~0.5 GB including every earlier scenario — is the contract;
#: a per-node-object regression blows past it immediately.
VECTORIZED_4096_RSS_BUDGET_KB = 786_432


def _peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes (Linux)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _micro_workload(n_nodes: int, n_flows: int, bandwidth: float):
    return FlowWorkload(WorkloadConfig(
        n_nodes=n_nodes,
        load=MICRO_LOAD,
        node_bandwidth_bps=bandwidth,
        mean_flow_bits=MICRO_MEAN_FLOW_BITS,
        truncation_bits=max(2 * MEGABYTE, 4 * MICRO_MEAN_FLOW_BITS),
        seed=7,
    )).generate(n_flows)


def _record(scenario: str, nodes: int, epochs: int, wall_s: float,
            cells: int, **extra) -> Dict[str, object]:
    record: Dict[str, object] = {
        "scenario": scenario,
        "nodes": nodes,
        "epochs": epochs,
        "wall_s": wall_s,
        "cells_per_s": (cells / wall_s) if wall_s > 0 else 0.0,
        "peak_rss_kb": _peak_rss_kb(),
    }
    record.update(extra)
    return record


def _bench_micro(quick: bool) -> List[Dict[str, object]]:
    # Pinned 64-node scale regardless of --quick (see module docstring).
    nodes, grating, n_flows = MICRO_NODES, MICRO_GRATING, MICRO_FLOWS

    records = []
    for variant in MICRO_BACKENDS:
        # Best-of-3: the recorded ratios feed regression guards, so
        # scheduler noise must not contaminate the snapshot.
        wall = float("inf")
        for _ in range(3):
            net = SiriusNetwork(nodes, grating, uplink_multiplier=1.5,
                                config=CongestionConfig(), seed=1,
                                backend=variant)
            flows = _micro_workload(nodes, n_flows,
                                    net.reference_node_bandwidth_bps)
            t0 = time.perf_counter()
            result = net.run(flows)
            wall = min(wall, time.perf_counter() - t0)
        records.append(_record(
            f"micro_epoch_loop[{variant}]", nodes, result.epochs, wall,
            result.delivered_cells, backend=variant,
        ))

    # Separate profiled pass (fast path): phase totals without
    # contaminating the headline wall-clock above.
    profiler = PhaseProfiler()
    net = SiriusNetwork(nodes, grating, uplink_multiplier=1.5,
                        config=CongestionConfig(), seed=1, backend="fast")
    flows = _micro_workload(nodes, n_flows,
                            net.reference_node_bandwidth_bps)
    net.run(flows, obs=Observation(profiler=profiler))
    records[0]["phase_totals_s"] = {
        phase: round(seconds, 6)
        for phase, seconds in sorted(profiler.totals_s.items())
    }
    return records


def _bench_scale() -> List[Dict[str, object]]:
    records = []
    for nodes, grating, n_flows in SCALE_SCENARIOS:
        net = SiriusNetwork(nodes, grating, uplink_multiplier=1.5,
                            config=CongestionConfig(), seed=1,
                            backend="vectorized")
        bandwidth = net.reference_node_bandwidth_bps
        # Spread arrivals over ~95 % of the epoch budget: the load that
        # makes n_flows Poisson arrivals span that window (the paper's
        # load definition inverted twice).
        span_s = 0.95 * SCALE_EPOCHS * net.schedule.epoch_duration_s
        load = (n_flows / span_s) * MICRO_MEAN_FLOW_BITS / (
            nodes * bandwidth
        )
        flows = FlowWorkload(WorkloadConfig(
            n_nodes=nodes, load=load, node_bandwidth_bps=bandwidth,
            mean_flow_bits=MICRO_MEAN_FLOW_BITS,
            truncation_bits=max(2 * MEGABYTE, 4 * MICRO_MEAN_FLOW_BITS),
            seed=7,
        )).generate(n_flows)
        t0 = time.perf_counter()
        result = net.run(flows, max_epochs=SCALE_EPOCHS)
        wall = time.perf_counter() - t0
        records.append(_record(
            f"scale_{nodes}[vectorized]", nodes, result.epochs, wall,
            result.delivered_cells, backend="vectorized",
            epochs_per_s=round(result.epochs / wall, 1) if wall else 0.0,
        ))
    return records


def _bench_fluid(quick: bool) -> List[Dict[str, object]]:
    nodes = FLUID_NODES_QUICK if quick else FLUID_NODES
    n_flows = FLUID_FLOWS_QUICK if quick else FLUID_FLOWS
    bandwidth = 4e11

    def workload():
        # Fresh Flow objects per run: FluidNetwork.run stamps
        # completions into the caller's list.
        return FlowWorkload(WorkloadConfig(
            n_nodes=nodes, load=0.5, node_bandwidth_bps=bandwidth,
            mean_flow_bits=100 * KILOBYTE, truncation_bits=2 * MEGABYTE,
            seed=7,
        )).generate(n_flows)

    records = []
    for variant in FLUID_BACKENDS_BENCH:
        # Best-of-3, mirroring the micro matrix: the recorded
        # events_per_s pair feeds the fluid_speedup headline.
        wall = float("inf")
        for _ in range(3):
            net = FluidNetwork(nodes, bandwidth, backend=variant)
            flows = workload()
            t0 = time.perf_counter()
            result = net.run(flows)
            wall = min(wall, time.perf_counter() - t0)
        # The fluid model has no cells — cells_per_s is pinned to 0
        # and throughput lives in the explicit events_per_s field.
        records.append(_record(
            f"fluid_events[{variant}]", nodes, 0, wall, 0,
            backend=variant, events=result.events,
            events_per_s=round(result.events / wall, 1) if wall else 0.0,
            completed_flows=len(result.completed_flows),
        ))
    return records


def _bench_sweep(quick: bool, workers: Optional[int]) -> Dict[str, object]:
    nodes = MICRO_NODES_QUICK if quick else MICRO_NODES
    grating = MICRO_GRATING_QUICK if quick else MICRO_GRATING
    n_flows = SWEEP_FLOWS_QUICK if quick else SWEEP_FLOWS
    jobs = [
        SiriusSweepJob(
            n_nodes=nodes, grating_ports=grating, load=load,
            n_flows=n_flows, label=f"load={load}",
        )
        for load in SWEEP_LOADS
    ]
    runner = ParallelSweepRunner(workers)
    t0 = time.perf_counter()
    points = runner.run_sirius(jobs)
    wall = time.perf_counter() - t0
    epochs = sum(p.epochs for p in points)
    cells = sum(p.delivered_cells for p in points)
    return _record("sweep_e2e", nodes, epochs, wall, cells,
                   jobs=len(jobs), workers=runner.workers,
                   goodputs=[round(p.normalized_goodput, 4) for p in points])


def run_bench(*, quick: bool = False,
              workers: Optional[int] = None) -> Dict[str, object]:
    """Run the pinned scenario matrix; returns the JSON-ready payload."""
    records: List[Dict[str, object]] = []
    records.extend(_bench_micro(quick))
    records.extend(_bench_fluid(quick))
    records.append(_bench_sweep(quick, workers))
    if not quick:
        records.extend(_bench_scale())
    fast = next(r for r in records
                if r["scenario"] == "micro_epoch_loop[fast]")
    ref = next(r for r in records
               if r["scenario"] == "micro_epoch_loop[reference]")
    vec = next(r for r in records
               if r["scenario"] == "micro_epoch_loop[vectorized]")
    fluid_ref = next(r for r in records
                     if r["scenario"] == "fluid_events[reference]")
    fluid_inc = next(r for r in records
                     if r["scenario"] == "fluid_events[incremental]")
    payload: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "micro_speedup": (
            round(fast["cells_per_s"] / ref["cells_per_s"], 3)
            if ref["cells_per_s"] else 0.0
        ),
        "vectorized_speedup": (
            round(vec["cells_per_s"] / ref["cells_per_s"], 3)
            if ref["cells_per_s"] else 0.0
        ),
        "fluid_speedup": (
            round(fluid_inc["events_per_s"] / fluid_ref["events_per_s"], 3)
            if fluid_ref["events_per_s"] else 0.0
        ),
        "records": records,
    }
    validate_payload(payload)
    return payload


_RECORD_FIELDS = ("scenario", "nodes", "epochs", "wall_s", "cells_per_s",
                  "peak_rss_kb")


def validate_payload(payload: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``payload`` matches the bench schema.

    Shared by the CLI (before writing) and the tier-1 smoke test
    (on both a fresh ``--quick`` run and the committed baseline).
    """
    schema = payload.get("schema")
    accepted = (BENCH_SCHEMA, BENCH_SCHEMA_V2, BENCH_SCHEMA_V1)
    if schema not in accepted:
        raise ValueError(
            f"schema mismatch: {schema!r} is not one of {accepted}"
        )
    records = payload.get("records")
    if not isinstance(records, list) or not records:
        raise ValueError("payload has no records")
    for record in records:
        for key in _RECORD_FIELDS:
            if key not in record:
                raise ValueError(
                    f"record {record.get('scenario')!r} missing {key!r}"
                )
        if record["wall_s"] < 0 or record["cells_per_s"] < 0:
            raise ValueError(
                f"record {record['scenario']!r} has negative timings"
            )
        if record["peak_rss_kb"] <= 0:
            raise ValueError(
                f"record {record['scenario']!r} has no peak RSS"
            )
    scenarios = [r["scenario"] for r in records]
    required = ["micro_epoch_loop[fast]", "micro_epoch_loop[reference]",
                "sweep_e2e"]
    if schema == BENCH_SCHEMA:
        required.extend(["fluid_events[reference]",
                         "fluid_events[incremental]"])
    else:
        required.append("fluid_events")
    if schema in (BENCH_SCHEMA, BENCH_SCHEMA_V2):
        required.append("micro_epoch_loop[vectorized]")
        if not payload.get("quick"):
            required.extend(["scale_512[vectorized]",
                             "scale_4096[vectorized]"])
    for name in required:
        if name not in scenarios:
            raise ValueError(f"missing scenario {name!r}")
    if "micro_speedup" not in payload:
        raise ValueError("payload missing micro_speedup")
    if schema == BENCH_SCHEMA:
        for record in records:
            if not str(record["scenario"]).startswith("fluid_events["):
                continue
            if record.get("events_per_s", -1.0) < 0:
                raise ValueError(
                    f"record {record['scenario']!r} missing events_per_s"
                )
        if "fluid_speedup" not in payload:
            raise ValueError("payload missing fluid_speedup")
    if schema in (BENCH_SCHEMA, BENCH_SCHEMA_V2):
        if "vectorized_speedup" not in payload:
            raise ValueError("payload missing vectorized_speedup")
        for record in records:
            if record["scenario"] != "scale_4096[vectorized]":
                continue
            if record["peak_rss_kb"] > VECTORIZED_4096_RSS_BUDGET_KB:
                raise ValueError(
                    "scale_4096[vectorized] peak RSS "
                    f"{record['peak_rss_kb']} KB exceeds the "
                    f"{VECTORIZED_4096_RSS_BUDGET_KB} KB slab budget"
                )


def write_payload(payload: Dict[str, object], path: str) -> str:
    """Write the payload as pretty JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def main_text(payload: Dict[str, object]) -> str:
    """Human-readable summary printed by the CLI."""
    lines = [f"bench schema {payload['schema']} "
             f"(python {payload['python']})"]
    for record in payload["records"]:
        rate = (f"events/s={record['events_per_s']:,.0f}"
                if "events_per_s" in record
                else f"cells/s={record['cells_per_s']:,.0f}")
        lines.append(
            f"  {record['scenario']:<28} nodes={record['nodes']:<4} "
            f"epochs={record['epochs']:<6} wall={record['wall_s']:.3f}s "
            f"{rate} "
            f"rss={record['peak_rss_kb']}KB"
        )
    lines.append(f"  micro speedup (fast/reference): "
                 f"{payload['micro_speedup']}x")
    if "vectorized_speedup" in payload:
        lines.append(f"  micro speedup (vectorized/reference): "
                     f"{payload['vectorized_speedup']}x")
    if "fluid_speedup" in payload:
        lines.append(f"  fluid speedup (incremental/reference): "
                     f"{payload['fluid_speedup']}x")
    return "\n".join(lines)


if __name__ == "__main__":
    out = run_bench(quick="--quick" in sys.argv)
    print(main_text(out))
