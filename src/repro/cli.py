"""Command-line interface to the Sirius reproduction.

Subcommands::

    python -m repro.cli simulate   --nodes 32 --load 0.5 [--ideal] ...
    python -m repro.cli compare    --nodes 32 --loads 0.25,0.5,1.0
    python -m repro.cli prototype  --generation v2
    python -m repro.cli power      [--laser-overheads 1,3,5,7,10,20]
    python -m repro.cli cost       [--grating-fractions 0.05,0.25,1.0]
    python -m repro.cli sync       --nodes 16 --epochs 20000
    python -m repro.cli sweep      --nodes 32 --loads 0.1,0.5,1.0
    python -m repro.cli bench      [--quick] [--out BENCH.json]
    python -m repro.cli report     run.jsonl
    python -m repro.cli trace      run.jsonl -o run.trace.json
    python -m repro.cli serve      [--port 8151] [--workers 4]
    python -m repro.cli watch      [--port 8151] [--runs run-1,run-2]

``sweep`` fans a Sirius-vs-ESN load sweep over worker processes
(:class:`repro.perf.ParallelSweepRunner`); ``bench`` runs the pinned
perf-regression scenario matrix and snapshots it to
``BENCH_<date>.json`` (see EXPERIMENTS.md for the schema).

``simulate --trace-out run.jsonl`` records a full :mod:`repro.obs`
trace; ``report`` renders a run summary from a JSONL or Chrome trace
file and ``trace`` converts a JSONL log to Chrome ``trace_event`` JSON
(open it in ``chrome://tracing`` or https://ui.perfetto.dev).

``serve`` starts the live telemetry service (:mod:`repro.serve`):
submit jobs over HTTP, watch them stream in a browser dashboard or
with ``watch`` from another shell.

Each prints a compact text report; the benchmark suite
(``pytest benchmarks/``) remains the canonical figure regenerator.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import (
    CongestionConfig,
    FlowWorkload,
    FluidNetwork,
    PrototypeRig,
    SiriusNetwork,
    SyncProtocol,
    WorkloadConfig,
    pod_map_for,
)
from repro.analysis import NetworkCostModel, NetworkPowerModel, SiriusPowerModel
from repro.core.backend import BACKENDS
from repro.core.telemetry import Telemetry, ascii_sparkline
from repro.obs import (
    Observation,
    format_table,
    load_any,
    render_report,
    run_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.sync.protocol import make_clock_ensemble
from repro.units import KILOBYTE, MEGABYTE, NS, PS, US


def _floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sirius (SIGCOMM 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one Sirius simulation")
    sim.add_argument("--nodes", type=int, default=32)
    sim.add_argument("--grating-ports", type=int, default=8)
    sim.add_argument("--load", type=float, default=0.5)
    sim.add_argument("--flows", type=int, default=1000)
    sim.add_argument("--multiplier", type=float, default=1.5)
    sim.add_argument("--queue-threshold", type=int, default=4)
    sim.add_argument("--ideal", action="store_true",
                     help="SIRIUS (IDEAL) baseline instead of the protocol")
    sim.add_argument("--mean-flow-kb", type=float, default=100.0)
    sim.add_argument("--seed", type=int, default=1)
    sim.add_argument("--telemetry", action="store_true",
                     help="print a backlog sparkline")
    sim.add_argument("--trace-out", metavar="PATH",
                     help="record a repro.obs trace to this JSONL file")
    sim.add_argument("--chrome-out", metavar="PATH",
                     help="also write a Chrome trace_event JSON file")
    sim.add_argument("--profile", action="store_true",
                     help="print the per-phase wall-clock breakdown")
    sim.add_argument("--sample-every", type=int, default=4,
                     help="epochs between queue-gauge samples (default 4)")
    sim.add_argument("--backend", choices=BACKENDS, default=None,
                     help="epoch-loop backend (default: REPRO_BACKEND "
                          "or 'fast'; 'vectorized' for paper-scale runs)")

    cmp_ = sub.add_parser("compare", help="Sirius vs ESN baselines")
    cmp_.add_argument("--nodes", type=int, default=32)
    cmp_.add_argument("--grating-ports", type=int, default=8)
    cmp_.add_argument("--loads", type=_floats, default=[0.25, 0.5, 1.0])
    cmp_.add_argument("--flows", type=int, default=800)
    cmp_.add_argument("--seed", type=int, default=2)

    proto = sub.add_parser("prototype", help="the §6 four-node testbed")
    proto.add_argument("--generation", choices=("v1", "v2"), default="v2")
    proto.add_argument("--epochs", type=int, default=15)

    power = sub.add_parser("power", help="the §5 power analysis (Fig 6a)")
    power.add_argument("--laser-overheads", type=_floats,
                       default=[1, 3, 5, 7, 10, 20])

    cost = sub.add_parser("cost", help="the §5 cost analysis (Fig 6b)")
    cost.add_argument("--grating-fractions", type=_floats,
                      default=[0.05, 0.10, 0.25, 0.50, 0.75, 1.0])

    sync = sub.add_parser("sync", help="time-synchronization accuracy")
    sync.add_argument("--nodes", type=int, default=16)
    sync.add_argument("--epochs", type=int, default=20_000)

    report = sub.add_parser(
        "report", help="summarize a recorded run trace"
    )
    report.add_argument("file", help="JSONL run log or Chrome trace JSON")

    trace = sub.add_parser(
        "trace", help="convert a JSONL run log to Chrome trace_event JSON"
    )
    trace.add_argument("file", help="JSONL run log (from simulate --trace-out)")
    trace.add_argument("-o", "--output", required=True,
                       help="output path for the Chrome trace JSON")

    sweep = sub.add_parser(
        "sweep", help="parallel load sweep: Sirius vs the ESN baselines"
    )
    sweep.add_argument("--nodes", type=int, default=32)
    sweep.add_argument("--grating-ports", type=int, default=8)
    sweep.add_argument("--loads", type=_floats,
                       default=[0.10, 0.25, 0.50, 0.75, 1.00])
    sweep.add_argument("--flows", type=int, default=800)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: REPRO_SWEEP_WORKERS "
                            "or the CPU count)")

    bench = sub.add_parser(
        "bench", help="perf-regression scenario matrix -> BENCH_<date>.json"
    )
    bench.add_argument("--quick", action="store_true",
                       help="reduced scale (smoke test; not comparable "
                            "to full-scale snapshots)")
    bench.add_argument("--out", metavar="PATH", default=None,
                       help="output JSON path (default BENCH_<date>.json)")
    bench.add_argument("--no-write", action="store_true",
                       help="print the summary without writing JSON")
    bench.add_argument("--workers", type=int, default=None,
                       help="worker processes for the sweep scenario")

    serve = sub.add_parser(
        "serve", help="start the live telemetry service + dashboard"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8151,
                       help="TCP port (0 picks an ephemeral port)")
    serve.add_argument("--workers", type=int, default=4,
                       help="max concurrently running jobs")
    serve.add_argument("--sample-interval", type=float, default=0.25,
                       metavar="SECONDS",
                       help="telemetry sampling period (default 0.25)")

    watch = sub.add_parser(
        "watch", help="stream a running service's telemetry to the terminal"
    )
    watch.add_argument("--host", default="127.0.0.1")
    watch.add_argument("--port", type=int, default=8151)
    watch.add_argument("--runs", default=None,
                       help="comma-separated run ids (default: all runs)")
    watch.add_argument("--streams", default="metrics,events",
                       help="comma-separated subset of metrics,events")
    watch.add_argument("--max-frames", type=int, default=None,
                       help="stop after N frames (default: stream forever)")

    sub.add_parser(
        "lint",
        help="run the repro.checks static analysis (see sirius-lint)",
        add_help=False,
    )
    return parser


# -- subcommand implementations ------------------------------------------------
def _cmd_simulate(args) -> int:
    config = CongestionConfig(
        queue_threshold=args.queue_threshold, ideal=args.ideal,
    )
    net = SiriusNetwork(
        args.nodes, args.grating_ports,
        uplink_multiplier=args.multiplier,
        config=config, track_reorder=True, seed=args.seed,
        backend=args.backend,
    )
    workload = FlowWorkload(WorkloadConfig(
        n_nodes=args.nodes, load=args.load,
        node_bandwidth_bps=net.reference_node_bandwidth_bps,
        mean_flow_bits=args.mean_flow_kb * KILOBYTE,
        truncation_bits=max(2 * MEGABYTE, 4 * args.mean_flow_kb * KILOBYTE),
        seed=args.seed + 1,
    ))
    telemetry = Telemetry(sample_every=4) if args.telemetry else None
    observing = bool(args.trace_out or args.chrome_out or args.profile)
    obs = (Observation.recording(sample_every=args.sample_every)
           if observing else None)
    result = net.run(workload.generate(args.flows), telemetry=telemetry,
                     obs=obs)
    print(f"system            : "
          f"{'SIRIUS (IDEAL)' if args.ideal else 'Sirius'} "
          f"{args.nodes} nodes, {args.multiplier}x uplinks, "
          f"Q={args.queue_threshold}")
    print(f"epochs            : {result.epochs} "
          f"({result.duration_s / US:.1f} us)")
    print(f"completed flows   : {len(result.completed_flows)}"
          f"/{len(result.flows)}")
    print(f"goodput           : {result.normalized_goodput:.3f}")
    p50, p99 = result.fct_percentile(50), result.fct_percentile(99)
    if p99 is not None:
        print(f"short-flow FCT    : p50 {p50 / US:.1f} us, "
              f"p99 {p99 / US:.1f} us")
    print(f"peak queues       : fwd {result.peak_fwd_bytes / 1000:.1f} KB, "
          f"reorder {result.peak_reorder_bytes / 1000:.1f} KB")
    if telemetry is not None and telemetry.n_samples:
        print(f"backlog           : "
              f"{ascii_sparkline(telemetry.backlog_series())}")
    if observing:
        meta = {
            "system": "SIRIUS (IDEAL)" if args.ideal else "Sirius",
            "nodes": args.nodes,
            "epochs": result.epochs,
            "epoch_duration_s": net.schedule.epoch_duration_s,
            "seed": args.seed,
        }
        if args.trace_out:
            path = write_jsonl(args.trace_out, obs, meta=meta)
            print(f"trace             : {path}")
        if args.chrome_out or args.profile:
            trace = run_trace(obs, meta=meta)
            if args.chrome_out:
                path = write_chrome_trace(args.chrome_out, trace)
                print(f"chrome trace      : {path}")
            if args.profile and trace.profile is not None:
                rows = [
                    [row["phase"], f"{row['seconds'] / US:.0f}",
                     f"{row['share']:.1%}", row["laps"]]
                    for row in trace.profile.breakdown()
                ]
                print(format_table(
                    ["phase", "wall us", "share", "laps"], rows
                ))
                print(f"profiler coverage : "
                      f"{trace.profile.coverage():.1%} of "
                      f"{trace.profile.total_run_s / US:.0f} us measured")
    return 0


def _cmd_compare(args) -> int:
    reference = SiriusNetwork(
        args.nodes, args.grating_ports, uplink_multiplier=1.0
    ).reference_node_bandwidth_bps
    pod = max(2, args.nodes // 4)

    def workload(load):
        return FlowWorkload(WorkloadConfig(
            n_nodes=args.nodes, load=load, node_bandwidth_bps=reference,
            mean_flow_bits=100 * KILOBYTE, truncation_bits=2 * MEGABYTE,
            seed=args.seed,
        )).generate(args.flows)

    print(f"{'load':>6} {'system':>18} {'goodput':>8} {'p99 FCT us':>11}")
    for load in args.loads:
        systems = [
            ("ESN (Ideal)", FluidNetwork(args.nodes, reference)),
            ("ESN-OSUB (Ideal)", FluidNetwork(
                args.nodes, reference,
                pod_map=pod_map_for(args.nodes, pod),
                pod_bandwidth_bps=pod * reference / 3.0,
            )),
        ]
        for name, net in systems:
            result = net.run(workload(load))
            p99 = result.fct_percentile(99)
            print(f"{load:>6.0%} {name:>18} "
                  f"{result.normalized_goodput:>8.3f} "
                  f"{(p99 or 0) / US:>11.1f}")
        sirius = SiriusNetwork(
            args.nodes, args.grating_ports, uplink_multiplier=1.5,
            seed=args.seed,
        ).run(workload(load))
        p99 = sirius.fct_percentile(99)
        print(f"{load:>6.0%} {'Sirius':>18} "
              f"{sirius.normalized_goodput:>8.3f} "
              f"{(p99 or 0) / US:>11.1f}")
    return 0


def _cmd_prototype(args) -> int:
    rig = PrototypeRig(args.generation, seed=5)
    report = rig.run(n_epochs=args.epochs, sync_epochs=4000)
    print(f"Sirius {report.generation}")
    print(f"guardband             : {report.guardband_s / NS:.2f} ns")
    print(f"worst reconfiguration : "
          f"{report.worst_reconfiguration_s / NS:.3f} ns "
          f"({'OK' if report.guardband_sufficient else 'EXCEEDED'})")
    print(f"post-FEC error-free   : {report.error_free} "
          f"({report.bits_checked:,} bits)")
    print(f"sync deviation        : "
          f"±{report.sync_max_offset_s / PS:.2f} ps")
    return 0


def _cmd_power(args) -> int:
    sirius, esn = SiriusPowerModel(), NetworkPowerModel()
    print("tunable/fixed laser power -> Sirius/ESN power ratio")
    for overhead in args.laser_overheads:
        ratio = sirius.ratio_vs_esn(overhead, esn)
        print(f"  {overhead:>5.1f}x : {ratio:.1%}  "
              f"({1 - ratio:.0%} savings)")
    return 0


def _cmd_cost(args) -> int:
    model = NetworkCostModel()
    print("grating/switch cost -> Sirius cost ratios")
    print(f"{'fraction':>9} {'vs non-blocking':>16} {'vs 3:1 oversub':>15}")
    for fraction in args.grating_fractions:
        print(f"{fraction:>9.0%} "
              f"{model.ratio_vs_esn(fraction):>16.1%} "
              f"{model.ratio_vs_esn(fraction, oversubscription=3.0):>15.1%}")
    return 0


def _cmd_sync(args) -> int:
    protocol = SyncProtocol(make_clock_ensemble(args.nodes, seed=9))
    result = protocol.run(args.epochs,
                          warmup_epochs=min(5000, args.epochs // 3))
    print(f"{args.nodes} nodes, {args.epochs} epochs: max offset "
          f"±{result.max_abs_offset_ps:.2f} ps (paper: ±5 ps for 2 nodes)")
    return 0


def _cmd_sweep(args) -> int:
    from repro.perf import (
        FluidSweepJob,
        ParallelSweepRunner,
        SiriusSweepJob,
        run_fluid_job,
        run_sirius_job,
    )

    reference = SiriusNetwork(
        args.nodes, args.grating_ports, uplink_multiplier=1.0
    ).reference_node_bandwidth_bps
    jobs = []
    for load in args.loads:
        jobs.append(("ESN (Ideal)", run_fluid_job, FluidSweepJob(
            n_nodes=args.nodes, load=load, n_flows=args.flows,
            node_bandwidth_bps=reference, workload_seed=args.seed + 1,
            label=f"esn@{load}",
        )))
        jobs.append(("Sirius", run_sirius_job, SiriusSweepJob(
            n_nodes=args.nodes, grating_ports=args.grating_ports,
            load=load, n_flows=args.flows, seed=args.seed,
            workload_seed=args.seed + 1, label=f"sirius@{load}",
        )))
    runner = ParallelSweepRunner(args.workers)
    # One heterogeneous fan-out: each entry already binds its job
    # function, so a single map() call covers both simulators.
    points = runner.map(_run_sweep_entry, [(fn, job) for _n, fn, job in jobs])
    print(f"{len(jobs)} jobs on {runner.workers} workers")
    print(f"{'load':>6} {'system':>12} {'goodput':>8} {'p99 FCT us':>11}")
    for (name, _fn, _job), point in zip(jobs, points):
        p99 = point.fct_p99_s or 0.0
        print(f"{point.load:>6.0%} {name:>12} "
              f"{point.normalized_goodput:>8.3f} {p99 / US:>11.1f}")
    return 0


def _run_sweep_entry(entry):
    """Top-level trampoline so heterogeneous jobs stay picklable."""
    fn, job = entry
    return fn(job)


def _cmd_bench(args) -> int:
    import datetime

    from repro.perf import run_bench, write_payload
    from repro.perf.bench import main_text

    payload = run_bench(quick=args.quick, workers=args.workers)
    print(main_text(payload))
    if not args.no_write:
        out = args.out or (
            f"BENCH_{datetime.date.today().isoformat()}.json"
        )
        print(f"wrote {write_payload(payload, out)}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import serve_forever

    try:
        asyncio.run(serve_forever(
            args.host, args.port,
            sample_interval_s=args.sample_interval,
            max_workers=args.workers,
        ))
    except KeyboardInterrupt:
        print("sirius-repro serve: stopped")
    return 0


def _cmd_watch(args) -> int:
    import asyncio

    from repro.serve.watch import watch as watch_client

    runs: object = "*"
    if args.runs:
        runs = [part for part in args.runs.split(",") if part]
    streams = [part for part in args.streams.split(",") if part]
    try:
        asyncio.run(watch_client(
            args.host, args.port, runs=runs, streams=streams,
            max_frames=args.max_frames,
        ))
    except KeyboardInterrupt:
        pass
    except ConnectionRefusedError:
        print(f"no service at {args.host}:{args.port} "
              f"(start one with `sirius-repro serve`)")
        return 1
    return 0


def _cmd_report(args) -> int:
    print(render_report(load_any(args.file), title=args.file))
    return 0


def _cmd_trace(args) -> int:
    path = write_chrome_trace(args.output, load_any(args.file))
    print(f"wrote {path} (open in chrome://tracing or ui.perfetto.dev)")
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "compare": _cmd_compare,
    "prototype": _cmd_prototype,
    "power": _cmd_power,
    "cost": _cmd_cost,
    "sync": _cmd_sync,
    "sweep": _cmd_sweep,
    "bench": _cmd_bench,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
    "watch": _cmd_watch,
}


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # Forwarded wholesale so `sirius-repro lint` and `sirius-lint`
        # accept identical options.
        from repro.checks.cli import main as lint_main

        return lint_main(argv[1:])
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
