"""Decentralized time synchronization (paper §4.4, §A.2, §6).

Nanosecond optical switching needs sub-100 ps synchronization between
nodes.  Sirius exploits two properties of its own design instead of an
external protocol: the core is passive (no retiming — a receiver can
recover the sender's clock directly from the bit stream) and the cyclic
schedule connects every node pair once per epoch (a rotating leader's
clock reaches everyone periodically, with no extra messages).

* :mod:`repro.sync.clock` — drifting local-oscillator model.
* :mod:`repro.sync.protocol` — leader-rotation frequency synchronization
  with PLL/DLL discipline; reproduces the ±5 ps accuracy of §6.
* :mod:`repro.sync.delay` — propagation-delay estimation and the
  per-node epoch start offsets that align slots at the AWGR (§A.2).
"""

from repro.sync.clock import DriftingClock
from repro.sync.protocol import SyncProtocol, SyncConfig, SyncResult
from repro.sync.delay import (
    DelayEstimator,
    epoch_start_offsets,
    verify_slot_alignment,
)

__all__ = [
    "DriftingClock",
    "SyncProtocol",
    "SyncConfig",
    "SyncResult",
    "DelayEstimator",
    "epoch_start_offsets",
    "verify_slot_alignment",
]
