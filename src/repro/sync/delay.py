"""Propagation-delay estimation and slot alignment (paper §4.4, §A.2).

Frequency synchronization alone is not enough: nodes sit at different
fibre distances from the grating layer, so "timeslot t" must *start
earlier* at far nodes for their cells to reach the AWGR simultaneously
with everyone else's.  The passive core makes the distance measurable:
a node can time a reflection off the grating (or compare arrival phases
of a known peer) with picosecond resolution, because nothing in the core
adds variable latency.

This module provides the estimator and the per-node epoch-start offsets,
plus a verifier that the offsets align all slots at the grating to
within the guardband budget.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.units import PS, fibre_delay


class DelayEstimator:
    """Round-trip-time estimation of a node's fibre distance to the core.

    ``measure`` simulates ``n_probes`` timestamped round trips with
    Gaussian timestamp noise and returns the averaged one-way delay.
    Averaging drives the error down by ``sqrt(n_probes)``, giving
    picosecond-level estimates from tens of probes.
    """

    def __init__(self, timestamp_noise_s: float = 2 * PS, *,
                 rng: Optional[random.Random] = None) -> None:
        if timestamp_noise_s < 0:
            raise ValueError("noise cannot be negative")
        self.timestamp_noise_s = timestamp_noise_s
        self.rng = rng or random.Random(31)

    def measure(self, fibre_length_m: float, n_probes: int = 64) -> float:
        """Estimated one-way delay (seconds) to the grating layer."""
        if n_probes <= 0:
            raise ValueError("need at least one probe")
        true_one_way = fibre_delay(fibre_length_m)
        total = 0.0
        for _ in range(n_probes):
            rtt = 2 * true_one_way + self.rng.gauss(0, self.timestamp_noise_s)
            total += rtt / 2.0
        return total / n_probes

    def estimation_error(self, fibre_length_m: float,
                         n_probes: int = 64) -> float:
        """Absolute error of one measurement run (for accuracy tests)."""
        return abs(
            self.measure(fibre_length_m, n_probes)
            - fibre_delay(fibre_length_m)
        )


def epoch_start_offsets(fibre_lengths_m: Sequence[float],
                        estimator: Optional[DelayEstimator] = None,
                        n_probes: int = 64) -> List[float]:
    """Per-node epoch start offsets (seconds before the reference start).

    The farther a node is from the grating layer, the earlier it starts
    its epoch, so that cells of the same slot arrive at the AWGR
    simultaneously (§A.2).  Offsets are normalized so the farthest node
    starts at 0 and nearer nodes start later (all offsets >= 0 relative
    to the earliest).
    """
    if not fibre_lengths_m:
        raise ValueError("need at least one node")
    if estimator is None:
        delays = [fibre_delay(length) for length in fibre_lengths_m]
    else:
        delays = [
            estimator.measure(length, n_probes) for length in fibre_lengths_m
        ]
    latest = max(delays)
    # Node i transmits at (latest - delay_i) after the earliest start, so
    # every slot lands at the grating at time `latest`.
    return [latest - d for d in delays]


def verify_slot_alignment(fibre_lengths_m: Sequence[float],
                          offsets_s: Sequence[float],
                          tolerance_s: float) -> float:
    """Check offsets align slot arrivals at the grating.

    Returns the worst-case arrival spread (seconds); raises
    ``AssertionError`` if it exceeds ``tolerance_s`` (the share of the
    guardband budgeted for synchronization error).
    """
    if len(fibre_lengths_m) != len(offsets_s):
        raise ValueError("one offset per node required")
    if tolerance_s <= 0:
        raise ValueError("tolerance must be positive")
    arrivals = [
        offset + fibre_delay(length)
        for offset, length in zip(offsets_s, fibre_lengths_m)
    ]
    spread = max(arrivals) - min(arrivals)
    assert spread <= tolerance_s, (
        f"slot arrival spread {spread:.3e}s exceeds tolerance "
        f"{tolerance_s:.3e}s"
    )
    return spread
