"""Leader-rotation clock synchronization (paper §4.4, measured in §6).

Every epoch the cyclic schedule connects each node to the current
*leader*; the passive core does no retiming, so the receiver extracts
the leader's clock from the incoming bit stream (standard PLL/DLL) and
disciplines its local oscillator toward it.  The leader role rotates
round-robin every few epochs, so a failed leader is replaced within
microseconds — fast enough that no noticeable drift accumulates.

The control law per observation is a second-order loop:

* phase: slew a fraction ``phase_gain`` of the measured offset,
* frequency: integrate ``freq_gain × offset / interval`` (clamped by
  the DLL filter against byzantine frequency jumps).

With picosecond-scale measurement noise (limited by the clock-phase
caching resolution of [21]) the steady-state pairwise offset settles in
the low single-digit picoseconds; the paper measures ±5 ps between two
FPGAs over 24 hours.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from repro.sync.clock import DriftingClock
from repro.units import MICROSECOND, PICOSECOND, PPM


@dataclass(frozen=True)
class SyncConfig:
    """Parameters of the synchronization loop.

    Defaults reflect the prototype: 1.6 us epochs (16-slot schedule at
    100 ns), leader rotation every 8 epochs, ~0.5 ps of phase
    measurement noise (25 GBaud symbol-time / caching resolution).
    """

    epoch_s: float = 1.6 * MICROSECOND
    rotation_epochs: int = 8
    phase_gain: float = 0.7
    freq_gain: float = 0.05
    max_freq_step_ppm: float = 5.0
    measurement_noise_s: float = 0.5 * PICOSECOND
    seed: int = 17

    def __post_init__(self) -> None:
        if self.epoch_s <= 0:
            raise ValueError("epoch duration must be positive")
        if self.rotation_epochs < 1:
            raise ValueError("rotation period must be >= 1 epoch")
        if not 0 < self.phase_gain <= 1:
            raise ValueError("phase gain must be in (0, 1]")
        if self.freq_gain < 0:
            raise ValueError("frequency gain cannot be negative")


@dataclass
class SyncResult:
    """Synchronization accuracy over a simulated run."""

    epochs: int
    max_abs_offset_s: float
    final_max_abs_offset_s: float
    offsets_trace_s: List[float] = field(repr=False, default_factory=list)

    @property
    def max_abs_offset_ps(self) -> float:
        return self.max_abs_offset_s / PICOSECOND


class SyncProtocol:
    """Simulates the leader-rotation discipline over a set of clocks."""

    def __init__(self, clocks: Sequence[DriftingClock],
                 config: Optional[SyncConfig] = None) -> None:
        if len(clocks) < 2:
            raise ValueError("synchronization needs at least 2 clocks")
        self.clocks = list(clocks)
        self.config = config or SyncConfig()
        self.rng = random.Random(self.config.seed)
        self.failed: Set[int] = set()

    # -- membership -------------------------------------------------------------
    def fail_node(self, node: int) -> None:
        """Mark a node failed: it stops serving as leader (its clock
        free-runs)."""
        self._check_node(node)
        self.failed.add(node)
        if len(self.failed) >= len(self.clocks):
            raise RuntimeError("all nodes have failed")

    def recover_node(self, node: int) -> None:
        self._check_node(node)
        self.failed.discard(node)

    def leader_at(self, epoch: int) -> int:
        """Round-robin leader for ``epoch``, skipping failed nodes (§4.4)."""
        if epoch < 0:
            raise ValueError("epoch cannot be negative")
        n = len(self.clocks)
        candidate = (epoch // self.config.rotation_epochs) % n
        for _ in range(n):
            if candidate not in self.failed:
                return candidate
            candidate = (candidate + 1) % n
        raise RuntimeError("no live leader available")

    # -- main loop ------------------------------------------------------------
    def run(self, n_epochs: int, *, warmup_epochs: int = 2_000,
            trace: bool = False) -> SyncResult:
        """Simulate ``n_epochs`` of the discipline loop.

        ``warmup_epochs`` are excluded from the reported maximum (the
        loop needs a settling period after a cold start, exactly like
        the prototype).  The reported metric is the maximum absolute
        pairwise clock offset across all live node pairs — the quantity
        the paper bounds at ±5 ps.
        """
        if n_epochs <= 0:
            raise ValueError("n_epochs must be positive")
        cfg = self.config
        max_offset = 0.0
        final_offset = 0.0
        offsets_trace: List[float] = []
        for epoch in range(n_epochs):
            for clock in self.clocks:
                clock.advance(cfg.epoch_s)
            leader_idx = self.leader_at(epoch)
            leader = self.clocks[leader_idx]
            for idx, clock in enumerate(self.clocks):
                if idx == leader_idx or idx in self.failed:
                    continue
                measured = clock.offset_from(leader) + self.rng.gauss(
                    0.0, cfg.measurement_noise_s
                )
                clock.slew_phase(-cfg.phase_gain * measured)
                clock.adjust_frequency(
                    -cfg.freq_gain * measured / cfg.epoch_s / PPM,
                    max_step_ppm=cfg.max_freq_step_ppm,
                )
            spread = self._max_pairwise_offset()
            if epoch >= warmup_epochs:
                max_offset = max(max_offset, spread)
            final_offset = spread
            if trace:
                offsets_trace.append(spread)
        return SyncResult(
            epochs=n_epochs,
            max_abs_offset_s=max_offset,
            final_max_abs_offset_s=final_offset,
            offsets_trace_s=offsets_trace,
        )

    # -- helpers ------------------------------------------------------------
    def _max_pairwise_offset(self) -> float:
        live = [
            c.phase_s for i, c in enumerate(self.clocks)
            if i not in self.failed
        ]
        return max(live) - min(live)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < len(self.clocks):
            raise ValueError(f"node {node} out of range")


def make_clock_ensemble(n: int, *, ppm_spread: float = 20.0,
                        seed: int = 23) -> List[DriftingClock]:
    """``n`` clocks with frequency errors uniform in ±``ppm_spread``."""
    if n < 1:
        raise ValueError("need at least one clock")
    rng = random.Random(seed)
    return [
        DriftingClock(
            ppm_error=rng.uniform(-ppm_spread, ppm_spread),
            phase_s=rng.uniform(0, 100) * PICOSECOND,
            rng=random.Random(rng.randrange(2 ** 30)),
        )
        for _ in range(n)
    ]
