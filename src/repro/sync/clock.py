"""Local-oscillator clock model with frequency error and random drift.

Commodity oscillators are specified in parts-per-million (ppm): a
±10 ppm oscillator gains or loses up to 10 us every second.  On top of
the static frequency error, real oscillators wander slowly (temperature,
aging); the model adds a bounded random walk on the frequency error.

Sirius does not need the clocks to be *correct*, only *mutually
synchronized* (§4.4: "even if the clocks drift over time it does not
matter as long as they remain synchronized among each other"), which is
what the protocol in :mod:`repro.sync.protocol` achieves by disciplining
every clock to a rotating leader.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.units import PPM


class DriftingClock:
    """A clock with static ppm offset plus a bounded frequency random walk.

    Parameters
    ----------
    ppm_error:
        Initial fractional frequency error in parts per million.
    wander_ppm_per_s:
        Standard deviation of the per-second frequency random walk.
    max_abs_ppm:
        Hard bound on the wandering frequency error (oscillator spec).
    phase_s:
        Initial phase offset (seconds) from ideal time.
    """

    def __init__(self, ppm_error: float = 0.0, *,
                 wander_ppm_per_s: float = 0.01,
                 max_abs_ppm: float = 100.0,
                 phase_s: float = 0.0,
                 rng: Optional[random.Random] = None) -> None:
        if max_abs_ppm <= 0:
            raise ValueError("max_abs_ppm must be positive")
        if abs(ppm_error) > max_abs_ppm:
            raise ValueError(
                f"ppm_error {ppm_error} exceeds the bound {max_abs_ppm}"
            )
        self.ppm_error = ppm_error
        self.wander_ppm_per_s = wander_ppm_per_s
        self.max_abs_ppm = max_abs_ppm
        self.phase_s = phase_s
        self.rng = rng or random.Random(37)
        #: Cumulative discipline applied by the sync protocol (ppm).
        self.discipline_ppm = 0.0

    # -- evolution -------------------------------------------------------------
    @property
    def effective_ppm(self) -> float:
        """Frequency error after protocol discipline."""
        return self.ppm_error + self.discipline_ppm

    def advance(self, dt_s: float) -> None:
        """Advance real time by ``dt_s``: accumulate phase and wander."""
        if dt_s < 0:
            raise ValueError(f"dt cannot be negative, got {dt_s}")
        self.phase_s += self.effective_ppm * PPM * dt_s
        if self.wander_ppm_per_s:
            step = self.rng.gauss(0.0, self.wander_ppm_per_s * dt_s)
            self.ppm_error = max(
                -self.max_abs_ppm, min(self.max_abs_ppm, self.ppm_error + step)
            )

    # -- discipline (applied by the sync protocol) -------------------------------
    def slew_phase(self, delta_s: float) -> None:
        """Apply a phase correction (positive delta advances the clock)."""
        self.phase_s += delta_s

    def adjust_frequency(self, delta_ppm: float,
                         max_step_ppm: Optional[float] = None) -> float:
        """Apply a frequency correction, optionally clamped.

        The clamp implements the paper's DLL-based filtering of "too
        large frequency variations", which partially defends against
        byzantine clock failures (§4.4).  Returns the applied step.
        """
        if max_step_ppm is not None:
            delta_ppm = max(-max_step_ppm, min(max_step_ppm, delta_ppm))
        self.discipline_ppm += delta_ppm
        return delta_ppm

    def offset_from(self, other: "DriftingClock") -> float:
        """Instantaneous phase difference (seconds) to another clock."""
        return self.phase_s - other.phase_s
