"""Optical building blocks of the Sirius network (paper §3).

This subpackage models every optical device the paper relies on:

* :mod:`repro.optics.awgr` — the passive Arrayed Waveguide Grating
  Router that cyclically routes wavelengths between ports (§3.1).
* :mod:`repro.optics.laser` — standard electrically-tuned DSDBR lasers,
  including the ringing effect and the dampened-tuning driver that
  brings worst-case tuning from 10 ms down to 92 ns (§3.2).
* :mod:`repro.optics.soa` — semiconductor optical amplifiers used as
  nanosecond optical gates (§3.3).
* :mod:`repro.optics.disaggregated` — the three disaggregated tunable
  laser designs: fixed laser bank, tunable laser bank and comb laser
  (§3.3, Fig 4).
* :mod:`repro.optics.link_budget` — insertion loss accounting and the
  laser-sharing analysis (§4.5).
* :mod:`repro.optics.ber` — bit-error-rate versus received power and
  the FEC threshold model used for Fig 8d.
"""

from repro.optics.awgr import AWGR
from repro.optics.laser import DampenedTuningDriver, TunableLaser
from repro.optics.soa import SOA, SOABank
from repro.optics.disaggregated import (
    CombLaserSource,
    DisaggregatedLaser,
    FixedLaserBank,
    TunableLaserBank,
)
from repro.optics.link_budget import LinkBudget, laser_sharing_degree
from repro.optics.ber import BERModel, FEC_BER_THRESHOLD

__all__ = [
    "AWGR",
    "TunableLaser",
    "DampenedTuningDriver",
    "SOA",
    "SOABank",
    "DisaggregatedLaser",
    "FixedLaserBank",
    "TunableLaserBank",
    "CombLaserSource",
    "LinkBudget",
    "laser_sharing_degree",
    "BERModel",
    "FEC_BER_THRESHOLD",
]
