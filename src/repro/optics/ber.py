"""Bit-error-rate versus received optical power (paper §6, Fig 8d).

The prototype's receiver achieves post-FEC error-free transmission
(BER < 1e−12) at −8 dBm of received power with standard FEC.  Fig 8d
plots pre-FEC BER against received power for four switching wavelengths,
all crossing the FEC threshold at about −8 dBm.

The model is a thermal-noise-limited PAM-4 receiver: the decision Q
factor scales linearly with received *optical* power, and

    BER = 0.75 · 0.5 · erfc(Q / √2)

(the 0.75 prefactor is the PAM-4 adjacent-level error weighting).  The
Q at the sensitivity point is calibrated so the pre-FEC BER equals the
hard-decision FEC threshold exactly at −8 dBm.  Per-wavelength
sensitivity offsets (a few tenths of a dB, as visible in Fig 8d) model
channel-dependent responsivity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

#: Hard-decision FEC threshold (7% overhead RS-FEC): pre-FEC BER below
#: this decodes to error-free (post-FEC BER < 1e-12).
FEC_BER_THRESHOLD = 3.8e-3
#: Receiver sensitivity: received power at which pre-FEC BER equals the
#: FEC threshold (§4.5/§6: −8 dBm).
SENSITIVITY_DBM = -8.0
#: Post-FEC residual BER treated as "error-free" (paper: BER < 1e-12).
ERROR_FREE_BER = 1e-15

_PAM4_PREFACTOR = 0.75


def _q_from_ber(ber: float) -> float:
    """Invert ``ber = prefactor * 0.5 * erfc(q / sqrt(2))`` for q."""
    if not 0 < ber < _PAM4_PREFACTOR * 0.5:
        raise ValueError(f"BER {ber} outside invertible range")
    # Bisection: erfc is monotone decreasing in q.
    lo, hi = 0.0, 20.0
    target = 2.0 * ber / _PAM4_PREFACTOR
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if math.erfc(mid / math.sqrt(2.0)) > target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


@dataclass
class BERModel:
    """Pre/post-FEC BER of a 50 Gb/s PAM-4 burst-mode link.

    Parameters
    ----------
    sensitivity_dbm:
        Received power at which pre-FEC BER hits the FEC threshold.
    channel_offsets_db:
        Optional per-wavelength sensitivity offsets; channel ``k`` needs
        ``sensitivity_dbm + offset[k]`` to reach the threshold.  Defaults
        to the four slightly-spread channels of Fig 8d.
    """

    sensitivity_dbm: float = SENSITIVITY_DBM
    fec_threshold: float = FEC_BER_THRESHOLD
    channel_offsets_db: Sequence[float] = field(
        default_factory=lambda: (0.0, 0.15, -0.1, 0.25)
    )
    _q_at_sensitivity: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._q_at_sensitivity = _q_from_ber(self.fec_threshold)

    # -- pre-FEC -----------------------------------------------------------
    def pre_fec_ber(self, received_dbm: float, channel: int = 0) -> float:
        """Pre-FEC BER at ``received_dbm`` for the given wavelength channel.

        Q scales linearly with received optical power (thermal-noise
        limit), i.e. by ``10^(ΔdB/10)``.
        """
        offset = self._offset(channel)
        delta_db = received_dbm - (self.sensitivity_dbm + offset)
        q = self._q_at_sensitivity * 10.0 ** (delta_db / 10.0)
        ber = _PAM4_PREFACTOR * 0.5 * math.erfc(q / math.sqrt(2.0))
        return max(ber, 1e-300)

    # -- post-FEC ----------------------------------------------------------
    def post_fec_ber(self, received_dbm: float, channel: int = 0) -> float:
        """Post-FEC BER: error-free below threshold, steep cliff above.

        Hard-decision FEC has a sharp waterfall: below the threshold the
        output is effectively error free; above it the code fails and
        the output BER approaches the input BER.
        """
        pre = self.pre_fec_ber(received_dbm, channel)
        if pre <= self.fec_threshold:
            return ERROR_FREE_BER
        return pre

    def error_free(self, received_dbm: float, channel: int = 0) -> bool:
        """Whether the link is post-FEC error-free at this power."""
        return self.post_fec_ber(received_dbm, channel) <= 1e-12

    def sensitivity_for_channel(self, channel: int) -> float:
        """Received power (dBm) at which ``channel`` hits the FEC threshold."""
        return self.sensitivity_dbm + self._offset(channel)

    # -- Fig 8d curve generation ------------------------------------------
    def ber_curve(self, channel: int = 0, power_range_dbm=(-10.0, -2.0),
                  n_points: int = 33) -> Dict[str, List[float]]:
        """``(received power, log10 BER)`` series for one channel (Fig 8d)."""
        lo, hi = power_range_dbm
        if hi <= lo:
            raise ValueError("power range must be increasing")
        powers = [lo + (hi - lo) * k / (n_points - 1) for k in range(n_points)]
        return {
            "received_dbm": powers,
            "log10_ber": [
                math.log10(self.pre_fec_ber(p, channel)) for p in powers
            ],
        }

    def _offset(self, channel: int) -> float:
        if channel < 0:
            raise ValueError(f"channel must be non-negative, got {channel}")
        if not self.channel_offsets_db:
            return 0.0
        return self.channel_offsets_db[channel % len(self.channel_offsets_db)]


def expected_bit_errors(ber: float, n_bits: float) -> float:
    """Expected number of bit errors over ``n_bits`` at error rate ``ber``."""
    if not 0 <= ber <= 1:
        raise ValueError(f"BER must be in [0, 1], got {ber}")
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    return ber * n_bits
