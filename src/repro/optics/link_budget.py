"""Optical link-budget and laser-sharing analysis (paper §4.5).

The lightpath in Sirius is: laser → (optional split across shared
transceivers) → modulator & coupling → AWGR grating → receiver.  The
receiver achieves post-FEC error-free operation down to a *sensitivity*
of −8 dBm (0.16 mW).  The paper's numbers:

* 100-port gratings: ≤ 6 dB insertion loss,
* fibre coupling + modulator losses: 7 dB,
* engineering margin: 2 dB,

so a laser must deliver 7 dBm (5 mW) per transceiver.  Since tunable
lasers emit 16 dBm (40 mW), one laser can be split across 8 transceivers
— a rack with 256 uplinks needs only 32 tunable laser chips (§4.5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import db_ratio, dbm_to_mw

#: Receiver sensitivity for post-FEC error-free operation (§4.5, Fig 8d).
RECEIVER_SENSITIVITY_DBM = -8.0
#: Paper's combined fibre-coupling + modulator loss budget.
COUPLING_AND_MODULATOR_LOSS_DB = 7.0
#: Paper's engineering margin.
DEFAULT_MARGIN_DB = 2.0
#: Output power of commercial tunable lasers and the paper's prototypes.
LASER_OUTPUT_DBM = 16.0


@dataclass
class LinkBudget:
    """End-to-end optical power accounting for one Sirius lightpath.

    Parameters default to the paper's §4.5 budget.
    """

    laser_output_dbm: float = LASER_OUTPUT_DBM
    grating_loss_db: float = 6.0
    coupling_loss_db: float = COUPLING_AND_MODULATOR_LOSS_DB
    margin_db: float = DEFAULT_MARGIN_DB
    receiver_sensitivity_dbm: float = RECEIVER_SENSITIVITY_DBM

    def __post_init__(self) -> None:
        for name in ("grating_loss_db", "coupling_loss_db", "margin_db"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")

    @property
    def total_loss_db(self) -> float:
        """Sum of all losses plus margin along the lightpath."""
        return self.grating_loss_db + self.coupling_loss_db + self.margin_db

    @property
    def required_launch_dbm(self) -> float:
        """Minimum per-transceiver laser power for error-free operation.

        With the paper's defaults this is 7 dBm (5 mW):

        >>> LinkBudget().required_launch_dbm
        7.0
        """
        return self.receiver_sensitivity_dbm + self.total_loss_db

    @property
    def required_launch_mw(self) -> float:
        return dbm_to_mw(self.required_launch_dbm)

    def received_power_dbm(self, launch_dbm: float) -> float:
        """Power reaching the receiver for a given launch power.

        The margin is *not* subtracted here: it models headroom, not a
        physical loss.
        """
        return launch_dbm - self.grating_loss_db - self.coupling_loss_db

    def closes(self, launch_dbm: float) -> bool:
        """Whether the link closes (including margin) at ``launch_dbm``."""
        return launch_dbm >= self.required_launch_dbm

    def headroom_db(self, launch_dbm: float) -> float:
        """Power headroom above the minimum (negative if link fails)."""
        return launch_dbm - self.required_launch_dbm

    def max_sharing_degree(self, tolerance_db: float = 0.05) -> int:
        """Transceivers one laser can feed via an ideal power splitter.

        Splitting across ``k`` outputs costs ``10·log10(k)`` dB; the
        largest ``k`` keeping the per-output power above the required
        launch power.  ``tolerance_db`` absorbs sub-0.1 dB rounding (the
        paper quotes round powers: 16 dBm = 40 mW, 7 dBm = 5 mW, hence
        8-way sharing).  With the paper's defaults: 8.
        """
        budget_db = self.laser_output_dbm - self.required_launch_dbm
        if budget_db < -tolerance_db:
            return 0
        return int(10.0 ** ((budget_db + tolerance_db) / 10.0))


def laser_sharing_degree(laser_output_dbm: float = LASER_OUTPUT_DBM,
                         budget: LinkBudget = None) -> int:
    """Number of transceivers a single laser chip can drive (§4.5).

    >>> laser_sharing_degree()
    8
    """
    if budget is None:
        budget = LinkBudget(laser_output_dbm=laser_output_dbm)
    else:
        budget = LinkBudget(
            laser_output_dbm=laser_output_dbm,
            grating_loss_db=budget.grating_loss_db,
            coupling_loss_db=budget.coupling_loss_db,
            margin_db=budget.margin_db,
            receiver_sensitivity_dbm=budget.receiver_sensitivity_dbm,
        )
    return budget.max_sharing_degree()


def lasers_per_node(n_uplinks: int, sharing_degree: int = None,
                    n_spares: int = 0) -> int:
    """Tunable laser chips needed for a node with ``n_uplinks`` uplinks.

    The paper's example: a rack with 256 uplinks and 8-way sharing needs
    32 chips (plus spares for fault tolerance).

    >>> lasers_per_node(256)
    32
    """
    if n_uplinks <= 0:
        raise ValueError(f"n_uplinks must be positive, got {n_uplinks}")
    if sharing_degree is None:
        sharing_degree = LinkBudget().max_sharing_degree()
    if sharing_degree <= 0:
        raise ValueError(f"sharing degree must be positive, got {sharing_degree}")
    return math.ceil(n_uplinks / sharing_degree) + n_spares


def splitter_loss_db(n_way: int) -> float:
    """Power loss (dB) of an ideal 1:N splitter used for laser sharing."""
    if n_way <= 0:
        raise ValueError(f"n_way must be positive, got {n_way}")
    return db_ratio(n_way)
