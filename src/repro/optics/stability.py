"""Wavelength stability and temperature control (paper §5).

A laser's emission wavelength drifts with chip temperature — around
0.1 nm/°C for InP DFB/DSDBR structures.  Wavelength-routed networks
live or die by this: the AWGR only routes a channel correctly while the
laser stays inside the grating passband (roughly ±30 % of the channel
spacing for a standard Gaussian-passband AWG).  That is why "much of
the power consumption for the tunable laser is due to the need for a
temperature controller to ensure wavelength stability and could be
reduced significantly with more efficient cooling" (§5).

This module quantifies the loop: ambient swing → wavelength drift →
passband margin → required temperature control tightness → TEC power,
reproducing the §5 argument that cooling, not photonics, dominates the
tunable laser's power budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import (
    GIGAHERTZ,
    ITU_GRID_SPACING_GHZ,
    NANOMETRE,
    SPEED_OF_LIGHT_VACUUM,
)

#: Typical InP laser wavelength-temperature coefficient (nm per °C).
WAVELENGTH_DRIFT_NM_PER_C = 0.1
#: Fraction of the channel spacing usable as passband margin (one side).
DEFAULT_PASSBAND_FRACTION = 0.3


def channel_spacing_nm(spacing_ghz: float = ITU_GRID_SPACING_GHZ,
                       centre_nm: float = 1550.0) -> float:
    """Channel spacing in nm at the C-band centre.

    50 GHz at 1550 nm is ~0.4 nm.
    """
    if spacing_ghz <= 0:
        raise ValueError("spacing must be positive")
    centre_freq_ghz = SPEED_OF_LIGHT_VACUUM / (centre_nm * NANOMETRE) / GIGAHERTZ
    lo = SPEED_OF_LIGHT_VACUUM / (
        (centre_freq_ghz + spacing_ghz / 2) * GIGAHERTZ
    ) / NANOMETRE
    hi = SPEED_OF_LIGHT_VACUUM / (
        (centre_freq_ghz - spacing_ghz / 2) * GIGAHERTZ
    ) / NANOMETRE
    return hi - lo


@dataclass(frozen=True)
class StabilityBudget:
    """Wavelength stability requirement for AWGR routing.

    Parameters
    ----------
    spacing_ghz:
        Grid spacing (50 GHz default).
    passband_fraction:
        Usable single-sided passband as a fraction of the spacing.
    drift_nm_per_c:
        Laser wavelength-temperature coefficient.
    """

    spacing_ghz: float = ITU_GRID_SPACING_GHZ
    passband_fraction: float = DEFAULT_PASSBAND_FRACTION
    drift_nm_per_c: float = WAVELENGTH_DRIFT_NM_PER_C

    def __post_init__(self) -> None:
        if self.spacing_ghz <= 0:
            raise ValueError("spacing must be positive")
        if not 0 < self.passband_fraction < 0.5:
            raise ValueError("passband fraction must be in (0, 0.5)")
        if self.drift_nm_per_c <= 0:
            raise ValueError("drift coefficient must be positive")

    @property
    def passband_margin_nm(self) -> float:
        """Single-sided wavelength margin before routing errors."""
        return self.passband_fraction * channel_spacing_nm(self.spacing_ghz)

    @property
    def max_temperature_error_c(self) -> float:
        """Tightest temperature excursion the laser may experience.

        With 50 GHz spacing and 0.1 nm/°C this is ~1.2 °C — why every
        tunable laser ships with an active temperature controller.
        """
        return self.passband_margin_nm / self.drift_nm_per_c

    def stays_in_passband(self, temperature_error_c: float) -> bool:
        """Whether a given temperature excursion keeps routing correct."""
        if temperature_error_c < 0:
            raise ValueError("temperature error is a magnitude (>= 0)")
        return temperature_error_c <= self.max_temperature_error_c

    def drift_nm(self, temperature_error_c: float) -> float:
        """Wavelength drift at a given temperature excursion."""
        if temperature_error_c < 0:
            raise ValueError("temperature error is a magnitude (>= 0)")
        return temperature_error_c * self.drift_nm_per_c


@dataclass(frozen=True)
class TecPowerModel:
    """Thermo-electric cooler power vs control tightness.

    A TEC pumping heat across ``delta_t_c`` with a Peltier efficiency
    penalty draws roughly ``base + k·ΔT`` watts; tighter setpoint
    control (smaller allowed error) also raises the duty cycle.  The
    §5 observation encoded: at datacenter ambients the TEC accounts for
    the bulk of the tunable laser's 3.8 W.
    """

    base_power_w: float = 0.4
    watts_per_degree: float = 0.08
    #: Control overhead: scales inversely with the allowed error.
    control_constant_w_c: float = 0.5

    def power_w(self, ambient_swing_c: float,
                allowed_error_c: float) -> float:
        """TEC power for a given ambient swing and control tightness."""
        if ambient_swing_c < 0:
            raise ValueError("ambient swing must be non-negative")
        if allowed_error_c <= 0:
            raise ValueError("allowed error must be positive")
        return (
            self.base_power_w
            + self.watts_per_degree * ambient_swing_c
            + self.control_constant_w_c / allowed_error_c
        )

    def laser_power_breakdown(self, ambient_swing_c: float = 25.0,
                              budget: StabilityBudget = None,
                              photonics_w: float = 1.0) -> dict:
        """The §5 story: cooling dominates the tunable laser's power.

        Returns the photonics/cooling split; with defaults the total
        lands near the 3.8 W of off-the-shelf tunable lasers.
        """
        budget = budget or StabilityBudget()
        cooling = self.power_w(ambient_swing_c,
                               budget.max_temperature_error_c)
        total = photonics_w + cooling
        return {
            "photonics_w": photonics_w,
            "cooling_w": cooling,
            "total_w": total,
            "cooling_fraction": cooling / total,
        }
