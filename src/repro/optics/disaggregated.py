"""Disaggregated tunable laser designs (paper §3.3, Fig 4).

The fundamental limit on a standard tunable laser's speed is the tight
coupling between wavelength *generation* (gain section) and wavelength
*selection* (grating section).  The paper's disaggregated design splits
these into:

1. a **multi-wavelength source** generating many wavelengths at once, and
2. a **wavelength selector** that gates exactly one of them out,

so selection latency is set by nanosecond-scale SOA gates rather than by
laser ringing, and is *independent of the wavelength span*.

Three instantiations are modelled, mirroring Fig 4b-d:

* :class:`FixedLaserBank` — one fixed-wavelength laser per channel plus
  an SOA array selector and an AWG multiplexer.  Fabricated by the
  authors as a 6 mm × 8 mm InP chip with 19 SOAs achieving worst-case
  912 ps tuning.
* :class:`TunableLaserBank` — a small bank of standard tunable lasers
  operating in a pipeline: while one emits the current wavelength the
  next is already tuning to the upcoming one, hiding the tuning latency
  behind the (known, cyclic) schedule.  Needs a coupler (higher
  insertion loss) because any laser may carry any wavelength.
* :class:`CombLaserSource` — a frequency comb generates all channels on
  one chip; the SOA selector gates one out.  Higher power today, but a
  promising future option.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.optics.laser import TunableLaser
from repro.optics.soa import SOABank

#: Per-laser electrical power of a fixed-wavelength DFB laser (§5: ~1 W).
FIXED_LASER_POWER_W = 1.0
#: Per-SOA drive power when on (model parameter; only one SOA is on at once).
SOA_DRIVE_POWER_W = 0.3
#: Insertion loss of an AWG multiplexer combining the bank outputs (dB).
AWG_MUX_LOSS_DB = 3.0
#: Insertion loss of a passive N:1 coupler, higher than a multiplexer (§3.3).
COUPLER_LOSS_DB = 6.0


class DisaggregatedLaser:
    """Base class: a multi-wavelength source + SOA wavelength selector.

    Subclasses define how the source generates the wavelengths; the
    shared tuning path (gate the new channel on, gate the old one off)
    lives here.  ``tune`` latency equals the SOA bank switching latency,
    independent of the span between the source and destination channel —
    the core property the paper's custom chip demonstrates (Fig 8b).
    """

    def __init__(self, n_wavelengths: int, *, seed: Optional[int] = 0,
                 combiner_loss_db: float = AWG_MUX_LOSS_DB) -> None:
        if n_wavelengths <= 0:
            raise ValueError(f"n_wavelengths must be positive, got {n_wavelengths}")
        self.n_wavelengths = n_wavelengths
        self.selector = SOABank(n_wavelengths, seed=seed)
        self.combiner_loss_db = combiner_loss_db
        self.current_channel: Optional[int] = None
        self.settled_at = 0.0

    # -- tuning -------------------------------------------------------------
    def tune(self, channel: int, now: float = 0.0) -> float:
        """Select ``channel``; returns the selection latency in seconds."""
        if not 0 <= channel < self.n_wavelengths:
            raise ValueError(
                f"channel {channel} out of range [0, {self.n_wavelengths})"
            )
        latency = self.selector.select(channel, now)
        self.current_channel = channel
        self.settled_at = now + latency
        return latency

    def is_settled(self, now: float) -> bool:
        """Whether the output has settled by simulation time ``now``."""
        return now >= self.settled_at

    def tuning_latency(self, from_channel: int, to_channel: int) -> float:
        """Stateless worst-case latency between two channels.

        Unlike :class:`~repro.optics.laser.TunableLaser`, the result does
        not depend on the channel span.
        """
        for ch in (from_channel, to_channel):
            if not 0 <= ch < self.n_wavelengths:
                raise ValueError(f"channel {ch} out of range")
        if from_channel == to_channel:
            return 0.0
        return max(
            self.selector.soas[to_channel].rise_time_s,
            self.selector.soas[from_channel].fall_time_s,
        )

    def worst_case_tuning_latency(self) -> float:
        """Worst-case selection latency across all channel pairs."""
        return self.selector.worst_case_latency()

    # -- characteristics ------------------------------------------------------
    @property
    def power_consumption_w(self) -> float:
        raise NotImplementedError

    @property
    def source_power_dbm(self) -> float:
        """Optical power of one source channel before the selector."""
        return 16.0

    @property
    def output_power_dbm(self) -> float:
        """Optical power at the laser output, after selector gain and
        combiner loss."""
        gain = self.selector.soas[0].gain_db
        return self.source_power_dbm + gain - self.combiner_loss_db

    # -- Fig 8b-style traces ---------------------------------------------------
    def switching_trace(self, from_channel: int, to_channel: int,
                        duration_s: Optional[float] = None,
                        n_samples: int = 200) -> dict:
        """Optical intensity traces of the old and new channel during a switch.

        Returns a dict with ``times_s``, ``old_intensity`` and
        ``new_intensity`` (normalized 0..1) exhibiting the exponential
        gate fall/rise; used to regenerate Fig 8b and show the latency is
        span-independent.
        """
        import math

        if from_channel == to_channel:
            raise ValueError("switching trace requires two distinct channels")
        fall = self.selector.soas[from_channel].fall_time_s
        rise = self.selector.soas[to_channel].rise_time_s
        if duration_s is None:
            duration_s = 2.0 * max(rise, fall)
        # 10-90% rise/fall corresponds to ~2.2 time constants.
        tau_rise, tau_fall = rise / 2.2, fall / 2.2
        times = [duration_s * k / (n_samples - 1) for k in range(n_samples)]
        return {
            "times_s": times,
            "old_intensity": [math.exp(-t / tau_fall) for t in times],
            "new_intensity": [1.0 - math.exp(-t / tau_rise) for t in times],
            "latency_s": self.tuning_latency(from_channel, to_channel),
        }


class FixedLaserBank(DisaggregatedLaser):
    """Fixed laser bank + SOA selector (Fig 4b) — the fabricated design.

    One always-on fixed-wavelength laser per channel feeds the SOA
    array; an AWG multiplexes the gated outputs onto the fibre.  Simple
    lasers and drive electronics, but the laser count (and hence source
    power and cost) scales with the channel count; Sirius amortizes this
    via laser sharing across a node's transceivers (§4.5).
    """

    def __init__(self, n_wavelengths: int, *, seed: Optional[int] = 0,
                 laser_power_w: float = FIXED_LASER_POWER_W) -> None:
        super().__init__(n_wavelengths, seed=seed,
                         combiner_loss_db=AWG_MUX_LOSS_DB)
        self.laser_power_w = laser_power_w

    @property
    def power_consumption_w(self) -> float:
        """All bank lasers run continuously; one SOA is driven at a time."""
        return self.n_wavelengths * self.laser_power_w + SOA_DRIVE_POWER_W


class TunableLaserBank(DisaggregatedLaser):
    """Pipelined bank of standard tunable lasers (Fig 4c).

    With the wavelength sequence known in advance (true under Sirius'
    static cyclic schedule), laser ``k`` can tune to the *next* needed
    wavelength while laser ``k±1`` is emitting the current one.  The
    selector then switches banks in SOA time, hiding the slow tune.

    ``n_lasers`` of 2 suffices when the worst-case tune fits inside one
    slot; the paper recommends 3 (two active + one spare) for fault
    tolerance (§4.5).
    """

    def __init__(self, n_wavelengths: int, *, n_lasers: int = 3,
                 seed: Optional[int] = 0,
                 laser_factory=None) -> None:
        if n_lasers < 2:
            raise ValueError(
                "pipelining needs at least 2 lasers (one emitting, one tuning); "
                f"got {n_lasers}"
            )
        # Selector has one SOA per laser, not per wavelength.
        super().__init__(n_wavelengths, seed=seed,
                         combiner_loss_db=COUPLER_LOSS_DB)
        self.selector = SOABank(n_lasers, seed=seed)
        factory = laser_factory or (lambda: TunableLaser(n_wavelengths))
        self.lasers: List[TunableLaser] = [factory() for _ in range(n_lasers)]
        self.n_lasers = n_lasers
        self._active = 0
        self._failed = [False] * n_lasers

    def fail_laser(self, index: int) -> None:
        """Mark a laser as failed; the pipeline skips it (spare takes over)."""
        if not 0 <= index < self.n_lasers:
            raise ValueError(f"laser index {index} out of range")
        self._failed[index] = True
        if all(self._failed):
            raise RuntimeError("all lasers in the bank have failed")

    @property
    def healthy_lasers(self) -> int:
        return sum(1 for f in self._failed if not f)

    def _next_laser(self) -> int:
        idx = self._active
        for _ in range(self.n_lasers):
            idx = (idx + 1) % self.n_lasers
            if not self._failed[idx]:
                return idx
        raise RuntimeError("all lasers in the bank have failed")

    def tune(self, channel: int, now: float = 0.0) -> float:
        """Switch the output to ``channel``.

        The *next* laser in the pipeline was pre-tuned to ``channel``
        (its tuning latency was hidden in the previous slot), so the
        visible latency is only the SOA bank switch.
        """
        if not 0 <= channel < self.n_wavelengths:
            raise ValueError(f"channel {channel} out of range")
        nxt = self._next_laser()
        self.lasers[nxt].tune(channel, now)  # already settled: pre-tuned
        latency = self.selector.select(nxt, now)
        self._active = nxt
        self.current_channel = channel
        self.settled_at = now + latency
        return latency

    def pipeline_feasible(self, slot_duration_s: float) -> bool:
        """Whether pre-tuning hides the tune: worst tune must fit in a slot.

        With two active lasers, laser B has exactly one slot (while
        laser A emits) to finish tuning (§4.5: a 100 ns slot and <100 ns
        worst-case tuning make a 2-laser bank sufficient).
        """
        worst = max(
            laser.driver.tuning_latency(laser.n_wavelengths - 1)
            for laser in self.lasers
        )
        return worst <= slot_duration_s

    def tuning_latency(self, from_channel: int, to_channel: int) -> float:
        if from_channel == to_channel:
            return 0.0
        nxt = self._next_laser()
        return max(
            self.selector.soas[nxt].rise_time_s,
            self.selector.soas[self._active].fall_time_s,
        )

    @property
    def power_consumption_w(self) -> float:
        return (
            sum(laser.power_consumption_w for laser in self.lasers)
            + SOA_DRIVE_POWER_W
        )


class CombLaserSource(DisaggregatedLaser):
    """Frequency-comb source + SOA selector (Fig 4d).

    A single chip generates all the (equally spaced) wavelengths; no
    per-channel temperature control is needed.  Present-day combs draw
    more power than the other designs, modelled by
    ``comb_power_w``.
    """

    def __init__(self, n_wavelengths: int, *, seed: Optional[int] = 0,
                 comb_power_w: Optional[float] = None) -> None:
        super().__init__(n_wavelengths, seed=seed,
                         combiner_loss_db=AWG_MUX_LOSS_DB)
        # Default: ~1.5x the equivalent fixed bank, reflecting today's
        # comb efficiency deficit (§3.3).
        if comb_power_w is None:
            comb_power_w = 1.5 * n_wavelengths * FIXED_LASER_POWER_W
        self.comb_power_w = comb_power_w

    @property
    def power_consumption_w(self) -> float:
        return self.comb_power_w + SOA_DRIVE_POWER_W

    def channel_spacing_is_uniform(self) -> bool:
        """Combs guarantee equal channel spacing by construction (§3.3)."""
        return True


def compare_designs(n_wavelengths: int, slot_duration_s: float,
                    seed: int = 0) -> List[dict]:
    """Summary comparison of the three designs (power, latency, loss).

    Convenience used by examples and the design-space benchmarks.
    """
    designs: Sequence[DisaggregatedLaser] = (
        FixedLaserBank(n_wavelengths, seed=seed),
        TunableLaserBank(n_wavelengths, seed=seed),
        CombLaserSource(n_wavelengths, seed=seed),
    )
    rows = []
    for design in designs:
        row = {
            "design": type(design).__name__,
            "power_w": design.power_consumption_w,
            "worst_tuning_s": design.worst_case_tuning_latency(),
            "combiner_loss_db": design.combiner_loss_db,
        }
        if isinstance(design, TunableLaserBank):
            row["pipeline_feasible"] = design.pipeline_feasible(slot_duration_s)
        rows.append(row)
    return rows
