"""Semiconductor Optical Amplifier (SOA) gate model (paper §3.3, Fig 8a).

SOAs act as optical gates: driven with current they amplify (pass)
light, undriven they absorb (block) it, and they can transition between
the two states in sub-nanosecond timescales.  The paper's custom InP
chip integrates an array of 19 SOAs used as the wavelength selector of
the disaggregated laser; the measured worst-case switching times across
the chip are **527 ps rise (turn-on)** and **912 ps fall (turn-off)**
(Fig 8a).

The model draws per-device rise/fall times from a truncated-normal-like
distribution bounded by those worst cases, so that a CDF over the
devices of a chip reproduces the shape of Fig 8a.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.units import PICOSECOND

#: Worst-case SOA turn-on (rise) time measured on the paper's chip.
WORST_CASE_RISE_S = 527.0 * PICOSECOND
#: Worst-case SOA turn-off (fall) time measured on the paper's chip.
WORST_CASE_FALL_S = 912.0 * PICOSECOND
#: Number of SOAs on the fabricated chip (§6: "an array of 19 SOAs").
CHIP_N_SOAS = 19


def _bounded_sample(rng: random.Random, mean: float, sigma: float,
                    low: float, high: float) -> float:
    """Gaussian sample clamped by rejection into ``[low, high]``."""
    for _ in range(64):
        value = rng.gauss(mean, sigma)
        if low <= value <= high:
            return value
    return min(max(mean, low), high)


@dataclass
class SOA:
    """A single SOA optical gate.

    The gate is either *on* (amplifying, light passes) or *off*
    (absorbing, light blocked).  State transitions take
    :attr:`rise_time_s` / :attr:`fall_time_s`.
    """

    rise_time_s: float
    fall_time_s: float
    gain_db: float = 10.0
    #: Extinction ratio when off: how strongly blocked light is suppressed.
    extinction_db: float = 40.0
    is_on: bool = False
    #: Simulation time at which the most recent transition completes.
    transition_done_at: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.rise_time_s <= 0 or self.fall_time_s <= 0:
            raise ValueError("rise/fall times must be positive")

    def turn_on(self, now: float = 0.0) -> float:
        """Begin turning the gate on; returns the rise time (seconds)."""
        if self.is_on:
            return 0.0
        self.is_on = True
        self.transition_done_at = now + self.rise_time_s
        return self.rise_time_s

    def turn_off(self, now: float = 0.0) -> float:
        """Begin turning the gate off; returns the fall time (seconds)."""
        if not self.is_on:
            return 0.0
        self.is_on = False
        self.transition_done_at = now + self.fall_time_s
        return self.fall_time_s

    def transmission_db(self, now: float) -> float:
        """Gain (dB, may be negative) applied to light traversing the gate."""
        if now < self.transition_done_at:
            raise ValueError(
                "gate is mid-transition; output is undefined until "
                f"{self.transition_done_at}"
            )
        return self.gain_db if self.is_on else -self.extinction_db


class SOABank:
    """An array of SOA gates forming a wavelength selector (Fig 4b).

    Exactly one gate is on at a time; selecting channel ``j`` turns
    SOA_j on and the previously selected SOA off.  The switching latency
    of the bank is the *slower* of the turn-on and turn-off events
    (§6: "the tuning latency of the laser is thus determined by the
    slower of the SOA turn-on and turn-off events").
    """

    def __init__(self, n_soas: int = CHIP_N_SOAS, *,
                 seed: Optional[int] = 0,
                 worst_rise_s: float = WORST_CASE_RISE_S,
                 worst_fall_s: float = WORST_CASE_FALL_S) -> None:
        if n_soas <= 0:
            raise ValueError(f"n_soas must be positive, got {n_soas}")
        rng = random.Random(seed)
        self.soas: List[SOA] = []
        for _ in range(n_soas):
            rise = _bounded_sample(
                rng, 0.72 * worst_rise_s, 0.15 * worst_rise_s,
                0.35 * worst_rise_s, worst_rise_s,
            )
            fall = _bounded_sample(
                rng, 0.70 * worst_fall_s, 0.17 * worst_fall_s,
                0.30 * worst_fall_s, worst_fall_s,
            )
            self.soas.append(SOA(rise_time_s=rise, fall_time_s=fall))
        # Guarantee the worst cases are realised on every chip, matching
        # the paper's reported per-chip maxima.
        self.soas[0].rise_time_s = worst_rise_s
        self.soas[-1].fall_time_s = worst_fall_s
        self.selected: Optional[int] = None

    def __len__(self) -> int:
        return len(self.soas)

    def select(self, channel: int, now: float = 0.0) -> float:
        """Gate channel ``channel`` on (and the previous one off).

        Returns the switching latency: the slower of the new gate's
        turn-on and the old gate's turn-off.
        """
        if not 0 <= channel < len(self.soas):
            raise ValueError(f"channel {channel} out of range [0, {len(self.soas)})")
        if channel == self.selected:
            return 0.0
        on_latency = self.soas[channel].turn_on(now)
        off_latency = 0.0
        if self.selected is not None:
            off_latency = self.soas[self.selected].turn_off(now)
        self.selected = channel
        return max(on_latency, off_latency)

    def worst_case_latency(self) -> float:
        """Worst possible bank switching latency over all transitions."""
        worst_on = max(soa.rise_time_s for soa in self.soas)
        worst_off = max(soa.fall_time_s for soa in self.soas)
        return max(worst_on, worst_off)

    def rise_times(self) -> List[float]:
        """Per-gate turn-on times (seconds) — the Fig 8a rise population."""
        return [soa.rise_time_s for soa in self.soas]

    def fall_times(self) -> List[float]:
        """Per-gate turn-off times (seconds) — the Fig 8a fall population."""
        return [soa.fall_time_s for soa in self.soas]

    def transition_cdf(self) -> Tuple[List[float], List[float], List[float]]:
        """CDF data reproducing Fig 8a.

        Returns ``(sorted_rise_s, sorted_fall_s, cdf_levels)`` where the
        levels run from 1/n to 1.
        """
        rises = sorted(self.rise_times())
        falls = sorted(self.fall_times())
        levels = [(k + 1) / len(self.soas) for k in range(len(self.soas))]
        return rises, falls, levels
