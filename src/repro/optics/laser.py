"""Electrically-tuned semiconductor laser model (paper §3.2, Fig 3b-c).

A standard tunable laser couples a *gain* section (which generates
light) with a *grating* section (which selects the emitted wavelength).
Each output wavelength ``λ_i`` is associated with a tuning current
``I_i``; switching from ``λ_i`` to ``λ_j`` requires changing the grating
current, which perturbs the gain section and causes a *ringing effect*:
the output oscillates across wavelengths adjacent to the target before
settling.

Two driver models are provided:

* :class:`NaiveTuningDriver` — a single current step, as in off-the-shelf
  DSDBR drive circuitry.  Settling takes milliseconds (the paper's
  stock lasers tune across 112 wavelengths in ~10 ms).
* :class:`DampenedTuningDriver` — the paper's custom PCB applies the
  current in a series of steps, intentionally overshooting then
  undershooting the destination current before settling [26].  The
  authors measure a *median tuning latency of 14 ns* and a *worst case
  of 92 ns* across all 12,432 ordered wavelength pairs of the 112-channel
  laser.  The model here is calibrated to reproduce exactly those
  statistics: settle time grows quadratically with the wavelength span
  (larger span → larger current swing → longer settling), with
  coefficients fitted so that the median ordered-pair latency is 14 ns
  and the worst case (span 111) is 92 ns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.units import MILLISECOND, NANOSECOND

#: Number of wavelengths of the paper's DSDBR laser (§3.2).
DSDBR_N_WAVELENGTHS = 112

# Calibration of the dampened-tuning settle-time curve (see module
# docstring): settle(d) = _DAMPENED_BASE_NS + _DAMPENED_QUAD_NS * d^2,
# where d is the channel span.  Fitted so the median over all ordered
# pairs of a 112-channel laser is 14 ns (median span 33) and the worst
# case (span 111) is 92 ns.
_DAMPENED_WORST_NS = 92.0
_DAMPENED_MEDIAN_NS = 14.0
_MEDIAN_SPAN = 33
_WORST_SPAN = DSDBR_N_WAVELENGTHS - 1
_DAMPENED_QUAD_NS = (_DAMPENED_WORST_NS - _DAMPENED_MEDIAN_NS) / (
    _WORST_SPAN ** 2 - _MEDIAN_SPAN ** 2
)
_DAMPENED_BASE_NS = _DAMPENED_MEDIAN_NS - _DAMPENED_QUAD_NS * _MEDIAN_SPAN ** 2


class NaiveTuningDriver:
    """Single-step current driver: milliseconds to settle.

    Off-the-shelf electrical drive circuitry is not designed for fast
    tuning; the ringing takes milliseconds to die out regardless of the
    span (paper §3.2: 10 ms for the stock DSDBR).
    """

    def __init__(self, settle_time_s: float = 10.0 * MILLISECOND) -> None:
        if settle_time_s <= 0:
            raise ValueError(f"settle time must be positive, got {settle_time_s}")
        self.settle_time_s = settle_time_s

    def tuning_latency(self, span: int) -> float:
        """Settle time (seconds) for a tune spanning ``span`` channels."""
        if span < 0:
            raise ValueError(f"span must be non-negative, got {span}")
        if span == 0:
            return 0.0
        return self.settle_time_s

    def current_steps(self, i_from: float, i_to: float) -> List[float]:
        """The naive driver applies the target current in one step."""
        return [i_to]


class DampenedTuningDriver:
    """Multi-step overshoot/undershoot driver (paper §3.2, Fig 3c).

    Instead of stepping the tuning current directly from ``I_i`` to
    ``I_j``, the driver overshoots and then undershoots the destination
    current before settling on it, actively damping the ringing.
    """

    #: Relative magnitude of the first overshoot past the target current.
    overshoot_fraction: float = 0.35
    #: Relative magnitude of the corrective undershoot.
    undershoot_fraction: float = 0.12

    def __init__(self, base_ns: float = _DAMPENED_BASE_NS,
                 quad_ns: float = _DAMPENED_QUAD_NS) -> None:
        self.base_ns = base_ns
        self.quad_ns = quad_ns

    def tuning_latency(self, span: int) -> float:
        """Settle time (seconds) for a tune spanning ``span`` channels.

        Quadratic in the span, calibrated to the paper's measured
        median (14 ns) and worst case (92 ns) over the 12,432 ordered
        wavelength pairs of a 112-channel laser.
        """
        if span < 0:
            raise ValueError(f"span must be non-negative, got {span}")
        if span == 0:
            return 0.0
        return (self.base_ns + self.quad_ns * span * span) * NANOSECOND

    def current_steps(self, i_from: float, i_to: float) -> List[float]:
        """Sequence of drive currents: overshoot, undershoot, settle."""
        delta = i_to - i_from
        return [
            i_to + self.overshoot_fraction * delta,
            i_to - self.undershoot_fraction * delta,
            i_to,
        ]


@dataclass
class TunableLaser:
    """A grating-tuned semiconductor laser with a pluggable driver.

    Parameters
    ----------
    n_wavelengths:
        Number of wavelength channels the laser can emit (112 for the
        paper's DSDBR).
    driver:
        Tuning driver; defaults to the dampened driver of §3.2.
    output_power_dbm:
        Emitted optical power.  Commercial tunable lasers (and the
        paper's prototypes) output 16 dBm / 40 mW (§4.5).
    power_consumption_w:
        Electrical power draw; off-the-shelf tunable lasers draw ~3.8 W
        versus ~1 W for a fixed laser (§5).
    """

    n_wavelengths: int = DSDBR_N_WAVELENGTHS
    driver: object = field(default_factory=DampenedTuningDriver)
    output_power_dbm: float = 16.0
    power_consumption_w: float = 3.8
    current_channel: int = 0
    #: Time at which the most recent tune completes (simulation seconds).
    settled_at: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.n_wavelengths <= 0:
            raise ValueError(
                f"n_wavelengths must be positive, got {self.n_wavelengths}"
            )
        if not 0 <= self.current_channel < self.n_wavelengths:
            raise ValueError(
                f"current_channel {self.current_channel} out of range"
            )

    # -- tuning ------------------------------------------------------------
    def tune(self, channel: int, now: float = 0.0) -> float:
        """Begin tuning to ``channel`` at time ``now``.

        Returns the tuning latency in seconds; :attr:`settled_at` is set
        to ``now + latency``.  Tuning to the current channel is free.
        """
        if not 0 <= channel < self.n_wavelengths:
            raise ValueError(
                f"channel {channel} out of range [0, {self.n_wavelengths})"
            )
        span = abs(channel - self.current_channel)
        latency = self.driver.tuning_latency(span)
        self.current_channel = channel
        self.settled_at = now + latency
        return latency

    def is_settled(self, now: float) -> bool:
        """Whether the laser output has settled by time ``now``."""
        return now >= self.settled_at

    def tuning_latency(self, from_channel: int, to_channel: int) -> float:
        """Latency (seconds) of a tune between two channels, statelessly."""
        for ch in (from_channel, to_channel):
            if not 0 <= ch < self.n_wavelengths:
                raise ValueError(f"channel {ch} out of range")
        return self.driver.tuning_latency(abs(to_channel - from_channel))

    # -- statistics over all pairs (paper §3.2) -----------------------------
    def all_pair_latencies(self) -> List[float]:
        """Tuning latencies (seconds) over all ordered channel pairs.

        For the 112-channel DSDBR this is the 12,432-pair population
        whose median (14 ns) and maximum (92 ns) the paper reports.
        """
        return [
            self.driver.tuning_latency(abs(i - j))
            for i in range(self.n_wavelengths)
            for j in range(self.n_wavelengths)
            if i != j
        ]

    # -- ringing waveform (Fig 8b-style traces) ------------------------------
    def ring_waveform(self, from_channel: int, to_channel: int,
                      duration_s: Optional[float] = None,
                      n_samples: int = 200) -> Tuple[List[float], List[float]]:
        """Simulated wavelength-deviation trace during a tune.

        Returns ``(times_s, deviation_channels)`` where the deviation is
        the instantaneous offset (in channel widths) of the emitted
        wavelength from the target channel.  The trace is a damped
        oscillation whose time constant is set so the deviation falls
        below half a channel width exactly at the driver's settle time —
        the point at which the laser is usable for data transmission.
        """
        latency = self.tuning_latency(from_channel, to_channel)
        if latency == 0.0:
            times = [0.0] * n_samples
            return times, [0.0] * n_samples
        span = to_channel - from_channel
        if duration_s is None:
            duration_s = 1.5 * latency
        # Deviation envelope: |span| * exp(-t/tau); settled when < 0.5 channel.
        tau = latency / math.log(2.0 * abs(span))if abs(span) > 0.5 else latency
        omega = 2.0 * math.pi * 4.0 / latency  # a few oscillations per settle
        times = [duration_s * k / (n_samples - 1) for k in range(n_samples)]
        deviation = [
            -span * math.exp(-t / tau) * math.cos(omega * t) for t in times
        ]
        return times, deviation
