"""Arrayed Waveguide Grating Router (AWGR) model (paper §3.1, Fig 3a).

An AWGR is a fully passive optical component with ``n`` input and ``n``
output ports.  Light entering input port ``i`` on wavelength channel
``w`` is diffracted to a fixed output port determined only by ``(i, w)``
— the device consumes no power, has no moving parts, and is agnostic to
the modulation format of the light.

The routing function is *cyclic*: the paper's Fig 3a shows a 4-port
example in which wavelength ``j`` incident on port ``i`` appears on
output port ``(i + j) mod n`` (with the paper's 1-based labels,
``W[i,j]`` lands on output ``((i - 1 + j - 1) mod n) + 1``).  This module
uses 0-based ports and channels throughout.

Key property exploited by Sirius: for any fixed input port, the map
wavelength→output-port is a bijection, and for any fixed wavelength, the
map input-port→output-port is a bijection.  Together these make the
single layer of AWGRs a contention-free physical-layer switch provided
no two inputs address the same output at the same instant — which is
what Sirius' static schedule guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class AWGR:
    """A cyclic ``n_ports`` × ``n_ports`` arrayed waveguide grating router.

    Parameters
    ----------
    n_ports:
        Number of input (and output) ports.  Commercial devices offer
        ~100 ports; 512-port prototypes exist (paper §3.1).
    insertion_loss_db:
        Optical power lost traversing the device.  The paper quotes a
        maximum 6 dB insertion loss for 100-port gratings (§4.5).
    """

    n_ports: int
    insertion_loss_db: float = 6.0
    #: Monotonically increasing count of routed signals (diagnostics).
    routed_count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.n_ports <= 0:
            raise ValueError(f"n_ports must be positive, got {self.n_ports}")
        if self.insertion_loss_db < 0:
            raise ValueError(
                f"insertion loss cannot be negative, got {self.insertion_loss_db}"
            )

    # -- routing ----------------------------------------------------------
    def output_port(self, input_port: int, channel: int) -> int:
        """Output port for light on ``channel`` entering ``input_port``.

        Implements the cyclic routing function ``(input + channel) mod n``.
        """
        self._check_port(input_port)
        self._check_channel(channel)
        return (input_port + channel) % self.n_ports

    def channel_for(self, input_port: int, output_port: int) -> int:
        """Wavelength channel that routes ``input_port`` → ``output_port``.

        This is the inverse of :meth:`output_port` in its channel
        argument; Sirius nodes use it to pick the laser wavelength that
        reaches a desired destination.
        """
        self._check_port(input_port)
        self._check_port(output_port)
        return (output_port - input_port) % self.n_ports

    def route(self, input_port: int, channel: int, power_mw: float = 1.0
              ) -> Tuple[int, float]:
        """Route a signal, returning ``(output_port, output_power_mw)``.

        The output power is the input power attenuated by the device's
        insertion loss.
        """
        if power_mw < 0:
            raise ValueError(f"power must be non-negative, got {power_mw}")
        port = self.output_port(input_port, channel)
        self.routed_count += 1
        return port, power_mw * 10.0 ** (-self.insertion_loss_db / 10.0)

    # -- matrices (Fig 3a) --------------------------------------------------
    def routing_matrix(self) -> List[List[int]]:
        """Full routing table: ``matrix[i][w]`` is the output port.

        Rendering this table for ``n_ports = 4`` reproduces the paper's
        Fig 3a wavelength-routing illustration.
        """
        return [
            [self.output_port(i, w) for w in range(self.n_ports)]
            for i in range(self.n_ports)
        ]

    def output_assignment(self) -> List[List[Tuple[int, int]]]:
        """For each output port, the ``(input_port, channel)`` pairs landing on it.

        Every output port receives exactly ``n_ports`` wavelengths, one
        from each input port — the "all-to-all connectivity" property of
        §3.1.
        """
        table: List[List[Tuple[int, int]]] = [[] for _ in range(self.n_ports)]
        for i in range(self.n_ports):
            for w in range(self.n_ports):
                table[self.output_port(i, w)].append((i, w))
        return table

    # -- properties -----------------------------------------------------------
    def is_contention_free(self, assignments: Dict[int, int]) -> bool:
        """Whether a set of simultaneous transmissions avoids output collisions.

        ``assignments`` maps input port → wavelength channel for every
        concurrently transmitting input.  Returns ``True`` iff no two
        inputs are routed to the same output port.
        """
        outputs = [self.output_port(i, w) for i, w in assignments.items()]
        return len(set(outputs)) == len(outputs)

    @property
    def power_consumption_w(self) -> float:
        """AWGRs are fully passive: they consume no power (§3.1)."""
        return 0.0

    # -- validation helpers -----------------------------------------------
    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.n_ports:
            raise ValueError(f"port {port} out of range [0, {self.n_ports})")

    def _check_channel(self, channel: int) -> None:
        if not 0 <= channel < self.n_ports:
            raise ValueError(
                f"channel {channel} out of range [0, {self.n_ports}) "
                "(an n-port AWGR cycles over n wavelength channels)"
            )
