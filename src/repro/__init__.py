"""repro — a reproduction of *Sirius: A Flat Datacenter Network with
Nanosecond Optical Switching* (Ballani et al., SIGCOMM 2020).

The library rebuilds, in Python, every system the paper describes:

* the optical substrate — AWGR gratings, tunable lasers (standard and
  disaggregated), SOA gates, link budgets and BER models
  (:mod:`repro.optics`);
* the flat topology and the folded-Clos baselines
  (:mod:`repro.topology`);
* Sirius' network stack — static cyclic scheduling, Valiant
  load-balanced routing, the request/grant congestion-control protocol
  and an epoch-synchronous cell-level simulator (:mod:`repro.core`);
* physical-layer mechanisms — phase-caching CDR and the guardband
  budget (:mod:`repro.phy`);
* decentralized time synchronization (:mod:`repro.sync`);
* workload generators matching the paper's evaluation (§2.2, §7)
  (:mod:`repro.workload`);
* the idealized electrical baselines as a max-min-fair fluid simulator
  (:mod:`repro.sim`);
* power/cost/scaling analysis models (:mod:`repro.analysis`);
* a software surrogate of the four-node prototype (:mod:`repro.testbed`).

Quickstart::

    from repro import SiriusNetwork, FlowWorkload, WorkloadConfig

    net = SiriusNetwork(n_nodes=32, grating_ports=8)
    workload = FlowWorkload(WorkloadConfig(
        n_nodes=32, load=0.5,
        node_bandwidth_bps=net.reference_node_bandwidth_bps,
    ))
    result = net.run(workload.generate(5_000))
    print(result.normalized_goodput, result.fct_percentile(99))
"""

from repro.core import (
    Cell,
    FailureDetector,
    FailurePlan,
    ParallelSiriusPlanes,
    RackDeployment,
    Telemetry,
    CongestionConfig,
    CyclicSchedule,
    Flow,
    ReorderBuffer,
    SimulationResult,
    SiriusNetwork,
    SiriusNode,
    SlotTiming,
    ValiantRouter,
)
from repro.obs import (
    EventTracer,
    MetricsRegistry,
    Observation,
    PhaseProfiler,
)
from repro.optics import (
    AWGR,
    BERModel,
    CombLaserSource,
    FixedLaserBank,
    LinkBudget,
    SOABank,
    TunableLaser,
    TunableLaserBank,
)
from repro.phy import GuardbandBudget, PhaseCachingCDR
from repro.sim import FluidNetwork, SlotLevelSirius, pod_map_for
from repro.sync import DriftingClock, SyncProtocol
from repro.testbed import PrototypeRig
from repro.topology import ClosTopology, SiriusTopology
from repro.workload import (
    FlowWorkload,
    PacketTraceModel,
    TrafficPattern,
    WorkloadConfig,
)

__version__ = "1.0.0"

__all__ = [
    "AWGR",
    "BERModel",
    "Cell",
    "ClosTopology",
    "FailureDetector",
    "FailurePlan",
    "ParallelSiriusPlanes",
    "RackDeployment",
    "Telemetry",
    "CombLaserSource",
    "CongestionConfig",
    "CyclicSchedule",
    "DriftingClock",
    "EventTracer",
    "FixedLaserBank",
    "Flow",
    "FlowWorkload",
    "FluidNetwork",
    "GuardbandBudget",
    "LinkBudget",
    "MetricsRegistry",
    "Observation",
    "PacketTraceModel",
    "PhaseCachingCDR",
    "PhaseProfiler",
    "PrototypeRig",
    "ReorderBuffer",
    "SOABank",
    "SimulationResult",
    "SiriusNetwork",
    "SiriusNode",
    "SiriusTopology",
    "SlotLevelSirius",
    "SlotTiming",
    "SyncProtocol",
    "TrafficPattern",
    "TunableLaser",
    "TunableLaserBank",
    "ValiantRouter",
    "WorkloadConfig",
    "pod_map_for",
    "__version__",
]
