"""E8 — Fig 8c: burst waveforms with the 3.84 ns guardband.

Paper: consecutive cell slots separated by a 3.84 ns end-to-end
reconfiguration window (laser tuning + CDR + preamble), enabling slots
as short as 38.4 ns.
"""

from _harness import emit_table

from repro import GuardbandBudget


def test_fig8c_burst_waveform(benchmark):
    budget = GuardbandBudget()
    slot = budget.min_slot_s()
    wave = benchmark(
        lambda: budget.burst_waveform(slot_duration_s=slot, n_slots=3)
    )
    emit_table(
        "Fig 8c — guardband composition (Sirius v2)",
        ["component", "measured (ns)", "paper"],
        [
            ("laser tuning", budget.laser_tuning_s / 1e-9, "0.912"),
            ("CDR lock", budget.cdr_lock_s / 1e-9, "sub-ns"),
            ("sync error", budget.sync_error_s / 1e-9, "±5 ps grade"),
            ("preamble", budget.preamble_s / 1e-9, "-"),
            ("total guardband", budget.total_s / 1e-9, "3.84"),
            ("min slot", slot / 1e-9, "38.4"),
        ],
    )
    assert abs(budget.total_s - 3.84e-9) < 1e-12
    assert budget.meets_target
    # The waveform dips to ~0 once per slot (the guardband).
    dips = sum(
        1 for prev, cur in zip(wave["intensity"], wave["intensity"][1:])
        if prev >= 0.1 > cur
    )
    assert dips == 3
