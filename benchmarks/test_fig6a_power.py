"""E11 + E20 — Fig 6a and the headline power claim.

Paper: with tunable lasers at 3–5× the power of fixed lasers, Sirius
consumes only 23–26 % of an equivalent non-blocking ESN — "up to
74–77 % lower power" (abstract, §5).
"""

from _harness import emit_table

from repro.analysis import NetworkPowerModel, SiriusPowerModel

PAPER = {1: None, 3: 0.23, 5: 0.26, 7: None, 10: None, 20: None}


def test_fig6a_power_ratio(benchmark):
    sirius = SiriusPowerModel()
    esn = NetworkPowerModel()
    rows = benchmark(lambda: sirius.fig6a_series(esn=esn))
    emit_table(
        "Fig 6a — Sirius/ESN power vs tunable-laser overhead",
        ["tunable/fixed laser power", "measured ratio", "paper"],
        [
            (r["laser_overhead"], r["power_ratio"],
             PAPER[r["laser_overhead"]] or "-")
            for r in rows
        ],
    )
    by_overhead = {r["laser_overhead"]: r["power_ratio"] for r in rows}
    assert abs(by_overhead[3] - 0.23) < 0.02
    assert abs(by_overhead[5] - 0.26) < 0.03
    ratios = [r["power_ratio"] for r in rows]
    assert ratios == sorted(ratios)

    savings = sirius.headline_power_savings(esn)
    emit_table(
        "Headline — power savings vs non-blocking ESN",
        ["laser overhead", "measured savings", "paper"],
        [
            ("3x", savings["savings_at_3x"], "77%"),
            ("5x", savings["savings_at_5x"], "74%"),
        ],
    )
    assert savings["savings_at_3x"] > 0.72
    assert savings["savings_at_5x"] > 0.70
