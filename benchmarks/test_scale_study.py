"""Extension — scale study: reduced-scale artifacts shrink with N.

EXPERIMENTS.md attributes the gap between our Sirius/ESN ratios and the
paper's to the reduced node count (31 vs 127 intermediates throttle the
injection pipeline).  This benchmark measures the Sirius/ESN goodput
ratio at L=50% across node counts, checking the trend that supports
that claim: more nodes → ratio closer to the paper's.
"""

from _harness import emit_table

from repro import FluidNetwork, SiriusNetwork, FlowWorkload, WorkloadConfig
from repro.units import KILOBYTE, MEGABYTE

SCALES = ((16, 4), (32, 8), (64, 8))
LOAD = 0.5
FLOWS_PER_NODE = 40


def _point(n_nodes, grating):
    reference = SiriusNetwork(
        n_nodes, grating, uplink_multiplier=1.0
    ).reference_node_bandwidth_bps

    def workload():
        return FlowWorkload(WorkloadConfig(
            n_nodes=n_nodes, load=LOAD, node_bandwidth_bps=reference,
            mean_flow_bits=100 * KILOBYTE, truncation_bits=2 * MEGABYTE,
            seed=2,
        )).generate(FLOWS_PER_NODE * n_nodes)

    sirius = SiriusNetwork(n_nodes, grating, uplink_multiplier=1.5,
                           seed=1).run(workload())
    esn = FluidNetwork(n_nodes, reference).run(workload())
    return sirius, esn


def test_scale_study(benchmark):
    rows = benchmark.pedantic(
        lambda: [(n, g) + _point(n, g) for n, g in SCALES],
        rounds=1, iterations=1,
    )
    table = []
    ratios = []
    for n, g, sirius, esn in rows:
        ratio = sirius.normalized_goodput / esn.normalized_goodput
        ratios.append(ratio)
        table.append((
            n, g, esn.normalized_goodput, sirius.normalized_goodput,
            ratio,
        ))
    emit_table(
        "Scale study — Sirius/ESN goodput ratio vs node count (L=50%)",
        ["nodes", "grating ports", "ESN goodput", "Sirius goodput",
         "ratio"],
        table,
    )
    # The ratio must not degrade with scale (the artifact shrinks or
    # stays flat as intermediates multiply).
    assert ratios[-1] >= ratios[0] - 0.05
    for _n, _g, sirius, _esn in rows:
        assert sirius.completion_fraction == 1.0
