"""Ablation — the three disaggregated laser designs (§3.3, §4.5).

Compares power, worst-case tuning and combiner loss of the fixed bank,
the pipelined tunable bank and the comb source; checks the §4.5 claim
that two tunable lasers (plus a spare) suffice when the worst-case tune
fits in a slot, and the laser-sharing arithmetic.
"""

from _harness import emit_table

from repro import TunableLaserBank
from repro.optics.disaggregated import compare_designs
from repro.optics.link_budget import LinkBudget, lasers_per_node
from repro.units import NANOSECOND


def test_design_comparison(benchmark):
    rows = benchmark.pedantic(
        lambda: compare_designs(19, slot_duration_s=100 * NANOSECOND),
        rounds=1, iterations=1,
    )
    emit_table(
        "§3.3 — disaggregated laser design space (19 channels)",
        ["design", "power (W)", "worst tuning (ps)", "combiner loss (dB)"],
        [
            (r["design"], r["power_w"], r["worst_tuning_s"] / 1e-12,
             r["combiner_loss_db"])
            for r in rows
        ],
    )
    by_name = {r["design"]: r for r in rows}
    assert by_name["TunableLaserBank"]["power_w"] < (
        by_name["FixedLaserBank"]["power_w"]
    )
    for r in rows:
        assert r["worst_tuning_s"] < 1e-9


def test_pipelined_bank_sizing(benchmark):
    def check():
        two = TunableLaserBank(112, n_lasers=2)
        three = TunableLaserBank(112, n_lasers=3)
        return {
            "two_ok_100ns": two.pipeline_feasible(100 * NANOSECOND),
            "two_ok_10ns": two.pipeline_feasible(10 * NANOSECOND),
            "three_survives_failure": True,
        }

    results = benchmark.pedantic(check, rounds=1, iterations=1)
    three = TunableLaserBank(112, n_lasers=3)
    three.fail_laser(0)
    emit_table(
        "§4.5 — tunable-laser-bank sizing",
        ["configuration", "measured", "paper"],
        [
            ("2 lasers hide <100 ns tuning in 100 ns slots",
             results["two_ok_100ns"], True),
            ("2 lasers insufficient for 10 ns slots",
             not results["two_ok_10ns"], True),
            ("3rd (spare) laser keeps the bank alive",
             three.healthy_lasers == 2, True),
        ],
    )
    assert results["two_ok_100ns"]
    assert not results["two_ok_10ns"]


def test_laser_sharing(benchmark):
    budget = LinkBudget()
    degree = benchmark(budget.max_sharing_degree)
    emit_table(
        "§4.5 — link budget and laser sharing",
        ["quantity", "measured", "paper"],
        [
            ("required launch power (dBm)", budget.required_launch_dbm, 7),
            ("sharing degree (16 dBm laser)", degree, 8),
            ("laser chips for 256 uplinks", lasers_per_node(256), 32),
        ],
    )
    assert degree == 8
    assert lasers_per_node(256) == 32
