"""Extension — Sirius under the published trace-derived workloads.

The paper's workload is "modeled after published datacenter traces
[1, 31]" but evaluated with a Pareto fit.  As a robustness check we run
Sirius and ESN (Ideal) under the actual empirical distributions those
references publish: DCTCP's web-search and VL2's data-mining mixes.
The paper's qualitative claims (Sirius tracks ESN goodput; short flows
complete in tens of microseconds; everything is delivered losslessly)
should survive the change of distribution.
"""

from _harness import (
    GRATING_PORTS,
    N_NODES,
    emit_table,
    reference_bandwidth,
    us,
)

from repro import FluidNetwork, SiriusNetwork
from repro.core.cell import Flow
from repro.workload.empirical import empirical_flows

LOAD = 0.5
N_FLOWS = 1200


def _run(kind):
    flows = empirical_flows(
        kind, N_FLOWS, n_nodes=N_NODES, load=LOAD,
        node_bandwidth_bps=reference_bandwidth(), seed=9,
    )
    clones = [Flow(f.flow_id, f.src, f.dst, f.size_bits, f.arrival_time)
              for f in flows]
    sirius = SiriusNetwork(N_NODES, GRATING_PORTS, uplink_multiplier=1.5,
                           seed=1).run(flows)
    esn = FluidNetwork(N_NODES, reference_bandwidth()).run(clones)
    return sirius, esn


def test_empirical_workloads(benchmark):
    results = benchmark.pedantic(
        lambda: {kind: _run(kind) for kind in ("web_search", "data_mining")},
        rounds=1, iterations=1,
    )
    emit_table(
        "Extension — trace-derived workloads at L=50%",
        ["workload", "system", "goodput", "p99 short FCT (us)",
         "completed"],
        [
            (kind, name, r.normalized_goodput,
             us(r.fct_percentile(99)), len(r.completed_flows))
            for kind, (sirius, esn) in results.items()
            for name, r in (("Sirius", sirius), ("ESN (Ideal)", esn))
        ],
    )
    for kind, (sirius, esn) in results.items():
        # Lossless delivery under both distributions.
        assert sirius.completion_fraction == 1.0, kind
        # Sirius tracks ESN goodput within the usual band.
        assert (sirius.normalized_goodput
                > 0.5 * esn.normalized_goodput), kind
    # The mice-heavy data-mining mix yields a lower short-flow FCT
    # floor than web search (tiny flows fit in one or two cells).
    dm_sirius = results["data_mining"][0]
    ws_sirius = results["web_search"][0]
    assert (dm_sirius.fct_percentile(50)
            <= ws_sirius.fct_percentile(50) * 1.5)
